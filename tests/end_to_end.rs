//! Cross-crate integration tests: the full pipeline from generated data
//! through VALMOD to VALMAP, checked against the baselines.

use valmod_suite::baselines::{
    brute_top_k, moen_range, quickmotif_best_pair, MoenConfig, QuickMotifConfig,
};
use valmod_suite::mp::stomp::{stomp, stomp_parallel};
use valmod_suite::prelude::*;
use valmod_suite::series::{gen, znorm};
use valmod_suite::valmod::expand_motif_set;

/// The headline invariant of the whole suite: VALMOD's per-length output
/// equals an independent brute force for every length in the range.
#[test]
fn valmod_equals_brute_force_end_to_end() {
    let series = gen::ecg(350, &gen::EcgConfig::default(), 101);
    let config = ValmodConfig::new(20, 36).with_k(3);
    let out = run_valmod(&series, &config).unwrap();
    for r in &out.per_length {
        let expect = brute_top_k(&series, r.length, config.exclusion(r.length), 3).unwrap();
        assert_eq!(r.pairs.len(), expect.len(), "at length {}", r.length);
        for (got, want) in r.pairs.iter().zip(&expect) {
            assert!(
                (got.distance - want.distance).abs() < 1e-6,
                "length {}: {got:?} vs {want:?}",
                r.length
            );
        }
    }
}

/// The planted-motif recovery story, through the full public API.
#[test]
fn planted_variable_length_motif_is_recovered_and_expandable() {
    let pattern: Vec<f64> = (0..64)
        .map(|i| {
            let t = i as f64 / 64.0;
            (t * std::f64::consts::TAU * 2.0).sin() + 0.5 * (t * std::f64::consts::TAU * 5.0).sin()
        })
        .collect();
    let (series, truth) = gen::planted_pair(4000, &pattern, &[700, 2500], 0.02, 17);

    let config = ValmodConfig::new(48, 80).with_k(3);
    let out = run_valmod(&series, &config).unwrap();

    // The global ranking's winner must be the planted pair.
    let ranking = out.ranking();
    let top = ranking.first().expect("motifs exist");
    assert!(top.pair.a.abs_diff(truth.offsets[0]) <= top.pair.length);
    assert!(top.pair.b.abs_diff(truth.offsets[1]) <= top.pair.length);

    // Expanding it must find both instances.
    let set =
        expand_motif_set(&series, &top.pair, None, config.exclusion(top.pair.length)).unwrap();
    for &planted in &truth.offsets {
        assert!(
            set.occurrences.iter().any(|o| o.offset.abs_diff(planted) <= 16),
            "instance at {planted} missing from motif set {:?}",
            set.occurrences
        );
    }
}

/// All engines and baselines agree on a fixed length.
#[test]
fn every_engine_agrees_on_fixed_length_motifs() {
    let series = gen::astro(400, &gen::AstroConfig::default(), 7);
    let l = 24;
    let excl = valmod_suite::mp::default_exclusion(l);

    let serial = stomp(&series, l, excl).unwrap();
    let parallel = stomp_parallel(&series, l, excl, 4).unwrap();
    let stamp = valmod_suite::mp::stamp::stamp(&series, l, excl).unwrap();
    let (_, _, d_stomp) = serial.min_entry().unwrap();
    let (_, _, d_par) = parallel.min_entry().unwrap();
    let (_, _, d_stamp) = stamp.min_entry().unwrap();
    assert!((d_stomp - d_par).abs() < 1e-7);
    assert!((d_stomp - d_stamp).abs() < 1e-6);

    let qm_cfg = QuickMotifConfig { exclusion_den: 4, ..QuickMotifConfig::default() };
    let qm = quickmotif_best_pair(&series, l, &qm_cfg).unwrap().unwrap();
    assert!((qm.distance - d_stomp).abs() < 1e-6);

    let moen = moen_range(&series, l, l, &MoenConfig::default()).unwrap();
    assert!((moen[0].unwrap().distance - d_stomp).abs() < 1e-6);
}

/// VALMAP semantics: MPn is everywhere ≤ the base normalized profile, and
/// every LP entry lies within the configured range.
#[test]
fn valmap_invariants_hold_after_full_run() {
    let series = gen::ecg(600, &gen::EcgConfig::default(), 33);
    let config = ValmodConfig::new(24, 48);
    let out = run_valmod(&series, &config).unwrap();
    let base = out.base_profile.length_normalized_values();
    assert_eq!(out.valmap.len(), base.len());
    for i in 0..base.len() {
        assert!(
            out.valmap.mpn[i] <= base[i] + 1e-12,
            "VALMAP must only improve on the base profile at {i}"
        );
        assert!(out.valmap.lp[i] >= 24 && out.valmap.lp[i] <= 48);
        if let Some(j) = out.valmap.ip[i] {
            // The recorded match must genuinely be at the recorded
            // distance and length.
            let l = out.valmap.lp[i];
            if i + l <= series.len() && j + l <= series.len() {
                let d = znorm::zdist(&series[i..i + l], &series[j..j + l]);
                let dn = znorm::length_normalized(d, l);
                assert!(
                    (dn - out.valmap.mpn[i]).abs() < 1e-6,
                    "stored normalized distance disagrees with recomputation at {i}"
                );
            }
        }
    }
}

/// Data written by the I/O module and re-read round-trips through the
/// whole pipeline deterministically.
#[test]
fn file_roundtrip_preserves_motifs() {
    let dir = std::env::temp_dir().join("valmod_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ecg.txt");

    let series = gen::ecg(400, &gen::EcgConfig::default(), 55);
    valmod_suite::series::io::write_series(&path, &series).unwrap();
    let back = valmod_suite::series::io::read_series(&path).unwrap();
    assert_eq!(back.values(), series.as_slice());

    let config = ValmodConfig::new(16, 24).with_k(2);
    let a = run_valmod(&series, &config).unwrap();
    let b = run_valmod(back.values(), &config).unwrap();
    for (ra, rb) in a.per_length.iter().zip(&b.per_length) {
        assert_eq!(ra.pairs, rb.pairs);
    }
    std::fs::remove_file(&path).ok();
}

/// Degenerate inputs fail with typed errors, never panics.
#[test]
fn error_paths_are_typed() {
    let series = gen::random_walk(100, 1);
    // Range larger than the series.
    assert!(matches!(
        run_valmod(&series, &ValmodConfig::new(64, 128)),
        Err(SeriesError::TooShort { .. })
    ));
    // Inverted range.
    assert!(matches!(
        run_valmod(&series, &ValmodConfig::new(32, 16)),
        Err(SeriesError::InvalidRange { .. })
    ));
    // Series constructor rejects NaN.
    assert!(matches!(
        DataSeries::new(vec![1.0, f64::NAN]),
        Err(SeriesError::NonFinite { index: 1 })
    ));
}

/// The facade's prelude suffices for the common workflow.
#[test]
fn prelude_covers_the_quickstart_surface() {
    let series = gen::sine_mix(500, &[(40.0, 1.0)], 0.05, 2);
    let output: ValmodOutput = run_valmod(&series, &ValmodConfig::new(16, 20)).unwrap();
    let _mp: &MatrixProfile = &output.base_profile;
    let _pair: Option<&MotifPair> = output.per_length[0].pairs.first();
    assert!(default_exclusion(16) >= 1);
    let _stats = RollingStats::new(&series);
}
