//! A tour of the matrix-profile engine family shipped with the suite:
//! batch (STOMP), anytime (SCRIMP), streaming (STAMPI-style) and
//! cross-series (AB-join) — the substrate VALMOD stands on.
//!
//! ```text
//! cargo run --release --example engines_tour
//! ```

use std::time::Instant;

use valmod_suite::mp::abjoin::abjoin;
use valmod_suite::mp::default_exclusion;
use valmod_suite::mp::scrimp::scrimp;
use valmod_suite::mp::stomp::stomp;
use valmod_suite::mp::streaming::StreamingProfile;
use valmod_suite::series::gen;

fn main() {
    let l = 48;
    let excl = default_exclusion(l);
    let series = gen::ecg(6000, &gen::EcgConfig::default(), 10);

    // ---- Batch: the exact reference. ----
    let t = Instant::now();
    let exact = stomp(&series, l, excl).expect("valid window");
    let (i, j, d) = exact.min_entry().expect("motif exists");
    println!("STOMP   (batch):     motif ({i}, {j}) d = {d:.3}   [{:.2?}]", t.elapsed());

    // ---- Anytime: a fraction of the work, an upper-bound profile. ----
    for fraction in [0.05, 0.25, 1.0] {
        let t = Instant::now();
        let approx = scrimp(&series, l, excl, fraction, 7).expect("valid window");
        let err: f64 = approx.values.iter().zip(&exact.values).map(|(a, e)| a - e).sum::<f64>()
            / exact.len() as f64;
        println!(
            "SCRIMP  ({:>4.0}%):     mean overshoot {err:.4}              [{:.2?}]",
            fraction * 100.0,
            t.elapsed()
        );
    }

    // ---- Streaming: points arrive one at a time. ----
    let t = Instant::now();
    let mut sp = StreamingProfile::new(&series[..1000], l, excl).expect("valid bootstrap");
    for &v in &series[1000..] {
        sp.append(v);
    }
    let (si, sj, sd) = sp.profile().min_entry().expect("motif exists");
    println!(
        "STAMPI  (streaming): motif ({si}, {sj}) d = {sd:.3}   [{:.2?} for {} appends]",
        t.elapsed(),
        series.len() - 1000
    );
    assert!((sd - d).abs() < 1e-5, "streaming must agree with batch");

    // ---- AB-join: find the pattern two recordings share. ----
    let other = gen::ecg(4000, &gen::EcgConfig::default(), 99); // different patient
    let t = Instant::now();
    let join = abjoin(&series, &other, l).expect("valid join");
    let (a, b, dj) = join.closest_pair().expect("pair exists");
    println!("AB-join (cross):     closest pair A[{a}] ~ B[{b}] d = {dj:.3} [{:.2?}]", t.elapsed());
    println!(
        "\nall engines agree on the data they share; SCRIMP trades accuracy for\n\
         time, the streaming profile is exact after every append, and the\n\
         AB-join finds what two independent recordings have in common."
    );
}
