//! The demo's "VALMOD VS Competitors" scenario: run all four algorithms
//! on the same workload, confirm they find the same motifs, and compare
//! wall-clock times.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use std::time::Instant;

use valmod_suite::baselines::{moen_range, quickmotif_range, MoenConfig, QuickMotifConfig};
use valmod_suite::mp::motif::top_k_pairs;
use valmod_suite::mp::stomp::stomp;
use valmod_suite::prelude::*;
use valmod_suite::series::gen;

fn main() {
    let series = gen::ecg(8000, &gen::EcgConfig::default(), 5);
    let (l_min, l_max) = (48, 64);
    println!(
        "workload: ECG n = {}, lengths [{l_min}, {l_max}] ({} lengths)\n",
        series.len(),
        l_max - l_min + 1
    );

    // VALMOD: one run covers the whole range.
    let config = ValmodConfig::new(l_min, l_max).with_k(1);
    let t = Instant::now();
    let valmod_out = run_valmod(&series, &config).expect("valid workload");
    let valmod_time = t.elapsed();
    let valmod_best = valmod_out.best_per_length();

    // STOMP: re-run per length (the paper's adaptation).
    let t = Instant::now();
    let mut stomp_best = Vec::new();
    for l in l_min..=l_max {
        let mp = stomp(&series, l, config.exclusion(l)).expect("valid workload");
        stomp_best.push(top_k_pairs(&mp, 1).first().copied());
    }
    let stomp_time = t.elapsed();

    // QUICKMOTIF: re-run per length.
    let t = Instant::now();
    let qm_best = quickmotif_range(&series, l_min, l_max, &QuickMotifConfig::default())
        .expect("valid workload");
    let qm_time = t.elapsed();

    // MOEN: native range support.
    let t = Instant::now();
    let moen_best =
        moen_range(&series, l_min, l_max, &MoenConfig::default()).expect("valid workload");
    let moen_time = t.elapsed();

    // All four are exact: distances must agree at every length.
    for (offset, v) in valmod_best.iter().enumerate() {
        let l = l_min + offset;
        let dv = v.map(|p| p.distance);
        for (name, other) in [
            ("stomp", stomp_best[offset].map(|p| p.distance)),
            ("quickmotif", qm_best[offset].map(|p| p.distance)),
            ("moen", moen_best[offset].map(|p| p.distance)),
        ] {
            match (dv, other) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-6,
                    "{name} disagrees with valmod at length {l}: {a} vs {b}"
                ),
                (None, None) => {}
                _ => panic!("{name} presence mismatch at length {l}"),
            }
        }
    }
    println!("all four algorithms agree on the best pair of every length ✓\n");

    println!("{:<12} {:>12}", "algorithm", "time");
    for (name, time) in [
        ("VALMOD", valmod_time),
        ("STOMP", stomp_time),
        ("QUICKMOTIF", qm_time),
        ("MOEN", moen_time),
    ] {
        println!("{name:<12} {time:>12.2?}");
    }
    println!(
        "\nVALMOD answers the whole range near the price of one fixed-length\n\
         profile; the per-length competitors pay per length (Figure 3's shape)."
    );
}
