//! Variable-length anomaly detection with discords — the journal
//! extension of VALMOD (KAIS 2020): the same partial-profile machinery
//! that finds the closest pair at every length also finds, exactly, the
//! subsequence *farthest from everything else* at every length.
//!
//! ```text
//! cargo run --release --example anomaly_discords
//! ```

use valmod_suite::series::gen;
use valmod_suite::valmod::discord::variable_length_discords;
use valmod_suite::valmod::render::sparkline;
use valmod_suite::valmod::ValmodConfig;

fn main() {
    // A clean periodic signal with one arrhythmic event injected.
    // A tame recording (little wander/noise), so the injected event is the
    // dominant anomaly rather than natural measurement artifacts.
    let ecg_cfg = gen::EcgConfig {
        beat_jitter: 0.02,
        noise_std: 0.01,
        wander_amp: 0.02,
        ..gen::EcgConfig::default()
    };
    let mut series = gen::ecg(4000, &ecg_cfg, 13);
    for (t, v) in series[2100..2180].iter_mut().enumerate() {
        // Simulated ventricular ectopic: the normal beat is replaced by a
        // wide, bizarre complex (inverted and slow), not just scaled.
        let phase = t as f64 / 80.0;
        *v = -1.1 * (std::f64::consts::PI * phase).sin()
            + 0.6 * (3.0 * std::f64::consts::PI * phase).sin();
    }
    println!("ECG with injected ectopic beat near offset 2100:");
    println!("data |{}|\n", sparkline(&series, 72));

    let config = ValmodConfig::new(32, 96).with_k(1);
    let started = std::time::Instant::now();
    let results = variable_length_discords(&series, &config).expect("valid configuration");
    println!("exact top discord for every length in [32, 96]: {:.2?}\n", started.elapsed());

    // The anomaly should dominate at (almost) every length; the normalized
    // NN distance tells us at which length it is *most* anomalous.
    let overlaps_event = |offset: usize, length: usize| offset < 2180 && offset + length > 2100;
    let mut best: Option<(usize, usize, f64)> = None;
    println!(
        "{:>8} {:>10} {:>12} {:>14}  covers event?",
        "length", "offset", "NN dist", "NN dist/sqrt(l)"
    );
    for r in results.iter().step_by(8) {
        if let Some(d) = r.discords.first() {
            println!(
                "{:>8} {:>10} {:>12.4} {:>14.4}  {}",
                r.length,
                d.offset,
                d.nn_distance,
                d.normalized(),
                if overlaps_event(d.offset, r.length) { "yes" } else { "-" }
            );
        }
    }
    let mut covered = 0usize;
    for r in &results {
        if let Some(d) = r.discords.first() {
            if overlaps_event(d.offset, r.length) {
                covered += 1;
            }
            if best.is_none_or(|(.., b)| d.normalized() > b) {
                best = Some((r.length, d.offset, d.normalized()));
            }
        }
    }
    let (best_len, best_offset, best_score) = best.expect("discords exist");
    println!(
        "\n{covered} of {} lengths point their top discord at the injected event — \n\
         shorter windows instead isolate natural artifacts, which is exactly why the\n\
         anomaly *length* matters as much as the anomaly location.\n\
         globally most anomalous: length {best_len}, offset {best_offset} \
         (normalized NN distance {best_score:.4})",
        results.len()
    );

    // Resolution statistics: the pruning story for discords.
    let resolved: usize = results.iter().skip(1).map(|r| r.resolved_rows).sum();
    let total: usize = results.iter().skip(1).map(|r| series.len() - r.length + 1).sum();
    println!(
        "rows resolved exactly: {resolved} of {total} row-length steps \
         ({:.2}%)",
        100.0 * resolved as f64 / total as f64
    );
}
