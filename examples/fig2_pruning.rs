//! Figure 2: how VALMOD's lower-bound pruning works, narrated on data.
//!
//! The paper's Figure 2 walks through one length step: the distance
//! profile of a subsequence at the base length, the `p` entries kept per
//! profile, and — at the next length — which partial profiles are *valid*
//! (`minDist ≤ maxLB`: the stored minimum is certified) versus
//! *non-valid*, with `minLBAbs` certifying the winners. This example
//! prints those exact quantities from a real run.
//!
//! ```text
//! cargo run --release --example fig2_pruning
//! ```

use valmod_suite::series::{gen, RollingStats};
use valmod_suite::valmod::{run_valmod, LbRowContext, ValmodConfig};

fn main() {
    // A compact ECG snippet, as in the paper's illustration.
    let series = gen::ecg(1800, &gen::EcgConfig::default(), 4);
    let l0 = 160; // base length (the paper illustrates 600 on a longer snippet)

    // ---- The lower bound itself, on one row. ----
    let stats = RollingStats::new(&series);
    let i = 160; // the paper's D_{160, l}
    println!("lower bounds extending row i={i} from base length {l0}:");
    println!("{:>8} {:>12} {:>12} {:>12}", "target", "LB(rho=0.99)", "LB(rho=0.9)", "LB(rho=0.5)");
    for target in [l0, l0 + 1, l0 + 4, l0 + 16, l0 + 64] {
        let ctx = LbRowContext::new(&stats, i, l0, target);
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>12.4}",
            target,
            ctx.bound(0.99),
            ctx.bound(0.9),
            ctx.bound(0.5)
        );
    }
    println!(
        "\n(the bound grows with the extension and shrinks with the base\n\
         correlation — candidates that matched well at the base length are\n\
         the last to be pruned, which is why keeping the top-p by rho works)\n"
    );

    // ---- The valid / non-valid classification across a real run. ----
    let config = ValmodConfig::new(l0, l0 + 40).with_k(1).with_profile_size(8);
    let output = run_valmod(&series, &config).expect("valid configuration");
    println!("per-length pruning report (p = {}, ECG n = {}):", config.profile_size, series.len());
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "length", "valid", "non-valid", "recomputed", "minLBAbs"
    );
    for r in output.per_length.iter().skip(1) {
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12.4}",
            r.length,
            r.stats.valid_rows,
            r.stats.invalid_rows,
            r.stats.recomputed_rows,
            r.stats.min_lb_abs
        );
    }
    let recomputed: usize = output.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    let steps: usize =
        output.per_length.iter().skip(1).map(|r| r.stats.valid_rows + r.stats.invalid_rows).sum();
    println!(
        "\ntotal distance profiles recomputed from scratch: {recomputed} of {steps} \
         row-length steps\n(everything else was answered from p = {} stored entries per row)",
        config.profile_size
    );
}
