//! Streaming: maintain variable-length motifs over a live feed.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```
//!
//! A monitoring deployment never sees the whole series at once. This
//! example bootstraps the incremental engine on the first half of a
//! synthetic ECG, then feeds the rest point by point (with an occasional
//! batched chunk, as a buffered transport would deliver), watching the
//! VALMAP improve live — and finishes with an anytime preview pass and
//! the batch-grade snapshot, bit-identical to running `run_valmod` on
//! everything at once.

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::stream::{preview_line, update_line};

fn main() {
    let series = gen::ecg(3000, &gen::EcgConfig::default(), 42);
    // The Query builder is the one configuration surface across the
    // library, the CLI, and the serve protocol; `into_config()` yields
    // the engine-level config the streaming engine consumes.
    let config = Query::new(40, 60).k(2).into_config();

    // 1. Bootstrap on the history we already have.
    let mut engine =
        StreamingValmod::new(&series[..1500], config.clone()).expect("valid configuration");
    println!("bootstrapped on {} points, lengths [40, 60]", engine.len());

    // 2. Live traffic: single points and batched chunks, interleaved.
    //    Appends cost O(n·R); nothing re-runs the batch engine.
    let mut updates = 0usize;
    for (i, chunk) in series[1500..].chunks(250).enumerate() {
        if i % 2 == 0 {
            for &v in chunk {
                engine.append(v);
            }
        } else {
            engine.extend(chunk);
        }
        // Poll the VALMAP entries that changed since the last poll —
        // the same NDJSON records `valmod stream` emits.
        let deltas = engine.poll_deltas();
        updates += deltas.len();
        if let Some(best) = deltas.iter().min_by(|a, b| {
            a.normalized_distance.partial_cmp(&b.normalized_distance).expect("finite")
        }) {
            println!(
                "after {:>5} points: {:>3} entries improved, best {}",
                engine.len(),
                deltas.len(),
                update_line(engine.len(), best)
            );
        }
    }
    println!("total VALMAP updates observed live: {updates}");

    // 3. The live views answer queries without a batch run...
    let (offset, match_offset, length, mpn) = engine.valmap().best_entry().expect("motifs exist");
    println!(
        "live best motif: offsets ({offset}, {match_offset}), length {length}, d/sqrt(l)={mpn:.4}"
    );

    // 4. An impatient consumer can ask for the anytime tier: the same
    //    snapshot, but streaming improving VALMAP previews per round
    //    before settling to the exact bits.
    let anytime = engine
        .snapshot_anytime(4, &mut |p| println!("  {}", preview_line(engine.len(), p)))
        .expect("valid series");

    // 5. ...and the canonical snapshot is bit-identical to the batch
    //    engine over the concatenated series — as is the settled
    //    anytime run.
    let snapshot = engine.snapshot().expect("valid series");
    let batch = run_valmod(&series, &config).expect("valid series");
    assert_eq!(snapshot.valmap, batch.valmap, "snapshot must equal batch bit for bit");
    assert_eq!(anytime.valmap, batch.valmap, "settled anytime must equal batch bit for bit");
    println!("snapshot == run_valmod(all {} points): verified", series.len());
}
