//! The demo's remaining scenarios (paper §4): variable-length motifs in
//! **Seismology** (repeating earthquakes with varying coda durations) and
//! **Entomology** (insect probing bouts of varying lengths), where "the
//! user can understand the importance of using variable length motif
//! detection".
//!
//! ```text
//! cargo run --release --example demo_scenarios
//! ```

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::valmod::render::sparkline;

fn report(name: &str, series: &[f64], config: &ValmodConfig) {
    let started = std::time::Instant::now();
    let output = run_valmod(series, config).expect("valid configuration");
    println!(
        "=== {name}: n = {}, lengths [{}, {}] — {:.2?} ===",
        series.len(),
        config.l_min,
        config.l_max,
        started.elapsed()
    );
    println!("data |{}|", sparkline(series, 72));
    println!("MPn  |{}|", sparkline(&output.valmap.mpn, 72));

    // What a fixed length would have missed: compare the best motif at
    // l_min against the best over the whole range.
    let fixed = output.per_length[0].pairs.first().expect("motifs at l_min");
    let best = output.ranking()[0];
    println!(
        "fixed-length answer (l = {}): offsets ({}, {}), d/sqrt(l) = {:.4}",
        fixed.length,
        fixed.a,
        fixed.b,
        fixed.distance / (fixed.length as f64).sqrt()
    );
    println!(
        "variable-length answer:      offsets ({}, {}), length {}, d/sqrt(l) = {:.4}",
        best.pair.a, best.pair.b, best.pair.length, best.normalized_distance
    );
    if best.pair.length >= fixed.length + fixed.length / 4 {
        println!(
            "-> the range search found a pattern {:.1}x longer with a better\n\
             normalized score: the event's true duration exceeds l_min.",
            best.pair.length as f64 / fixed.length as f64
        );
    }
    // Where did longer matches displace shorter ones?
    let improved = output.valmap.lp.iter().filter(|&&l| l > config.l_min).count();
    println!(
        "{} of {} VALMAP entries were claimed by lengths > l_min\n",
        improved,
        output.valmap.len()
    );
}

fn main() {
    // Seismology: repeating events whose codas last 150-300 samples. The
    // coda rings at a ~18-sample period, so a wide exclusion zone (ℓ/2)
    // keeps in-event oscillations from posing as motifs.
    let quake = gen::seismic(12_000, &gen::SeismicConfig::default(), 31);
    let seismic_config = Query::new(48, 160).k(3).exclusion_den(2).into_config();
    report("SEISMOLOGY", &quake, &seismic_config);

    // Entomology: stereotyped probing bouts, 105-195 samples each.
    let insects = gen::epg(12_000, &gen::EpgConfig::default(), 77);
    report("ENTOMOLOGY", &insects, &ValmodConfig::new(48, 160).with_k(3));
}
