//! Quickstart: discover variable-length motifs in a synthetic ECG.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::valmod::render::render_valmap;

fn main() {
    // 1. Get a data series. Here: a synthetic ECG — recurring heartbeats
    //    whose natural duration varies beat to beat.
    let series = gen::ecg(4000, &gen::EcgConfig::default(), 42);

    // 2. Pick a length range and run VALMOD through the Query builder.
    //    The default quality tier is `Quality::Exact`: the algorithm
    //    returns the exact top-k motif pairs for EVERY length in the
    //    range. (`.quality(Quality::Anytime { budget })` would stream
    //    improving previews first; `.quality(Quality::Screen)` ranks by
    //    lower bounds only.)
    let outcome = Query::new(40, 80).k(3).run(&series).expect("valid configuration");
    let output = outcome.output().expect("the exact tier carries the full output");

    // 3. The global ranking compares lengths via the length-normalized
    //    distance d/sqrt(l), deliberately favoring longer patterns.
    println!("top 5 motifs across all lengths in [40, 80]:");
    for (rank, m) in output.ranking().iter().take(5).enumerate() {
        println!(
            "  #{rank}: offsets ({:>5}, {:>5})  length {:>3}  d={:.3}  d/sqrt(l)={:.4}",
            m.pair.a,
            m.pair.b,
            m.pair.length,
            m.pair.distance,
            m.normalized_distance,
            rank = rank + 1,
        );
    }

    // 4. VALMAP summarizes the whole run: best normalized match per
    //    offset, at which length it was found, and the update log.
    println!("\n{}", render_valmap(&output.valmap, 72));

    // 5. Pruning statistics: how much work the lower bound saved.
    let recomputed: usize = output.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    let total: usize =
        output.per_length.iter().skip(1).map(|r| r.stats.valid_rows + r.stats.invalid_rows).sum();
    println!("rows recomputed: {recomputed} of {total} row-length steps");
}
