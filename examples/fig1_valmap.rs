//! Figure 1 (right): VALMAP over a length range finds the full heartbeat.
//!
//! The paper runs VALMOD with ℓ ∈ [50, 400] on the same ECG snippet and
//! shows that (d) the length-400 motif captures the complete beat — both
//! the atria and the ventricles contraction — while (e) the VALMAP MPn and
//! (f) the Length profile reveal *where* longer matches displaced shorter
//! ones.
//!
//! ```text
//! cargo run --release --example fig1_valmap
//! ```

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::valmod::render::{render_valmap, sparkline};

fn main() {
    let series = gen::ecg(5000, &gen::EcgConfig::default(), 7);

    // The paper's parameters: l_min = 50, l_max = 400.
    let config = ValmodConfig::new(50, 400).with_k(5);
    let started = std::time::Instant::now();
    let output = run_valmod(&series, &config).expect("valid configuration");
    println!("VALMOD over l in [50, 400] on 5000 ECG points: {:.2?}\n", started.elapsed());

    println!("ECG  |{}|", sparkline(&series, 72));
    println!("{}", render_valmap(&output.valmap, 72));

    // The paper's observation: the motif at a large length covers a whole
    // heartbeat. Show the best pair at the top of the length range.
    let long = output
        .per_length
        .iter()
        .rev()
        .find_map(|r| r.pairs.first())
        .expect("motifs exist at large lengths");
    println!(
        "motif at length {}: offsets ({}, {}) — spans a full beat (~280 samples),\n\
         capturing both the atria and the ventricles contraction.",
        long.length, long.a, long.b
    );

    // Length-profile statistics: how many offsets settled at each length.
    let mut histogram: Vec<(usize, usize)> = Vec::new();
    for &l in &output.valmap.lp {
        match histogram.iter_mut().find(|(len, _)| *len == l) {
            Some((_, count)) => *count += 1,
            None => histogram.push((l, 1)),
        }
    }
    histogram.sort_unstable();
    println!("\nlength profile histogram (length -> entries whose best match has it):");
    for (l, count) in histogram.iter().take(12) {
        println!("  {l:>4} -> {count}");
    }
    if histogram.len() > 12 {
        println!("  ... ({} more lengths)", histogram.len() - 12);
    }
}
