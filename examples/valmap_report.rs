//! The demo's GUI pane (Figure 5) as text: VALMAP checkpoints explored
//! with the "length slider", the top variable-length motifs, and a motif
//! set expansion — the three interactions the paper demonstrates.
//!
//! ```text
//! cargo run --release --example valmap_report
//! ```

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::valmod::expand_motif_set;
use valmod_suite::valmod::render::{render_valmap, sparkline};

fn main() {
    let series = gen::ecg(3000, &gen::EcgConfig::default(), 21);
    let config = ValmodConfig::new(40, 160).with_k(5);
    let output = run_valmod(&series, &config).expect("valid configuration");

    // ---- Pane 1: the VALMAP overview. ----
    println!("{}", render_valmap(&output.valmap, 72));

    // ---- Pane 2: the length slider — replay checkpoints up to a length. ----
    println!("checkpoint slider (state of MPn as of selected lengths):");
    for slider in [40usize, 80, 120, 160] {
        let (mpn, _, lp) = output.valmap.as_of_length(slider).expect("length in range");
        let updated = lp.iter().filter(|&&l| l > config.l_min).count();
        println!(
            "  l <= {slider:>4} |{}| {updated:>5} entries improved past l_min",
            sparkline(&mpn, 56)
        );
    }

    // ---- Pane 3: top variable-length motifs. ----
    println!("\ntop-k motifs of variable length reported by VALMAP:");
    for (rank, m) in output.ranking().iter().take(5).enumerate() {
        println!(
            "  #{:<2} offsets ({:>5}, {:>5}) length {:>4} d/sqrt(l) = {:.4}",
            rank + 1,
            m.pair.a,
            m.pair.b,
            m.pair.length,
            m.normalized_distance
        );
    }

    // ---- Pane 4: expand the selected pair to its motif set. ----
    if let Some(best) = output.ranking().first() {
        let set =
            expand_motif_set(&series, &best.pair, None, output.config.exclusion(best.pair.length))
                .expect("pair fits");
        println!(
            "\nexpanded motif set of #1 (radius {:.3}): {} occurrences",
            set.radius,
            set.len()
        );
        for o in &set.occurrences {
            println!("    offset {:>5}  distance {:.3}", o.offset, o.distance);
        }
    }
}
