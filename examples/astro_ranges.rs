//! Variable-length motifs in an astronomical light curve (the paper's
//! ASTRO dataset scenario): pulsation patterns exist at several natural
//! scales, and the right motif length is not knowable in advance.
//!
//! ```text
//! cargo run --release --example astro_ranges
//! ```

use valmod_suite::prelude::*;
use valmod_suite::series::gen;
use valmod_suite::valmod::expand_motif_set;

fn main() {
    // Pulsations at periods ~190, ~67 and ~23 samples, drifting slowly.
    let series = gen::astro(6000, &gen::AstroConfig::default(), 99);

    let config = ValmodConfig::new(20, 120).with_k(3);
    let started = std::time::Instant::now();
    let output = run_valmod(&series, &config).expect("valid configuration");
    println!(
        "VALMOD over l in [20, 120] on {} ASTRO points: {:.2?}",
        series.len(),
        started.elapsed()
    );

    // Per-length best distances reveal the natural scales: lengths close
    // to a pulsation period match far better than lengths between scales.
    println!("\nbest length-normalized distance per length (every 10th):");
    for r in output.per_length.iter().step_by(10) {
        if let Some(p) = r.pairs.first() {
            let dn = p.distance / (p.length as f64).sqrt();
            let bar = "#".repeat((dn * 120.0) as usize);
            println!("  l = {:>4}: {dn:.4} |{bar}", r.length);
        }
    }

    println!("\ntop motifs across all lengths:");
    for m in output.ranking().iter().take(4) {
        println!(
            "  offsets ({:>5}, {:>5})  length {:>4}  d/sqrt(l) = {:.4}",
            m.pair.a, m.pair.b, m.pair.length, m.normalized_distance
        );
    }

    // Expand the best motif into its full occurrence set — the demo's
    // "Motif Pairs Expansion to Motif Sets" feature.
    if let Some(best) = output.ranking().first() {
        let set =
            expand_motif_set(&series, &best.pair, None, output.config.exclusion(best.pair.length))
                .expect("pair fits the series");
        println!(
            "\nmotif set of the top pair (radius {:.3}): {} occurrences at offsets {:?}",
            set.radius,
            set.len(),
            set.occurrences.iter().map(|o| o.offset).collect::<Vec<_>>()
        );
    }
}
