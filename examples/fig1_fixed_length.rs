//! Figure 1 (left): the *fixed-length* matrix profile and its limitation.
//!
//! The paper shows an ECG snippet whose matrix profile at ℓ = 50 has deep
//! valleys — the motifs — but the motif found at that length is only "the
//! second half of a ventricular contraction": a partial, unsatisfying
//! event. This example reproduces that observation end to end.
//!
//! ```text
//! cargo run --release --example fig1_fixed_length
//! ```

use valmod_suite::mp::default_exclusion;
use valmod_suite::mp::motif::top_k_pairs;
use valmod_suite::mp::stomp::stomp;
use valmod_suite::series::gen;
use valmod_suite::valmod::render::render_series_with_profile;

fn main() {
    // ~18 heartbeats of ~280 samples each, as in the paper's 5000-point snippet.
    let series = gen::ecg(5000, &gen::EcgConfig::default(), 7);
    let l = 50;

    let mp = stomp(&series, l, default_exclusion(l)).expect("valid window");

    println!("ECG snippet with matrix profile, l = {l} (paper Figure 1a-b):\n");
    print!("{}", render_series_with_profile("ECG data", &series, "MP l=50", &mp.values, 72));

    // Index profile (Figure 1c): offset of each subsequence's best match.
    let ip: Vec<f64> =
        mp.indices.iter().map(|idx| idx.map_or(f64::INFINITY, |j| j as f64)).collect();
    print!("{}", render_series_with_profile("(index)", &ip, "", &[0.0; 0], 72));

    println!("\ntop motif pairs at fixed length {l}:");
    for p in top_k_pairs(&mp, 4) {
        println!(
            "  offsets ({:>4}, {:>4})  d = {:.3}   [covers {}..{} — only {} samples of a ~280-sample beat]",
            p.a,
            p.b,
            p.distance,
            p.a,
            p.a + l,
            l
        );
    }
    println!(
        "\nNote: a heartbeat spans ~280 samples here; a length-50 window can only\n\
         capture a fraction of one (the paper's 'partial and unsatisfactory result').\n\
         See fig1_valmap for what the variable-length search finds instead."
    );
}
