#![warn(missing_docs)]

//! # VALMOD Suite
//!
//! A from-scratch Rust reproduction of **VALMOD** (Linardi, Zhu, Palpanas,
//! Keogh — SIGMOD 2018): exact discovery of *variable-length* motifs in
//! data series, together with every substrate and baseline the paper's
//! evaluation depends on.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace so applications can depend on `valmod-suite` alone.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`series`] | `valmod-series` | series container, rolling stats, z-normalization, generators, I/O |
//! | [`fft`] | `valmod-fft` | FFT, convolution, sliding dot products |
//! | [`mp`] | `valmod-mp` | MASS, STAMP, STOMP, motif/discord extraction |
//! | [`baselines`] | `valmod-baselines` | brute force, MOEN, QUICKMOTIF |
//! | [`valmod`] | `valmod-core` | the VALMOD algorithm, VALMAP, ranking, motif sets |
//! | [`stream`] | `valmod-stream` | incremental VALMOD: live VALMAP/motifs/discords under appends |
//!
//! # Quickstart
//!
//! ```
//! use valmod_suite::prelude::*;
//!
//! // A synthetic ECG: heartbeats recur, with naturally varying durations.
//! let series = valmod_suite::series::gen::ecg(
//!     2000,
//!     &valmod_suite::series::gen::EcgConfig::default(),
//!     42,
//! );
//!
//! // Find the best motif pairs for every length in [32, 48].
//! let config = ValmodConfig::new(32, 48);
//! let output = run_valmod(&series, &config).unwrap();
//!
//! // The global ranking compares lengths via the length-normalized distance.
//! let best = &output.ranking()[0];
//! println!(
//!     "best motif: offsets ({}, {}), length {}, normalized distance {:.3}",
//!     best.pair.a, best.pair.b, best.pair.length, best.normalized_distance
//! );
//! ```

pub use valmod_baselines as baselines;
pub use valmod_core as valmod;
pub use valmod_fft as fft;
pub use valmod_mp as mp;
pub use valmod_series as series;
// `valmod-stream` sits *above* `valmod-core` in the dependency graph (its
// snapshot executes the batch pipeline), so the streaming engine is
// re-exported here at the facade rather than from `valmod-core` itself.
pub use valmod_stream as stream;

/// The most common imports for applications.
pub mod prelude {
    pub use valmod_core::{run_valmod, Quality, Query, QueryOutcome, ValmodConfig, ValmodOutput};
    pub use valmod_mp::{default_exclusion, MatrixProfile, MotifPair};
    pub use valmod_series::{DataSeries, RollingStats, SeriesError};
    pub use valmod_stream::StreamingValmod;
}
