#![warn(missing_docs)]

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to a cargo registry, so this
//! vendored crate implements the API surface the VALMOD suite's property
//! tests use: the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`], the [`Strategy`] trait with
//! range and collection strategies, [`ProptestConfig::with_cases`], and
//! `prop::num::f64::ANY`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its case index, the test's
//!   derived seed, and the assertion message, but is not minimized.
//! - **Deterministic seeds.** Each test function derives its RNG seed from
//!   its own name (FNV-1a), so runs are reproducible without a persistence
//!   file. Set `PROPTEST_SEED_OFFSET` to explore different streams.
//! - **Case counts** honor `ProptestConfig::with_cases` and can be
//!   globally capped with the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block (subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `cases`, capped by the `PROPTEST_CASES`
    /// environment variable when set (used to keep CI time bounded).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case, carrying the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds an error from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type a generated test body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving value generation (xoshiro256++ seeded by
/// SplitMix64, like `rand::rngs::SmallRng`).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from an arbitrary state.
    #[must_use]
    pub fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// A generator whose seed is a pure function of the test name (plus
    /// the optional `PROPTEST_SEED_OFFSET` environment variable), so every
    /// run of the suite generates the same cases.
    #[must_use]
    pub fn deterministic(test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let offset = std::env::var("PROPTEST_SEED_OFFSET")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Self::seed_from_u64(h ^ offset)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform on `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform on `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        let span = bound as u64;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % span) as usize;
            }
        }
    }
}

/// A generator of random values of one type (subset of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Widen by one ULP-scale step so the inclusive end is reachable.
        let v = lo + rng.next_f64() * (hi - lo) * (1.0 + 1e-15);
        v.clamp(lo, hi)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as usize + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

/// A strategy producing one fixed value (like `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// An inclusive-exclusive size specification for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// A strategy generating `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Generates arbitrary `f64` values, including non-finite ones
        /// (NaN and the infinities appear with probability 1/8 each draw,
        /// so small collections still exercise the non-finite paths).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical instance of [`Any`].
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn new_value(&self, rng: &mut TestRng) -> f64 {
                match rng.next_u64() % 8 {
                    0 => match rng.next_u64() % 3 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => f64::NEG_INFINITY,
                    },
                    1 => 0.0,
                    // Wide magnitude spread: sign * 10^[-30, 30).
                    _ => {
                        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                        let exp = rng.next_f64() * 60.0 - 30.0;
                        sign * 10f64.powf(exp) * (0.5 + rng.next_f64())
                    }
                }
            }
        }
    }
}

/// The macro surface and common names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fails the current test case unless `cond` holds.
///
/// Unlike `assert!`, this returns a [`TestCaseError`] so the runner can
/// report the failing case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format_args!($($fmt)+)
            )));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) — {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format_args!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Declares property tests (subset of `proptest::proptest!`).
///
/// Each function runs `cases` times with values drawn from its strategies;
/// the body may `return Ok(())` to skip a case and uses the `prop_assert*`
/// macros to fail one. Failures panic with the case index and the test's
/// deterministic seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest!(@run $config, $name, ($($pat in $strat),+) $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
    (@run $config:expr, $name:ident, ($($pat:pat in $strat:expr),+) $body:block) => {{
        let config: $crate::ProptestConfig = $config;
        let cases = config.effective_cases();
        let mut rng = $crate::TestRng::deterministic(stringify!($name));
        for case in 0..cases {
            $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
            let result: $crate::TestCaseResult =
                (|| -> $crate::TestCaseResult { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = result {
                panic!(
                    "proptest {}: case {}/{} failed (seed derives from the test name; \
                     set PROPTEST_SEED_OFFSET to vary): {}",
                    stringify!($name),
                    case + 1,
                    cases,
                    e
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..2000 {
            let x = (3usize..17).new_value(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-2.0f64..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&y));
            let z = (-1.0f64..=1.0).new_value(&mut rng);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_honors_size_range() {
        let mut rng = crate::TestRng::deterministic("vec_strategy_honors_size_range");
        let strat = crate::collection::vec(0.0f64..1.0, 2..9);
        for _ in 0..500 {
            let v = strat.new_value(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn f64_any_produces_non_finite_values() {
        let mut rng = crate::TestRng::deterministic("f64_any_produces_non_finite_values");
        let mut finite = 0;
        let mut non_finite = 0;
        for _ in 0..1000 {
            let x = crate::num::f64::ANY.new_value(&mut rng);
            if x.is_finite() {
                finite += 1;
            } else {
                non_finite += 1;
            }
        }
        assert!(finite > 100, "finite {finite}");
        assert!(non_finite > 20, "non_finite {non_finite}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro body sees its bindings, can early-return, and the
        /// assert macros pass on truths.
        #[test]
        fn macro_plumbing_works(a in 1usize..50, xs in prop::collection::vec(0.0f64..10.0, 1..20)) {
            if a == 1 {
                return Ok(());
            }
            prop_assert!(a > 1, "a = {}", a);
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(a, 0);
        }
    }
}
