#![warn(missing_docs)]

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a cargo registry, so this
//! vendored crate implements exactly the API surface the VALMOD suite
//! consumes: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] (for `f64`, `u64`, `u32`, `bool`), and [`Rng::gen_range`]
//! over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. Streams are
//! fully deterministic per seed, which is all the suite's generators and
//! SCRIMP's diagonal shuffle rely on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on the half-open interval `[0, 1)`, using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection zone is
                // tiny for the small spans the suite draws.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction of generators from seeds (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
