#![warn(missing_docs)]

//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize` on a few public types as a forward
//! declaration of intent, but all wire formats in the suite are
//! hand-rolled (JSON in the CLI, CSV in VALMAP). This crate provides the
//! trait names and re-exports the no-op derives so those annotations
//! compile without a registry. Swapping in the real `serde` is a
//! one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the derives expand
/// to nothing and nothing in the workspace bounds on this trait).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
