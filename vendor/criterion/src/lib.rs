#![warn(missing_docs)]

//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no access to a cargo registry, so this
//! vendored crate implements the API shape the VALMOD benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, [`black_box`]) as a
//! plain wall-clock harness: each bench runs a short warm-up followed by
//! `sample_size` timed iterations and prints min/mean/max. No statistics,
//! plots, or baselines — sufficient for `cargo bench --no-run` CI gating
//! and for coarse local comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench harness entry point (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{id}"), self.default_sample_size, |b| f(b));
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// this harness times a fixed number of iterations instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; reports are printed as benches run).
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    /// An id labeled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Drives the iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    let started = Instant::now();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} completed in {:>12.2?} (no iter() samples)", started.elapsed());
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label:<40} [{min:>10.2?} {mean:>10.2?} {max:>10.2?}] ({} samples)",
        bencher.samples.len()
    );
}

/// Bundles bench functions into a named group runner (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &two| {
            b.iter(|| {
                calls += two;
            })
        });
        group.finish();
        // One warm-up + three timed iterations, each adding 2.
        assert_eq!(calls, 8);
    }

    #[test]
    fn ids_render_name_and_parameter() {
        assert_eq!(BenchmarkId::new("algo", 16).to_string(), "algo/16");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
