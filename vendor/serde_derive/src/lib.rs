#![warn(missing_docs)]

//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize)]` (all
//! actual serialization is hand-rolled — see the CLI's JSON writer and
//! VALMAP's CSV writer), so these derives validly expand to nothing. The
//! annotations keep the code source-compatible with the real `serde`, and
//! swapping the real crates back in requires no source change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
