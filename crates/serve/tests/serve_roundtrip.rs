//! End-to-end protocol tests against an in-process daemon: session
//! lifecycle, typed errors, durability-on-shutdown, and the acceptance
//! bar — 64 concurrent tenants whose snapshot checksums are
//! byte-identical to dedicated single-stream runs.

use std::sync::Arc;

use valmod_core::ValmodConfig;
use valmod_mp::WorkerPool;
use valmod_obs as obs;
use valmod_series::gen;
use valmod_serve::{serve, snapshot_checksum, Bind, Client};
use valmod_stream::{SessionCore, TenantPolicy};

/// Whether this build records metrics at all (the `obs-off` CI leg
/// compiles the registry out; the tenant label dimension then has
/// nothing to render).
fn obs_enabled() -> bool {
    let probe = obs::metrics().journal_replayed.get();
    obs::metrics().journal_replayed.add(1);
    obs::metrics().journal_replayed.get() == probe + 1
}

fn config() -> ValmodConfig {
    ValmodConfig::new(8, 12).with_k(2).with_threads(2)
}

fn start(policy: TenantPolicy) -> valmod_serve::ServerHandle {
    serve(&Bind::Tcp("127.0.0.1:0".into()), Arc::new(WorkerPool::new()), config(), policy)
        .expect("bind")
}

fn connect(handle: &valmod_serve::ServerHandle) -> Client {
    Client::connect_tcp(&handle.local_addr().to_string()).expect("connect")
}

/// The checksum a dedicated single-stream session produces for `series`.
fn dedicated_checksum(series: &[f64]) -> String {
    let mut session = SessionCore::with_options(config(), None, None).expect("options");
    for &v in series {
        session.feed(v).expect("feed");
    }
    snapshot_checksum(&session.engine().expect("live").snapshot().expect("snapshot"))
}

#[test]
fn session_lifecycle_round_trips() {
    let handle = start(TenantPolicy::default());
    let mut c = connect(&handle);
    let series = gen::ecg(80, &gen::EcgConfig::default(), 3);

    let open = c.open("sensor-a").unwrap();
    assert_eq!(open.len(), 1);
    assert!(open[0].contains("\"status\":\"created\""), "{}", open[0]);
    let again = c.open("sensor-a").unwrap();
    assert!(again[0].contains("\"status\":\"existing\""));

    let lines = c.append("sensor-a", &series).unwrap();
    assert!(lines[0].contains("\"event\":\"append\"") && lines[0].contains("\"live\":true"));
    assert!(lines[0].contains("\"accepted\":80"), "{}", lines[0]);
    // The batch's VALMAP deltas ride the same response.
    assert!(lines.len() > 1, "a bootstrapping batch must stream deltas");
    assert!(lines[1..].iter().all(|l| l.contains("\"event\":\"update\"")));

    let valmap = c.request("valmap sensor-a").unwrap();
    assert!(valmap[0].contains("\"live\":true") && valmap[0].contains("\"points\":80"));
    assert_eq!(valmap.len(), 80 - 8 + 1 + 1, "header plus one line per entry");
    let motifs = c.request("motifs sensor-a").unwrap();
    assert!(motifs[0].contains("\"event\":\"motifs\"") && motifs.len() > 1);
    let discords = c.request("discords sensor-a").unwrap();
    assert!(discords[0].contains("\"event\":\"discords\"") && discords.len() > 1);

    let snap = c.snapshot("sensor-a").unwrap();
    let expect = dedicated_checksum(&series);
    assert!(snap[0].contains(&format!("\"checksum\":\"{expect}\"")), "{}", snap[0]);

    let stats = c.request("stats").unwrap();
    assert!(stats[0].contains("\"tenants\":1") && stats[0].contains("\"sensor-a\""));
    let metrics = c.metrics().unwrap();
    assert!(
        !obs_enabled() || metrics.contains("{tenant=\"sensor-a\"}"),
        "Prometheus dump must carry the tenant label dimension"
    );

    let close = c.request("close sensor-a").unwrap();
    assert!(close[0].contains("\"existed\":true"));
    let shutdown = c.shutdown().unwrap();
    assert!(shutdown.last().unwrap().contains("\"event\":\"shutdown\""));
    handle.join();
}

#[test]
fn errors_are_typed_lines_not_disconnects() {
    let handle = start(TenantPolicy { mem_budget: Some(1), ..TenantPolicy::default() });
    let mut c = connect(&handle);

    let bad = c.request("frobnicate now").unwrap();
    assert!(bad[0].contains("\"code\":\"proto\""), "{}", bad[0]);
    let ghost = c.append("ghost", &[1.0]).unwrap();
    assert!(ghost[0].contains("\"code\":\"unknown_tenant\""));

    // The connection survives every error above and the budget error
    // below — the same client keeps issuing requests throughout.
    c.open("t").unwrap();
    let series = gen::random_walk(60, 4);
    let first = c.append("t", &series[..40]).unwrap();
    assert!(first[0].contains("\"live\":true"));
    let refused = c.append("t", &series[40..]).unwrap();
    assert!(refused[0].contains("\"code\":\"over_budget\""), "{}", refused[0]);

    // Non-finite samples are counted, never fatal.
    let skipped = c.append("t", &[f64::NAN]).unwrap();
    assert!(skipped[0].contains("\"code\":\"over_budget\""), "budget still gates");

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_checkpoints_every_tenant() {
    let root = std::env::temp_dir().join(format!("valmod-serve-shutdown-{}", std::process::id()));
    let policy = TenantPolicy {
        checkpoint_root: Some(root.clone()),
        checkpoint_every: 0,
        ..TenantPolicy::default()
    };
    let handle = start(policy.clone());
    let mut c = connect(&handle);
    for (i, name) in ["a", "b"].iter().enumerate() {
        c.open(name).unwrap();
        c.append(name, &gen::random_walk(50, i as u64)).unwrap();
    }
    let lines = c.shutdown().unwrap();
    let checkpoints = lines.iter().filter(|l| l.contains("\"event\":\"checkpoint\"")).count();
    assert_eq!(checkpoints, 2, "{lines:?}");
    handle.join();

    // A fresh daemon over the same root recovers both tenants.
    let handle = start(policy);
    let mut c = connect(&handle);
    for name in ["a", "b"] {
        let open = c.open(name).unwrap();
        assert!(open[0].contains("\"status\":\"recovered\""), "{}", open[0]);
        assert!(open[0].contains("\"len\":50"));
    }
    c.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("valmod-serve-sock-{}.sock", std::process::id()));
    let handle = serve(
        &Bind::Unix(path.clone()),
        Arc::new(WorkerPool::new()),
        config(),
        TenantPolicy::default(),
    )
    .expect("bind unix");
    let mut c = Client::connect_unix(&path).expect("connect unix");
    c.open("u").unwrap();
    let lines = c.append("u", &gen::random_walk(40, 9)).unwrap();
    assert!(lines[0].contains("\"live\":true"));
    c.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_file(&path);
}

/// The acceptance bar: 64 tenants fed concurrently over 8 connections,
/// every tenant's snapshot checksum byte-identical to a dedicated
/// single-stream run of the same samples.
#[test]
fn sixty_four_tenants_stay_byte_identical_under_concurrency() {
    const TENANTS: usize = 64;
    const CONNS: usize = 8;
    let handle = start(TenantPolicy::default());
    let series: Vec<Vec<f64>> =
        (0..TENANTS).map(|i| gen::random_walk(90 + i % 7, i as u64)).collect();

    std::thread::scope(|s| {
        for conn in 0..CONNS {
            let handle = &handle;
            let series = &series;
            s.spawn(move || {
                let mut c = connect(handle);
                let mine: Vec<usize> = (0..TENANTS).filter(|t| t % CONNS == conn).collect();
                for &t in &mine {
                    c.open(&format!("tenant-{t}")).unwrap();
                }
                // Interleave batches across this connection's tenants so
                // engine advances from different tenants overlap in the
                // shared pool.
                let mut cursors = vec![0usize; mine.len()];
                loop {
                    let mut progressed = false;
                    for (slot, &t) in mine.iter().enumerate() {
                        let data = &series[t];
                        let at = cursors[slot];
                        if at >= data.len() {
                            continue;
                        }
                        let end = (at + 17).min(data.len());
                        let lines = c.append(&format!("tenant-{t}"), &data[at..end]).unwrap();
                        assert!(
                            lines[0].contains("\"event\":\"append\""),
                            "tenant-{t}: {}",
                            lines[0]
                        );
                        cursors[slot] = end;
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
            });
        }
    });

    let mut c = connect(&handle);
    let stats = c.request("stats").unwrap();
    assert!(stats[0].contains(&format!("\"tenants\":{TENANTS}")), "{}", stats[0]);
    for (t, data) in series.iter().enumerate() {
        let snap = c.snapshot(&format!("tenant-{t}")).unwrap();
        let expect = dedicated_checksum(data);
        assert!(
            snap[0].contains(&format!("\"checksum\":\"{expect}\"")),
            "tenant-{t} diverged from its dedicated run: {}",
            snap[0]
        );
    }
    c.shutdown().unwrap();
    handle.join();
}
