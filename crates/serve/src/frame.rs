//! Length-prefixed framing over any byte stream.
//!
//! One frame is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 payload. The protocol is strictly request/response — each
//! request frame a client writes is answered by exactly one response
//! frame — so framing is the only transport state, and the same
//! functions serve both sides of the connection.

use std::io::{self, Read, Write};

/// Upper bound on one frame's payload, shared by both sides: large
/// enough for bulk append batches and full-valmap responses, small
/// enough that a corrupt length prefix cannot drive an allocation bomb.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds
/// [`MAX_FRAME_BYTES`]; otherwise the underlying writer's errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME_BYTES fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `None` on a clean end-of-stream
/// (the peer closed between frames); a close mid-frame is an error.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for an oversized length prefix,
/// [`io::ErrorKind::UnexpectedEof`] for a truncated frame, and the
/// underlying reader's errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // A clean EOF before any prefix byte means "no more requests".
    match r.read(&mut prefix) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut prefix[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut prefix)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"open tenant-a").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, "append t \u{3bb}".as_bytes()).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"open tenant-a");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "append t \u{3bb}".as_bytes());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);

        let huge = (u32::try_from(MAX_FRAME_BYTES).unwrap() + 1).to_be_bytes().to_vec();
        let mut r = huge.as_slice();
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);

        let mut sink = Vec::new();
        let too_big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert_eq!(
            write_frame(&mut sink, &too_big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
