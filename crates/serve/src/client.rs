//! A blocking client for the serve protocol.
//!
//! Thin by design: one request frame out, one response frame in,
//! responses surfaced as the NDJSON lines the daemon produced. Typed
//! helpers cover the common calls; [`Client::request`] sends any raw
//! command line (the protocol grammar lives in [`crate::proto`]).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::frame::{read_frame, write_frame};

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a serve daemon.
pub struct Client {
    transport: Transport,
}

impl Client {
    /// Connects over TCP (e.g. `"127.0.0.1:4980"`).
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Ok(Self { transport: Transport::Tcp(TcpStream::connect(addr)?) })
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self { transport: Transport::Unix(UnixStream::connect(path)?) })
    }

    /// Sends one raw command line and returns the response's NDJSON
    /// lines (a `metrics` response is raw Prometheus text — still
    /// returned as its lines).
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::ConnectionAborted`] when
    /// the daemon closed without answering.
    pub fn request(&mut self, line: &str) -> io::Result<Vec<String>> {
        write_frame(&mut self.transport, line.as_bytes())?;
        let payload = read_frame(&mut self.transport)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionAborted, "daemon closed before responding")
        })?;
        let text = String::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
        Ok(text.lines().map(str::to_string).collect())
    }

    /// `hello [proto=N]` — version negotiation: the server's protocol
    /// generation and capability list, or a typed `proto` error when the
    /// required generation exceeds what the server speaks.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn hello(&mut self, required: Option<u32>) -> io::Result<Vec<String>> {
        match required {
            Some(v) => self.request(&format!("hello proto={v}")),
            None => self.request("hello"),
        }
    }

    /// `open <tenant>` (the default `bulk` scheduling lane).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn open(&mut self, tenant: &str) -> io::Result<Vec<String>> {
        self.request(&format!("open {tenant}"))
    }

    /// `open <tenant> priority=<tier>` — opens the tenant on an explicit
    /// QoS lane (`interactive`, `bulk`, or `maintenance`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn open_with_priority(
        &mut self,
        tenant: &str,
        priority: valmod_mp::LanePriority,
    ) -> io::Result<Vec<String>> {
        self.request(&format!("open {tenant} priority={}", crate::proto::priority_name(priority)))
    }

    /// `preview <tenant> budget=<n>` — anytime preview events (one per
    /// round, with convergence and churn, plus VALMAP `update` deltas)
    /// ending in a `preview_done` line whose checksum matches `certify`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn preview(&mut self, tenant: &str, budget: usize) -> io::Result<Vec<String>> {
        self.request(&format!("preview {tenant} budget={budget}"))
    }

    /// `screen <tenant>` — the screening tier: candidate lengths and
    /// offsets ranked by the admissible lower bound, no exact
    /// recomputation.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn screen(&mut self, tenant: &str) -> io::Result<Vec<String>> {
        self.request(&format!("screen {tenant}"))
    }

    /// `certify <tenant>` — the exact batch-grade checksum (the settling
    /// anchor a `preview` converges to).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn certify(&mut self, tenant: &str) -> io::Result<Vec<String>> {
        self.request(&format!("certify {tenant}"))
    }

    /// `append <tenant> <values...>` — returns the append report line
    /// followed by this batch's VALMAP delta lines.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn append(&mut self, tenant: &str, values: &[f64]) -> io::Result<Vec<String>> {
        let mut line = String::with_capacity(16 + values.len() * 8);
        line.push_str("append ");
        line.push_str(tenant);
        for v in values {
            line.push(' ');
            line.push_str(&format!("{v}"));
        }
        self.request(&line)
    }

    /// `snapshot <tenant>` — returns the batch-grade snapshot checksum
    /// line.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn snapshot(&mut self, tenant: &str) -> io::Result<Vec<String>> {
        self.request(&format!("snapshot {tenant}"))
    }

    /// `metrics` — the tenant-labeled Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> io::Result<String> {
        Ok(self.request("metrics")?.join("\n"))
    }

    /// `shutdown` — checkpoints every tenant and stops the daemon;
    /// returns the per-tenant checkpoint lines plus the shutdown line.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Vec<String>> {
        self.request("shutdown")
    }
}
