#![warn(missing_docs)]

//! # `valmod-serve` — the multi-tenant VALMOD streaming daemon
//!
//! One machine, many independent sensor streams: `valmod serve` hosts a
//! [`valmod_stream::TenantRegistry`] — many streaming engines over one
//! shared [`valmod_mp::WorkerPool`] — behind a framed socket protocol.
//! Clients open named tenant sessions, append samples (single or
//! batched), and query the live VALMAP, motifs, discords, or a
//! batch-grade snapshot checksum per tenant, with the VALMAP deltas each
//! append produced streamed back on the response.
//!
//! The layering keeps the exactness story trivial:
//!
//! | Layer | Responsibility |
//! |-------|----------------|
//! | [`frame`] | u32 length-prefixed frames over TCP or Unix sockets |
//! | [`proto`] | request grammar, NDJSON response vocabulary, checksums |
//! | [`server`] | accept loop, thread-per-connection dispatch, shutdown |
//! | [`valmod_stream::TenantRegistry`] | fair lanes, memory budget, per-tenant durability |
//! | [`valmod_stream::StreamingValmod`] | the actual VALMOD math |
//!
//! The daemon adds no state below the registry, so every tenant's
//! valmap/deltas/snapshot stays byte-identical to a dedicated
//! single-stream run regardless of interleaving, tenant count, or
//! worker count. Backpressure (lane saturation, memory budget) surfaces
//! as typed protocol errors, never a panic; `shutdown` checkpoints all
//! tenants into their namespaced stores before the daemon stops.
//!
//! ```no_run
//! use std::sync::Arc;
//! use valmod_core::ValmodConfig;
//! use valmod_mp::WorkerPool;
//! use valmod_serve::{serve, Bind, Client};
//! use valmod_stream::TenantPolicy;
//!
//! let handle = serve(
//!     &Bind::Tcp("127.0.0.1:0".into()),
//!     Arc::new(WorkerPool::new()),
//!     ValmodConfig::new(16, 24),
//!     TenantPolicy::default(),
//! )
//! .unwrap();
//! let mut client = Client::connect_tcp(&handle.local_addr().to_string()).unwrap();
//! client.open("sensor-7").unwrap();
//! client.append("sensor-7", &[0.5, 0.25, -1.0]).unwrap();
//! client.shutdown().unwrap();
//! handle.join();
//! ```

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::Client;
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
pub use proto::{parse_request, snapshot_checksum, Checksum, Request};
pub use server::{serve, Bind, BoundAddr, ServerHandle};
