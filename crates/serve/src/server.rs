//! The daemon: listener, per-connection threads, request dispatch.
//!
//! The server is deliberately boring: blocking sockets, one OS thread
//! per connection, strict request/response framing. All the interesting
//! multi-tenancy — fair lanes, memory budget, staggered durability —
//! lives in [`TenantRegistry`]; the connection handler only parses
//! requests, calls the registry, and renders NDJSON. Concurrency safety
//! therefore reduces to the registry's own locking, and the daemon adds
//! no state that could perturb engine results: every tenant stays
//! byte-identical to a dedicated single-stream run.
//!
//! Shutdown is a protocol command, not a signal: `shutdown` checkpoints
//! every tenant (each into its namespaced store), answers with the
//! per-tenant generations, and stops the accept loop. Connection
//! sockets carry a short read timeout so idle handler threads notice
//! the flag and [`ServerHandle::join`] returns promptly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use valmod_core::ValmodConfig;
use valmod_mp::WorkerPool;
use valmod_obs as obs;
use valmod_stream::{
    update_line, OpenReport, TenantError, TenantPolicy, TenantRegistry, ValmapDelta,
};

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    error_line, json_str, parse_request, priority_name, snapshot_checksum, tenant_error_line,
    Request, PROTO_VERSION,
};

/// How long a connection read blocks before re-checking the shutdown
/// flag. Bounds how stale an idle handler thread can be at shutdown.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 picks a free port —
    /// read the bound address back from [`ServerHandle::local_addr`]).
    Tcp(String),
    /// A Unix domain socket path (removed and re-created on bind).
    Unix(PathBuf),
}

/// The daemon's bound address, printable for clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAddr {
    /// The actual TCP socket address.
    Tcp(SocketAddr),
    /// The Unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(a) => write!(f, "{a}"),
            Self::Unix(p) => write!(f, "{}", p.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(Some(t)),
            Self::Unix(s) => s.set_read_timeout(Some(t)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

struct Shared {
    registry: TenantRegistry,
    addr: BoundAddr,
    shutting_down: AtomicBool,
}

/// A running daemon. Dropping the handle does not stop the server; send
/// the `shutdown` protocol command (e.g. via
/// [`crate::Client::shutdown`]) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: BoundAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// The tenant registry (shared with every connection).
    #[must_use]
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Whether a `shutdown` command has been processed.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop and every connection thread to finish.
    /// Returns once shutdown has fully drained; call after a client has
    /// issued `shutdown`.
    ///
    /// # Panics
    ///
    /// If the acceptor thread panicked.
    pub fn join(self) {
        self.acceptor.join().expect("acceptor thread panicked");
    }
}

/// Binds and starts the daemon: a listener thread accepting
/// connections, each served by its own thread until shutdown.
///
/// # Errors
///
/// Socket bind errors (address in use, bad address, unwritable socket
/// path).
pub fn serve(
    bind: &Bind,
    pool: Arc<WorkerPool>,
    base: ValmodConfig,
    policy: TenantPolicy,
) -> io::Result<ServerHandle> {
    let (listener, addr) = match bind {
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec)?;
            let addr = BoundAddr::Tcp(l.local_addr()?);
            (Listener::Tcp(l), addr)
        }
        Bind::Unix(path) => {
            // A stale socket file from a previous run blocks bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            (Listener::Unix(l), BoundAddr::Unix(path.clone()))
        }
    };
    let shared = Arc::new(Shared {
        registry: TenantRegistry::new(pool, base, policy),
        addr: addr.clone(),
        shutting_down: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("valmod-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawning the acceptor thread");
    Ok(ServerHandle { addr, shared, acceptor })
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let conn = match listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("valmod-serve-conn".into())
                    .spawn(move || connection_loop(stream, &conn_shared))
                    .expect("spawning a connection thread");
                handlers.push(handle);
            }
            // Transient accept errors (per-connection resets) never
            // take the daemon down.
            Err(_) => continue,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Wakes the (blocking) accept call after the shutdown flag is set by
/// connecting once; the accept loop sees the flag and exits, dropping
/// the wake connection unserved.
fn wake_acceptor(addr: &BoundAddr) {
    match addr {
        BoundAddr::Tcp(a) => {
            let _ = TcpStream::connect_timeout(a, Duration::from_secs(1));
        }
        BoundAddr::Unix(p) => {
            let _ = UnixStream::connect(p);
        }
    }
}

fn connection_loop(mut stream: Conn, shared: &Arc<Shared>) {
    if stream.set_read_timeout(IDLE_POLL).is_err() {
        return;
    }
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let (response, shutdown) = match std::str::from_utf8(&payload) {
            Ok(text) => respond(shared, text),
            Err(_) => (error_line("proto", "request is not UTF-8").into_bytes(), false),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        if shutdown {
            shared.shutting_down.store(true, Ordering::SeqCst);
            wake_acceptor(&shared.addr);
            return;
        }
    }
}

/// Handles one request line: returns the response payload and whether
/// this request shuts the daemon down.
fn respond(shared: &Arc<Shared>, line: &str) -> (Vec<u8>, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return (error_line("proto", &msg).into_bytes(), false),
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        return (error_line("shutting_down", "daemon is shutting down").into_bytes(), false);
    }
    let reg = &shared.registry;
    let result: Result<(Vec<String>, bool), TenantError> = dispatch(reg, &request);
    match result {
        Ok((lines, shutdown)) => (lines.join("\n").into_bytes(), shutdown),
        Err(e) => (tenant_error_line(&e).into_bytes(), false),
    }
}

/// The previous preview round's VALMAP columns (`mpn`, `ip`, `lp`),
/// kept to diff each round's entries into `update` delta lines.
type PrevPreview = (Vec<f64>, Vec<Option<usize>>, Vec<usize>);

#[allow(clippy::too_many_lines)]
fn dispatch(reg: &TenantRegistry, request: &Request) -> Result<(Vec<String>, bool), TenantError> {
    let lines = match request {
        Request::Hello { proto } => {
            if let Some(required) = proto {
                if *required > PROTO_VERSION {
                    let msg =
                        format!("server speaks proto {PROTO_VERSION}, client requires {required}");
                    return Ok((vec![error_line("proto", &msg)], false));
                }
            }
            vec![format!(
                "{{\"event\":\"hello\",\"proto\":{PROTO_VERSION},\"capabilities\":\
                 [\"priority\",\"preview\",\"screen\",\"certify\"]}}"
            )]
        }
        Request::Open { tenant, priority } => {
            let report = reg.open_with_priority(tenant, *priority)?;
            let len = reg.with_session(tenant, |s| s.engine().map_or(0, |e| e.len()))?;
            let t = json_str(tenant);
            let q = priority_name(*priority);
            vec![match report {
                OpenReport::Created => format!(
                    "{{\"event\":\"open\",\"tenant\":{t},\"status\":\"created\",\
                     \"priority\":\"{q}\",\"len\":{len}}}"
                ),
                OpenReport::Existing => format!(
                    "{{\"event\":\"open\",\"tenant\":{t},\"status\":\"existing\",\
                     \"priority\":\"{q}\",\"len\":{len}}}"
                ),
                OpenReport::Recovered { generation, len } => format!(
                    "{{\"event\":\"open\",\"tenant\":{t},\"status\":\"recovered\",\
                     \"priority\":\"{q}\",\"generation\":{generation},\"len\":{len}}}"
                ),
            }]
        }
        Request::Append { tenant, values } => {
            let report = reg.append(tenant, values)?;
            let mut lines = vec![format!(
                "{{\"event\":\"append\",\"tenant\":{},\"accepted\":{},\"skipped\":{},\
                 \"bootstrapped\":{},\"checkpoints\":{},\"len\":{},\"live\":{}}}",
                json_str(tenant),
                report.accepted,
                report.skipped,
                report.bootstrapped,
                report.checkpoints,
                report.len,
                report.live,
            )];
            if report.live {
                // The session's delta stream: every VALMAP entry this
                // batch changed, in the CLI's NDJSON update format.
                let deltas = reg.with_session(tenant, |s| {
                    s.engine_mut().map_or_else(Vec::new, |e| e.poll_deltas())
                })?;
                lines.extend(deltas.iter().map(|d| update_line(report.len, d)));
            }
            lines
        }
        Request::Valmap { tenant } => reg.with_session(tenant, |s| {
            let t = json_str(tenant);
            match s.engine_mut() {
                None => vec![format!(
                    "{{\"event\":\"valmap\",\"tenant\":{t},\"live\":false,\"entries\":0}}"
                )],
                Some(engine) => {
                    let points = engine.len();
                    let v = engine.valmap();
                    let mut lines = Vec::with_capacity(v.mpn.len() + 1);
                    lines.push(format!(
                        "{{\"event\":\"valmap\",\"tenant\":{t},\"live\":true,\
                         \"points\":{points},\"entries\":{}}}",
                        v.mpn.len()
                    ));
                    for (i, (&mpn, (&ip, &lp))) in
                        v.mpn.iter().zip(v.ip.iter().zip(v.lp.iter())).enumerate()
                    {
                        let ip = ip.map_or_else(|| "null".to_string(), |j| j.to_string());
                        let mpn = if mpn.is_finite() { format!("{mpn}") } else { "null".into() };
                        lines.push(format!(
                            "{{\"offset\":{i},\"mpn\":{mpn},\"ip\":{ip},\"lp\":{lp}}}"
                        ));
                    }
                    lines
                }
            }
        })?,
        Request::Motifs { tenant } => reg.with_session(tenant, |s| {
            let t = json_str(tenant);
            match s.engine_mut() {
                None => {
                    vec![format!("{{\"event\":\"motifs\",\"tenant\":{t},\"live\":false}}")]
                }
                Some(engine) => {
                    let mut lines =
                        vec![format!("{{\"event\":\"motifs\",\"tenant\":{t},\"live\":true}}")];
                    for lm in engine.motifs() {
                        for p in &lm.pairs {
                            lines.push(format!(
                                "{{\"length\":{},\"a\":{},\"b\":{},\"distance\":{}}}",
                                lm.length, p.a, p.b, p.distance
                            ));
                        }
                    }
                    lines
                }
            }
        })?,
        Request::Discords { tenant } => reg.with_session(tenant, |s| {
            let t = json_str(tenant);
            match s.engine_mut() {
                None => {
                    vec![format!("{{\"event\":\"discords\",\"tenant\":{t},\"live\":false}}")]
                }
                Some(engine) => {
                    let mut lines =
                        vec![format!("{{\"event\":\"discords\",\"tenant\":{t},\"live\":true}}")];
                    for ld in engine.discords() {
                        for d in &ld.discords {
                            lines.push(format!(
                                "{{\"length\":{},\"offset\":{},\"nn_distance\":{}}}",
                                ld.length, d.offset, d.nn_distance
                            ));
                        }
                    }
                    lines
                }
            }
        })?,
        Request::Snapshot { tenant } => {
            let out = reg.with_session(tenant, |s| s.engine().map(|e| (e.len(), e.snapshot())))?;
            let t = json_str(tenant);
            match out {
                None => {
                    vec![format!("{{\"event\":\"snapshot\",\"tenant\":{t},\"live\":false}}")]
                }
                Some((points, snapshot)) => {
                    let snapshot = snapshot.map_err(TenantError::Series)?;
                    vec![format!(
                        "{{\"event\":\"snapshot\",\"tenant\":{t},\"live\":true,\
                         \"points\":{points},\"checksum\":\"{}\"}}",
                        snapshot_checksum(&snapshot)
                    )]
                }
            }
        }
        Request::Preview { tenant, budget } => {
            let t = json_str(tenant);
            let out = reg.with_session(tenant, |s| {
                s.engine().map(|e| {
                    let n = e.len();
                    let mut lines = Vec::new();
                    let mut prev: Option<PrevPreview> = None;
                    let result = e.snapshot_anytime(*budget, &mut |p| {
                        lines.push(format!(
                            "{{\"event\":\"preview\",\"tenant\":{t},\"round\":{},\
                             \"rounds\":{},\"cells_retired\":{},\"cells_total\":{},\
                             \"convergence\":{},\"churn\":{},\"settled\":{}}}",
                            p.round,
                            p.rounds,
                            p.cells_retired,
                            p.cells_total,
                            p.convergence(),
                            p.churn,
                            p.settled(),
                        ));
                        // The improving VALMAP rides the existing delta
                        // channel: one `update` line per entry that
                        // changed since the previous round's preview.
                        let v = &p.valmap;
                        for i in 0..v.mpn.len() {
                            let changed =
                                prev.as_ref().map_or(v.mpn[i].is_finite(), |(m, ip, lp)| {
                                    m[i].to_bits() != v.mpn[i].to_bits()
                                        || ip[i] != v.ip[i]
                                        || lp[i] != v.lp[i]
                                });
                            if changed {
                                lines.push(update_line(
                                    n,
                                    &ValmapDelta {
                                        offset: i,
                                        match_offset: v.ip[i],
                                        length: v.lp[i],
                                        normalized_distance: v.mpn[i],
                                    },
                                ));
                            }
                        }
                        prev = Some((v.mpn.clone(), v.ip.clone(), v.lp.clone()));
                    });
                    (n, result, lines)
                })
            })?;
            match out {
                None => vec![format!("{{\"event\":\"preview\",\"tenant\":{t},\"live\":false}}")],
                Some((points, result, mut lines)) => {
                    let snapshot = result.map_err(TenantError::Series)?;
                    lines.push(format!(
                        "{{\"event\":\"preview_done\",\"tenant\":{t},\"live\":true,\
                         \"points\":{points},\"budget\":{budget},\"checksum\":\"{}\"}}",
                        snapshot_checksum(&snapshot)
                    ));
                    lines
                }
            }
        }
        Request::Screen { tenant } => {
            let out = reg.with_session(tenant, |s| s.engine().map(|e| (e.len(), e.screen())))?;
            let t = json_str(tenant);
            match out {
                None => vec![format!("{{\"event\":\"screen\",\"tenant\":{t},\"live\":false}}")],
                Some((points, report)) => {
                    let report = report.map_err(TenantError::Series)?;
                    let mut lines = vec![format!(
                        "{{\"event\":\"screen\",\"tenant\":{t},\"live\":true,\
                         \"points\":{points},\"base_length\":{},\"lengths\":{}}}",
                        report.base.length,
                        report.lengths.len()
                    )];
                    for sl in &report.lengths {
                        for c in &sl.candidates {
                            let m = c.match_offset;
                            lines.push(format!(
                                "{{\"length\":{},\"offset\":{},\"match_offset\":{m},\
                                 \"lower_bound\":{}}}",
                                c.length, c.offset, c.lower_bound
                            ));
                        }
                    }
                    lines
                }
            }
        }
        Request::Certify { tenant } => {
            let out = reg.with_session(tenant, |s| s.engine().map(|e| (e.len(), e.snapshot())))?;
            let t = json_str(tenant);
            match out {
                None => vec![format!("{{\"event\":\"certify\",\"tenant\":{t},\"live\":false}}")],
                Some((points, snapshot)) => {
                    let snapshot = snapshot.map_err(TenantError::Series)?;
                    vec![format!(
                        "{{\"event\":\"certify\",\"tenant\":{t},\"live\":true,\
                         \"points\":{points},\"checksum\":\"{}\"}}",
                        snapshot_checksum(&snapshot)
                    )]
                }
            }
        }
        Request::Stats => {
            let names = reg.names();
            let rendered: Vec<String> = names.iter().map(|n| json_str(n)).collect();
            vec![format!(
                "{{\"event\":\"stats\",\"tenants\":{},\"mem_bytes\":{},\"names\":[{}]}}",
                names.len(),
                reg.mem_used(),
                rendered.join(",")
            )]
        }
        Request::Metrics => {
            // The one non-NDJSON response: the raw tenant-labeled
            // Prometheus text exposition, scrape-ready.
            return Ok((vec![obs::render_prometheus()], false));
        }
        Request::Close { tenant } => {
            let existed = reg.close(tenant)?;
            vec![format!(
                "{{\"event\":\"close\",\"tenant\":{},\"existed\":{existed}}}",
                json_str(tenant)
            )]
        }
        Request::Shutdown => {
            let done = reg.checkpoint_all()?;
            let mut lines: Vec<String> = done
                .iter()
                .map(|(name, generation)| {
                    format!(
                        "{{\"event\":\"checkpoint\",\"tenant\":{},\"generation\":{generation}}}",
                        json_str(name)
                    )
                })
                .collect();
            lines.push(format!(
                "{{\"event\":\"shutdown\",\"tenants\":{},\"checkpointed\":{}}}",
                reg.names().len(),
                done.len()
            ));
            return Ok((lines, true));
        }
    };
    Ok((lines, false))
}
