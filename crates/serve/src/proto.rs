//! The request grammar and NDJSON response vocabulary.
//!
//! Requests are single-line UTF-8 commands (space-separated tokens)
//! carried in one frame; responses are NDJSON — one JSON object per
//! line — so a response frame is exactly the delta-channel format the
//! `valmod stream` CLI already emits, plus serve-specific events.
//! Keeping both directions text keeps the protocol inspectable with
//! nothing but a hex dump, and float values use shortest round-trip
//! formatting so piping a response back in reproduces exact bits.
//!
//! ```text
//! hello proto=1
//! open sensor-7 priority=interactive
//! append sensor-7 0.5 0.25 -1.125
//! valmap sensor-7
//! preview sensor-7 budget=4
//! certify sensor-7
//! shutdown
//! ```
//!
//! Optional request parameters ride as trailing `key=value` tokens, so
//! older clients' bare commands keep parsing and newer clients degrade
//! loudly: an unknown key is a typed `proto` error on that request, never
//! a disconnect.
//!
//! Tenant names are arbitrary non-empty UTF-8 without whitespace or
//! control characters (the durability layer escapes them for the
//! filesystem; the metrics layer escapes them for Prometheus labels).

use valmod_mp::LanePriority;
use valmod_stream::TenantError;

/// The protocol generation this build speaks. Sent back in the `hello`
/// event; a client that needs a newer generation (`hello proto=N` with
/// `N > PROTO_VERSION`) gets a typed `proto` error instead of silently
/// wrong behavior.
pub const PROTO_VERSION: u32 = 1;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation: the server answers with its protocol
    /// generation and capabilities before any tenant work.
    Hello {
        /// Minimum protocol generation the client requires, if stated.
        proto: Option<u32>,
    },
    /// Open (or re-attach to) a tenant session.
    Open {
        /// Tenant name.
        tenant: String,
        /// Scheduling lane for the tenant's work (client-visible QoS).
        priority: LanePriority,
    },
    /// Append a batch of samples to a tenant's stream.
    Append {
        /// Tenant name.
        tenant: String,
        /// Samples, in arrival order.
        values: Vec<f64>,
    },
    /// Dump the tenant's live VALMAP (one line per entry).
    Valmap {
        /// Tenant name.
        tenant: String,
    },
    /// Dump the tenant's live top-k motif pairs per length.
    Motifs {
        /// Tenant name.
        tenant: String,
    },
    /// Dump the tenant's live top-k discords per length.
    Discords {
        /// Tenant name.
        tenant: String,
    },
    /// Run a batch-grade snapshot and return its checksum — the
    /// bit-identity anchor clients compare against dedicated runs.
    Snapshot {
        /// Tenant name.
        tenant: String,
    },
    /// Anytime preview: stream improving VALMAP previews (one NDJSON
    /// event per round with convergence and churn), settling to the exact
    /// answer — the final event carries the same checksum `certify`
    /// returns.
    Preview {
        /// Tenant name.
        tenant: String,
        /// Number of anytime rounds (the preview budget).
        budget: usize,
    },
    /// Screening tier: rank candidate lengths and offsets by the
    /// admissible lower bound, without exact recomputation.
    Screen {
        /// Tenant name.
        tenant: String,
    },
    /// Exact certification: run the full pipeline and return the
    /// batch-grade checksum (the settling anchor for `preview`).
    Certify {
        /// Tenant name.
        tenant: String,
    },
    /// Registry-level stats (tenant count, memory use).
    Stats,
    /// The tenant-labeled Prometheus metrics dump.
    Metrics,
    /// Checkpoint and drop one tenant.
    Close {
        /// Tenant name.
        tenant: String,
    },
    /// Checkpoint every tenant and stop the daemon.
    Shutdown,
}

fn tenant_token(cmd: &str, token: Option<&str>) -> Result<String, String> {
    let t = token.ok_or_else(|| format!("{cmd} requires a tenant name"))?;
    if t.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(format!("tenant name {t:?} contains whitespace or control characters"));
    }
    Ok(t.to_string())
}

/// Maps a wire QoS token onto the pool's scheduling lane.
///
/// # Errors
///
/// A user-facing message naming the valid tiers.
pub fn parse_priority(token: &str) -> Result<LanePriority, String> {
    match token {
        "interactive" => Ok(LanePriority::Interactive),
        "bulk" => Ok(LanePriority::Bulk),
        "maintenance" => Ok(LanePriority::Maintenance),
        other => {
            Err(format!("unknown priority {other:?} (expected interactive, bulk, or maintenance)"))
        }
    }
}

/// The wire name of a scheduling lane (echoed in the `open` event).
#[must_use]
pub fn priority_name(priority: LanePriority) -> &'static str {
    match priority {
        LanePriority::Interactive => "interactive",
        LanePriority::Bulk => "bulk",
        LanePriority::Maintenance => "maintenance",
    }
}

/// Splits trailing `key=value` parameter tokens: each remaining token
/// must contain `=`; a bare token or an unknown key (checked by the
/// caller) is a `proto` error on this request, never a disconnect.
fn kv_params<'a>(
    cmd: &str,
    tokens: impl Iterator<Item = &'a str>,
) -> Result<Vec<(&'a str, &'a str)>, String> {
    tokens
        .map(|t| {
            t.split_once('=')
                .filter(|(k, v)| !k.is_empty() && !v.is_empty())
                .ok_or_else(|| format!("expected key=value parameter after {cmd}, got {t:?}"))
        })
        .collect()
}

fn reject_unknown_key(cmd: &str, key: &str, known: &[&str]) -> Result<(), String> {
    if known.contains(&key) {
        Ok(())
    } else {
        Err(format!("unknown parameter {key:?} for {cmd} (expected one of {known:?})"))
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A user-facing message for unknown commands, missing tenant names,
/// unparsable samples, malformed or unknown `key=value` parameters, or
/// trailing tokens.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let cmd = tokens.next().ok_or_else(|| "empty request".to_string())?;
    let req = match cmd {
        "hello" => {
            let mut proto = None;
            for (key, value) in kv_params(cmd, tokens.by_ref())? {
                reject_unknown_key(cmd, key, &["proto"])?;
                proto = Some(
                    value
                        .parse::<u32>()
                        .map_err(|_| format!("cannot parse proto version {value:?}"))?,
                );
            }
            return Ok(Request::Hello { proto });
        }
        "open" => {
            let tenant = tenant_token(cmd, tokens.next())?;
            let mut priority = LanePriority::Bulk;
            for (key, value) in kv_params(cmd, tokens.by_ref())? {
                reject_unknown_key(cmd, key, &["priority"])?;
                priority = parse_priority(value)?;
            }
            return Ok(Request::Open { tenant, priority });
        }
        "preview" => {
            let tenant = tenant_token(cmd, tokens.next())?;
            let mut budget = valmod_core::DEFAULT_ANYTIME_BUDGET;
            for (key, value) in kv_params(cmd, tokens.by_ref())? {
                reject_unknown_key(cmd, key, &["budget"])?;
                budget =
                    value.parse::<usize>().ok().filter(|&b| b > 0).ok_or_else(|| {
                        format!("budget must be a positive integer, got {value:?}")
                    })?;
            }
            return Ok(Request::Preview { tenant, budget });
        }
        "screen" => Request::Screen { tenant: tenant_token(cmd, tokens.next())? },
        "certify" => Request::Certify { tenant: tenant_token(cmd, tokens.next())? },
        "append" => {
            let tenant = tenant_token(cmd, tokens.next())?;
            let values = tokens
                .by_ref()
                .map(|t| {
                    t.parse::<f64>().map_err(|_| format!("cannot parse sample {t:?} for append"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            if values.is_empty() {
                return Err("append requires at least one sample".into());
            }
            return Ok(Request::Append { tenant, values });
        }
        "valmap" => Request::Valmap { tenant: tenant_token(cmd, tokens.next())? },
        "motifs" => Request::Motifs { tenant: tenant_token(cmd, tokens.next())? },
        "discords" => Request::Discords { tenant: tenant_token(cmd, tokens.next())? },
        "snapshot" => Request::Snapshot { tenant: tenant_token(cmd, tokens.next())? },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "close" => Request::Close { tenant: tenant_token(cmd, tokens.next())? },
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown command {other:?}")),
    };
    if let Some(extra) = tokens.next() {
        return Err(format!("unexpected token {extra:?} after {cmd}"));
    }
    Ok(req)
}

/// JSON string escape for tenant names and error messages.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The protocol error line for one failed request. Codes are stable:
/// `saturated` and `over_budget` are backpressure (retry later),
/// `unknown_tenant`, `series`, and `proto` are caller mistakes.
#[must_use]
pub fn error_line(code: &str, message: &str) -> String {
    format!("{{\"event\":\"error\",\"code\":{},\"message\":{}}}", json_str(code), json_str(message))
}

/// Maps a registry error onto its wire code + message.
#[must_use]
pub fn tenant_error_line(err: &TenantError) -> String {
    let code = match err {
        TenantError::Saturated(_) => "saturated",
        TenantError::OverBudget { .. } => "over_budget",
        TenantError::Unknown(_) => "unknown_tenant",
        TenantError::Series(_) => "series",
    };
    error_line(code, &err.to_string())
}

/// FNV-1a 64-bit over a canonical byte stream — the checksum clients use
/// to compare a served tenant against a dedicated run without shipping
/// the whole structure. Stable across platforms: every value is folded
/// in as explicit little-endian bytes.
#[derive(Debug, Clone, Copy)]
pub struct Checksum(u64);

impl Default for Checksum {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Checksum {
    /// Folds raw bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Folds one `f64` by exact bit pattern.
    pub fn update_f64(&mut self, v: f64) {
        self.update_u64(v.to_bits());
    }

    /// Folds an optional index; `None` is distinct from every index.
    pub fn update_opt(&mut self, v: Option<usize>) {
        match v {
            Some(i) => {
                self.update_u64(1);
                self.update_u64(i as u64);
            }
            None => self.update_u64(0),
        }
    }

    /// The digest, as fixed-width lowercase hex.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// The canonical digest of one batch-grade snapshot: VALMAP `⟨MPn, IP,
/// LP⟩` by exact bit pattern, then every per-length top-k pair. Two
/// engines produce the same hex string iff their snapshots agree on
/// those structures bit-for-bit — the serve protocol's `snapshot`
/// response, and what CI smoke compares against dedicated runs.
#[must_use]
pub fn snapshot_checksum(snapshot: &valmod_core::ValmodOutput) -> String {
    let mut c = Checksum::default();
    for &v in &snapshot.valmap.mpn {
        c.update_f64(v);
    }
    for &ip in &snapshot.valmap.ip {
        c.update_opt(ip);
    }
    for &lp in &snapshot.valmap.lp {
        c.update_u64(lp as u64);
    }
    for r in &snapshot.per_length {
        c.update_u64(r.length as u64);
        for p in &r.pairs {
            c.update_u64(p.a as u64);
            c.update_u64(p.b as u64);
            c.update_f64(p.distance);
        }
    }
    c.hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            parse_request("open a").unwrap(),
            Request::Open { tenant: "a".into(), priority: LanePriority::Bulk }
        );
        assert_eq!(
            parse_request("append t 1.5 -2 0.25").unwrap(),
            Request::Append { tenant: "t".into(), values: vec![1.5, -2.0, 0.25] }
        );
        assert_eq!(parse_request("  shutdown  ").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        for bad in
            ["", "open", "append t", "append t x", "frobnicate t", "valmap a b", "shutdown now"]
        {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn quality_tier_verbs_parse_and_reject() {
        assert_eq!(parse_request("hello").unwrap(), Request::Hello { proto: None });
        assert_eq!(parse_request("hello proto=1").unwrap(), Request::Hello { proto: Some(1) });
        assert_eq!(
            parse_request("open t priority=interactive").unwrap(),
            Request::Open { tenant: "t".into(), priority: LanePriority::Interactive }
        );
        assert_eq!(
            parse_request("open t priority=maintenance").unwrap(),
            Request::Open { tenant: "t".into(), priority: LanePriority::Maintenance }
        );
        assert_eq!(
            parse_request("preview t").unwrap(),
            Request::Preview { tenant: "t".into(), budget: valmod_core::DEFAULT_ANYTIME_BUDGET }
        );
        assert_eq!(
            parse_request("preview t budget=7").unwrap(),
            Request::Preview { tenant: "t".into(), budget: 7 }
        );
        assert_eq!(parse_request("screen t").unwrap(), Request::Screen { tenant: "t".into() });
        assert_eq!(parse_request("certify t").unwrap(), Request::Certify { tenant: "t".into() });
        // Unknown keys, bare parameters, and bad values are request-level
        // errors (mapped to `proto` error lines), never disconnects.
        for bad in [
            "hello proto=banana",
            "hello shout",
            "open t priority=urgent",
            "open t priority",
            "open t qos=interactive",
            "preview t budget=0",
            "preview t budget=-1",
            "preview t rounds=4",
            "screen",
            "certify t extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn priority_names_round_trip() {
        for p in [LanePriority::Interactive, LanePriority::Bulk, LanePriority::Maintenance] {
            assert_eq!(parse_priority(priority_name(p)).unwrap(), p);
        }
        assert!(parse_priority("turbo").is_err());
    }

    #[test]
    fn float_tokens_round_trip_exactly() {
        let v = 0.123_456_789_012_345_6_f64.sin();
        let line = format!("append t {v}");
        match parse_request(&line).unwrap() {
            Request::Append { values, .. } => assert_eq!(values[0].to_bits(), v.to_bits()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_lines_are_well_formed() {
        let line = error_line("proto", "bad \"quoted\" input");
        assert!(line.starts_with("{\"event\":\"error\",\"code\":\"proto\""));
        assert!(line.contains("\\\"quoted\\\""));
        let err = TenantError::Unknown("ghost".into());
        assert!(tenant_error_line(&err).contains("\"code\":\"unknown_tenant\""));
    }

    #[test]
    fn checksums_depend_on_every_field() {
        let digest = |f: &dyn Fn(&mut Checksum)| {
            let mut c = Checksum::default();
            f(&mut c);
            c.hex()
        };
        let base = digest(&|c| {
            c.update_f64(1.0);
            c.update_opt(Some(3));
        });
        assert_ne!(base, digest(&|c| c.update_f64(1.0)));
        assert_ne!(
            base,
            digest(&|c| {
                c.update_f64(1.0);
                c.update_opt(None);
            })
        );
        // Stable, platform-independent value (regression anchor).
        assert_eq!(digest(&|c| c.update_u64(0)), "a8c7f832281a39c5");
    }
}
