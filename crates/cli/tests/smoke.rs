//! End-to-end smoke tests of the `valmod` binary: every subcommand runs
//! against a real generated file and produces the expected artifacts.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_valmod"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("valmod_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn generate_ecg(path: &std::path::Path, n: usize) {
    let out = bin()
        .args(["generate", "--kind", "ecg", "--n", &n.to_string(), "--seed", "9", "--output"])
        .arg(path)
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("valmod run"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_run_produces_valmap_report_and_json() {
    let series_path = temp_path("run_input.txt");
    let json_path = temp_path("valmap.json");
    generate_ecg(&series_path, 1200);

    let out = bin()
        .args(["run", "--lmin", "24", "--lmax", "40", "--k", "3", "--input"])
        .arg(&series_path)
        .arg("--valmap-out")
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VALMAP"), "missing VALMAP section:\n{text}");
    assert!(text.contains("top motif pairs"), "missing motif table:\n{text}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"l_min\": 24"));
    assert!(json.contains("\"checkpoints\""));
    // 1200 points, l_min 24 -> 1177 entries in MPn.
    assert!(json.matches(',').count() > 1177);
}

#[test]
fn profile_reports_motifs_and_discords() {
    let series_path = temp_path("profile_input.txt");
    generate_ecg(&series_path, 1000);
    let out = bin()
        .args(["profile", "--length", "32", "--k", "2", "--input"])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top-2 motif pairs"));
    assert!(text.contains("top-2 discords"));
}

#[test]
fn motif_set_expands_a_pair() {
    let series_path = temp_path("motifset_input.txt");
    generate_ecg(&series_path, 1500);
    let out = bin()
        .args(["motif-set", "--a", "100", "--b", "700", "--length", "40", "--input"])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("motif set of pair (100, 700)"));
    assert!(text.contains("occurrences"));
}

#[test]
fn run_on_missing_file_fails_cleanly() {
    let out = bin()
        .args(["run", "--input", "/no/such/file.txt", "--lmin", "8", "--lmax", "16"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn generate_rejects_unknown_kind() {
    let out = bin()
        .args(["generate", "--kind", "seismo", "--n", "10", "--output", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
