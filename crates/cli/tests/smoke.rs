//! End-to-end smoke tests of the `valmod` binary: every subcommand runs
//! against a real generated file and produces the expected artifacts.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_valmod"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("valmod_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn generate_ecg(path: &std::path::Path, n: usize) {
    let out = bin()
        .args(["generate", "--kind", "ecg", "--n", &n.to_string(), "--seed", "9", "--output"])
        .arg(path)
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("valmod run"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_run_produces_valmap_report_and_json() {
    let series_path = temp_path("run_input.txt");
    let json_path = temp_path("valmap.json");
    generate_ecg(&series_path, 1200);

    let out = bin()
        .args(["run", "--lmin", "24", "--lmax", "40", "--k", "3", "--input"])
        .arg(&series_path)
        .arg("--valmap-out")
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VALMAP"), "missing VALMAP section:\n{text}");
    assert!(text.contains("top motif pairs"), "missing motif table:\n{text}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"l_min\": 24"));
    assert!(json.contains("\"checkpoints\""));
    // 1200 points, l_min 24 -> 1177 entries in MPn.
    assert!(json.matches(',').count() > 1177);
}

#[test]
fn profile_reports_motifs_and_discords() {
    let series_path = temp_path("profile_input.txt");
    generate_ecg(&series_path, 1000);
    let out = bin()
        .args(["profile", "--length", "32", "--k", "2", "--input"])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top-2 motif pairs"));
    assert!(text.contains("top-2 discords"));
}

#[test]
fn motif_set_expands_a_pair() {
    let series_path = temp_path("motifset_input.txt");
    generate_ecg(&series_path, 1500);
    let out = bin()
        .args(["motif-set", "--a", "100", "--b", "700", "--length", "40", "--input"])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("motif set of pair (100, 700)"));
    assert!(text.contains("occurrences"));
}

#[test]
fn stream_emits_ndjson_deltas_and_summary() {
    let series_path = temp_path("stream_input.txt");
    generate_ecg(&series_path, 700);
    let out = bin()
        .args(["stream", "--lmin", "24", "--lmax", "28", "--k", "2", "--warmup", "200", "--input"])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("\"event\":\"bootstrap\"") && lines[0].contains("\"points\":200"));
    assert!(lines.last().unwrap().contains("\"event\":\"summary\""));
    let updates = lines.iter().filter(|l| l.contains("\"event\":\"update\"")).count();
    assert!(updates > 0, "500 appended ECG points must improve some VALMAP entry:\n{text}");
    // Every line is a single JSON object — NDJSON, parseable line by line.
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad NDJSON line {line:?}");
    }
}

#[test]
fn stream_reads_stdin_and_survives_bad_points() {
    use std::io::Write;
    let mut values = String::new();
    // 120 noisy points, one corrupted sample mid-stream, then more points.
    for i in 0..220 {
        if i == 150 {
            values.push_str("NaN\n");
        }
        let x = f64::from(i) * 0.7;
        values.push_str(&format!("{}\n", x.sin() + 0.1 * (x * 3.3).cos()));
    }
    let mut child = bin()
        .args(["stream", "--input", "-", "--lmin", "8", "--lmax", "12", "--every", "10"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(values.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"event\":\"bootstrap\""));
    assert!(text.contains("\"event\":\"summary\""));
    // The corrupted sample was skipped, not fatal.
    assert!(String::from_utf8_lossy(&out.stderr).contains("skipping"));
    assert!(text.lines().last().unwrap().contains("\"points\":220"));
}

#[test]
fn stream_terminates_loudly_when_the_bounded_buffer_fills() {
    // Back-pressure is not a skippable sample: once the bounded buffer
    // fills, the stream must emit its summary and exit nonzero rather
    // than silently discarding the rest of the feed.
    let series_path = temp_path("stream_capacity_input.txt");
    generate_ecg(&series_path, 400);
    let out = bin()
        .args([
            "stream",
            "--lmin",
            "16",
            "--lmax",
            "20",
            "--warmup",
            "100",
            "--capacity",
            "150",
            "--input",
        ])
        .arg(&series_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"event\":\"summary\"") && text.contains("\"points\":150"));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("150 points") && err.contains("capacity"), "stderr: {err}");
}

#[test]
fn stream_rejects_capacity_below_the_bootstrap_up_front() {
    // A capacity that cannot even hold the bootstrap must fail before
    // any input is consumed (a live feed would otherwise hang forever).
    let out = bin()
        .args(["stream", "--input", "-", "--lmin", "8", "--lmax", "16", "--capacity", "10"])
        .stdin(std::process::Stdio::null())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("capacity 10 cannot hold"));
}

#[test]
fn stream_fails_cleanly_when_input_is_too_short_to_bootstrap() {
    use std::io::Write;
    let mut child = bin()
        .args(["stream", "--input", "-", "--lmin", "8", "--lmax", "16"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"1.0\n2.0\n3.0\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bootstrap"));
}

#[test]
fn stream_final_line_without_newline_is_not_dropped() {
    use std::io::Write;
    // 230 points; the last line has NO trailing newline. The tokenizer
    // must still feed it (the summary counts all 230 points).
    let mut values = String::new();
    for i in 0..230 {
        let x = f64::from(i) * 0.41;
        values.push_str(&format!("{}\n", x.sin()));
    }
    let values = values.trim_end().to_string();
    assert!(!values.ends_with('\n'));
    let mut child = bin()
        .args(["stream", "--input", "-", "--lmin", "8", "--lmax", "12", "--every", "16"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(values.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.lines().last().unwrap().contains("\"points\":230"),
        "last sample dropped:\n{text}"
    );
}

/// Kills (and reaps) the child when dropped, so a failing assert in the
/// follow test below cannot leak a `--follow` process that polls its
/// temp file forever.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn stream_follow_tails_a_growing_file() {
    use std::io::{BufRead, BufReader, Write};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    let path = temp_path("follow_input.txt");
    let point = |i: usize| {
        let x = i as f64 * 0.37;
        format!("{}\n", x.sin() + 0.2 * (x * 2.1).cos())
    };
    {
        let mut f = std::fs::File::create(&path).unwrap();
        for i in 0..250 {
            f.write_all(point(i).as_bytes()).unwrap();
        }
    }

    let mut child = bin()
        .args([
            "stream",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--warmup",
            "200",
            "--every",
            "1",
            "--follow",
            "--poll-ms",
            "25",
            "--input",
        ])
        .arg(&path)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .map(KillOnDrop)
        .unwrap();
    let stdout = child.0.stdout.take().unwrap();
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    // Phase 1: the initial 250 points bootstrap the engine and stream
    // updates; the child then parks at EOF instead of exiting.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut lines: Vec<String> = Vec::new();
    while !lines.iter().any(|l| l.contains("\"event\":\"bootstrap\"")) {
        assert!(Instant::now() < deadline, "no bootstrap line; got {lines:?}");
        if let Ok(line) = rx.recv_timeout(Duration::from_millis(100)) {
            lines.push(line);
        }
    }

    // Phase 2: grow the file while the child is parked. --follow must
    // pick the new points up (updates with n > 250 appear).
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        for i in 250..330 {
            f.write_all(point(i).as_bytes()).unwrap();
        }
    }
    let saw_tailed_update = |l: &String| {
        l.contains("\"event\":\"update\"")
            && l.split("\"n\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|n| n.parse::<usize>().ok())
                .is_some_and(|n| n > 250)
    };
    while !lines.iter().any(saw_tailed_update) {
        assert!(
            Instant::now() < deadline,
            "no update beyond the initial file under --follow; got {lines:?}"
        );
        if let Ok(line) = rx.recv_timeout(Duration::from_millis(100)) {
            lines.push(line);
        }
    }

    // A followed stream never ends on its own; stop the service.
    child.0.kill().unwrap();
    child.0.wait().unwrap();
    reader.join().unwrap();
}

#[test]
fn stream_closed_output_ends_cleanly_with_summary_on_stderr() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = bin()
        .args(["stream", "--input", "-", "--lmin", "8", "--lmax", "12", "--every", "1"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // Bootstrap, confirm the engine is live, then close the read end of
    // the child's stdout — the NDJSON consumer going away.
    let feed: String = (0..220).map(|i| format!("{}\n", (f64::from(i) * 0.53).sin())).collect();
    stdin.write_all(feed.as_bytes()).unwrap();
    let mut first = String::new();
    stdout.read_line(&mut first).unwrap();
    assert!(first.contains("\"event\":\"bootstrap\""), "got {first:?}");
    drop(stdout);

    // Keep feeding; the child's next flush hits a broken pipe. That must
    // end the run *cleanly*: exit 0, summary on stderr.
    for i in 220..600 {
        if stdin.write_all(format!("{}\n", (f64::from(i) * 0.53).sin()).as_bytes()).is_err() {
            break; // child already exited; its stdin pipe closed
        }
    }
    drop(stdin);
    let status = child.wait().unwrap();
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(status.success(), "closed output must not be an error; stderr: {err}");
    assert!(err.contains("\"event\":\"summary\""), "summary missing on stderr: {err}");
}

fn stream_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "stream", "--lmin", "24", "--lmax", "28", "--k", "2", "--warmup", "200", "--every", "10",
    ];
    args.extend_from_slice(extra);
    args
}

/// The last stdout line of a completed (non-durable) stream run — the
/// byte-exact summary every recovery below must reproduce.
fn reference_summary(series: &std::path::Path) -> String {
    let out = bin().args(stream_args(&["--input"])).arg(series).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let last = text.lines().last().unwrap();
    assert!(last.contains("\"event\":\"summary\""));
    last.to_string()
}

#[test]
fn stream_refuses_a_checkpoint_dir_with_state_unless_resuming() {
    let series = temp_path("refuse_input.txt");
    let dir = temp_path("refuse_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    generate_ecg(&series, 400);

    let run = |resume: bool| {
        let mut args = stream_args(&["--checkpoint-every", "64"]);
        if resume {
            args.push("--resume");
        }
        args.extend_from_slice(&["--checkpoint-dir"]);
        bin().args(args).arg(&dir).arg("--input").arg(&series).output().unwrap()
    };
    let first = run(false);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));

    // Same directory, no --resume: refuse rather than clobber state.
    let second = run(false);
    assert!(!second.status.success());
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(err.contains("already holds session state") && err.contains("--resume"), "{err}");

    // With --resume the same invocation recovers and completes.
    let third = run(true);
    assert!(third.status.success(), "{}", String::from_utf8_lossy(&third.stderr));
    assert!(String::from_utf8_lossy(&third.stdout).contains("\"event\":\"recovered\""));
}

#[test]
fn stream_sigkill_then_resume_reproduces_the_uninterrupted_summary() {
    use std::time::{Duration, Instant};

    let series = temp_path("sigkill_input.txt");
    let dir = temp_path("sigkill_ckpt");
    let ndjson = temp_path("sigkill_out.ndjson");
    let _ = std::fs::remove_dir_all(&dir);
    generate_ecg(&series, 700);
    let reference = reference_summary(&series);

    // A durable run parked at EOF by --follow, so the kill lands while
    // the process is mid-session (state only in checkpoints + journal).
    let mut args = stream_args(&["--checkpoint-every", "64", "--follow", "--poll-ms", "20"]);
    args.extend_from_slice(&["--checkpoint-dir"]);
    let mut child = bin()
        .args(args)
        .arg(&dir)
        .arg("--input")
        .arg(&series)
        .stdout(std::fs::File::create(&ndjson).unwrap())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map(KillOnDrop)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&ndjson).unwrap_or_default();
        if text.contains("\"event\":\"checkpoint\"") {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint published before deadline:\n{text}");
        std::thread::sleep(Duration::from_millis(50));
    }
    child.0.kill().unwrap(); // SIGKILL: no destructors, no flushes
    child.0.wait().unwrap();

    // Recovery over the same file must converge on the byte-exact
    // summary of the uninterrupted run.
    let mut args = stream_args(&["--resume", "--checkpoint-dir"]);
    args.push(dir.to_str().unwrap());
    let out = bin().args(args).arg("--input").arg(&series).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().next().unwrap().contains("\"event\":\"recovered\""), "{text}");
    assert_eq!(text.lines().last().unwrap(), reference, "summary diverged after crash recovery");
}

#[test]
fn stream_corrupt_newest_checkpoint_falls_back_a_generation() {
    let series = temp_path("fallback_input.txt");
    let dir = temp_path("fallback_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    generate_ecg(&series, 700);
    let reference = reference_summary(&series);

    let mut args = stream_args(&["--checkpoint-every", "64", "--checkpoint-dir"]);
    args.push(dir.to_str().unwrap());
    let out = bin().args(args).arg("--input").arg(&series).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Flip one byte in the middle of the newest checkpoint: its FNV
    // trailer no longer matches, so recovery must fall back to the
    // previous generation and replay the longer journal.
    let mut ckpts: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("ckpt-"))
        .collect();
    ckpts.sort();
    assert!(ckpts.len() >= 2, "retention should keep two generations: {ckpts:?}");
    let newest = ckpts.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest, bytes).unwrap();

    let mut args = stream_args(&["--resume", "--checkpoint-dir"]);
    args.push(dir.to_str().unwrap());
    let out = bin().args(args).arg("--input").arg(&series).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let recovered = text.lines().next().unwrap();
    assert!(recovered.contains("\"event\":\"recovered\""), "{text}");
    assert!(recovered.contains("\"fell_back\":1"), "corruption not skipped: {recovered}");
    assert_eq!(text.lines().last().unwrap(), reference, "summary diverged after fallback");
}

#[test]
fn run_metrics_dash_dumps_prometheus_to_stdout_and_trace_to_file() {
    let series_path = temp_path("obs_run_input.txt");
    let trace_path = temp_path("obs_run_trace.json");
    generate_ecg(&series_path, 900);
    let out = bin()
        .args(["run", "--lmin", "16", "--lmax", "24", "--k", "2", "--metrics", "-", "--input"])
        .arg(&series_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The Prometheus exposition follows the report on stdout.
    assert!(text.contains("# TYPE valmod_stage1_cells_total counter"), "{text}");
    assert!(text.contains("# HELP valmod_stage2_valid_rows_total"), "{text}");
    assert!(text.contains("valmod_pool_queue_depth"), "{text}");
    // The trace file is a Chrome trace-event document.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.ends_with("\"displayTimeUnit\":\"ms\"}"), "{trace}");
}

#[test]
fn profile_metrics_flag_writes_the_dump_to_a_file() {
    let series_path = temp_path("obs_profile_input.txt");
    let metrics_path = temp_path("obs_profile.prom");
    generate_ecg(&series_path, 800);
    let out = bin()
        .args(["profile", "--length", "32", "--input"])
        .arg(&series_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The dump goes to the file, not stdout.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("# TYPE"));
    let dump = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(dump.contains("# TYPE valmod_stage1_cells_total counter"), "{dump}");
}

#[test]
fn stream_metrics_every_emits_ndjson_metrics_events() {
    let series_path = temp_path("obs_stream_input.txt");
    let metrics_path = temp_path("obs_stream.prom");
    let trace_path = temp_path("obs_stream_trace.json");
    generate_ecg(&series_path, 500);
    let out = bin()
        .args([
            "stream",
            "--lmin",
            "16",
            "--lmax",
            "20",
            "--warmup",
            "200",
            "--every",
            "50",
            "--metrics-every",
            "100",
            "--input",
        ])
        .arg(&series_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let metrics_lines: Vec<&str> =
        text.lines().filter(|l| l.contains("\"event\":\"metrics\"")).collect();
    // 300 appended points at cadence 100, plus the final event.
    assert!(metrics_lines.len() >= 3, "expected periodic metrics events:\n{text}");
    for line in &metrics_lines {
        assert!(line.starts_with("{\"event\":\"metrics\",\"points\":"), "{line}");
        assert!(line.contains("\"stream_appends\":"), "{line}");
        assert!(line.contains("\"stream_append_seconds_count\":"), "{line}");
        assert!(!line.contains('\n'));
    }
    // The summary still closes the stream, after the last metrics event.
    let last = text.lines().last().unwrap();
    assert!(last.contains("\"event\":\"summary\""), "{last}");
    assert!(last.contains("\"read_retries\":"), "{last}");
    assert!(last.contains("\"max_backoff_ms\":"), "{last}");
    // End-of-session dumps land in their files.
    assert!(std::fs::read_to_string(&metrics_path).unwrap().contains("# HELP"));
    assert!(std::fs::read_to_string(&trace_path).unwrap().starts_with("{\"traceEvents\":["));
}

#[test]
fn run_on_missing_file_fails_cleanly() {
    let out = bin()
        .args(["run", "--input", "/no/such/file.txt", "--lmin", "8", "--lmax", "16"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn generate_rejects_unknown_kind() {
    let out = bin()
        .args(["generate", "--kind", "seismo", "--n", "10", "--output", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
