//! End-to-end smoke of `valmod serve`: the real binary, real sockets,
//! concurrent tenants, the tenant-labeled Prometheus dump, clean
//! shutdown with checkpoint-on-exit — and crash recovery after SIGKILL
//! mid-serve.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use valmod_core::ValmodConfig;
use valmod_obs as obs;
use valmod_serve::{snapshot_checksum, Client};
use valmod_stream::SessionCore;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_valmod"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("valmod_cli_serve_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Kills (and reaps) the daemon when dropped so a failing assert never
/// leaks a listener.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `valmod serve` with the given extra flags and returns the
/// child plus the address it bound (read from the `serving` line).
fn spawn_serve(extra: &[&str]) -> (KillOnDrop, String) {
    let mut child = bin()
        .args(["serve", "--lmin", "8", "--lmax", "12", "--k", "2", "--threads", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map(KillOnDrop)
        .expect("spawn valmod serve");
    let stdout = child.0.stdout.as_mut().unwrap();
    let mut first = String::new();
    BufReader::new(stdout).read_line(&mut first).expect("read serving line");
    assert!(first.contains("\"event\":\"serving\""), "unexpected first line: {first}");
    let addr = first
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("serving line carries the address")
        .to_string();
    (child, addr)
}

/// Whether this build records metrics at all (the `obs-off` CI leg
/// compiles the registry out of the daemon binary too — feature
/// unification keeps this probe and the spawned binary in agreement).
fn obs_enabled() -> bool {
    let probe = obs::metrics().journal_replayed.get();
    obs::metrics().journal_replayed.add(1);
    obs::metrics().journal_replayed.get() == probe + 1
}

fn config() -> ValmodConfig {
    ValmodConfig::new(8, 12).with_k(2).with_threads(2)
}

fn tenant_series(t: usize) -> Vec<f64> {
    (0..110).map(|i| (i as f64 * (0.31 + t as f64 * 0.07)).sin() + t as f64).collect()
}

fn dedicated_checksum(series: &[f64]) -> String {
    let mut session = SessionCore::with_options(config(), None, None).unwrap();
    for &v in series {
        session.feed(v).unwrap();
    }
    snapshot_checksum(&session.engine().unwrap().snapshot().unwrap())
}

#[test]
fn serve_smoke_three_tenants_metrics_and_clean_shutdown() {
    let ckpt = temp_path("smoke_ckpt");
    let metrics_path = temp_path("smoke_metrics.prom");
    let _ = std::fs::remove_dir_all(&ckpt);
    let (mut child, addr) = spawn_serve(&[
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "32",
        "--metrics",
        metrics_path.to_str().unwrap(),
    ]);

    // Three concurrent tenants, each on its own connection.
    std::thread::scope(|s| {
        for t in 0..3usize {
            let addr = &addr;
            s.spawn(move || {
                let mut c = Client::connect_tcp(addr).expect("connect");
                let name = format!("smoke-{t}");
                c.open(&name).unwrap();
                let series = tenant_series(t);
                for chunk in series.chunks(19) {
                    let lines = c.append(&name, chunk).unwrap();
                    assert!(lines[0].contains("\"event\":\"append\""), "{name}: {}", lines[0]);
                }
            });
        }
    });

    let mut c = Client::connect_tcp(&addr).unwrap();
    // Every tenant's snapshot matches its dedicated single-stream run.
    for t in 0..3usize {
        let snap = c.snapshot(&format!("smoke-{t}")).unwrap();
        let expect = dedicated_checksum(&tenant_series(t));
        assert!(snap[0].contains(&format!("\"checksum\":\"{expect}\"")), "smoke-{t}: {}", snap[0]);
    }
    // The live Prometheus exposition carries the tenant dimension
    // (unless this build compiled the registry out entirely).
    let live_metrics = c.metrics().unwrap();
    if obs_enabled() {
        for t in 0..3usize {
            assert!(
                live_metrics.contains(&format!("{{tenant=\"smoke-{t}\"}}")),
                "missing tenant label smoke-{t} in:\n{live_metrics}"
            );
        }
    }

    // Clean shutdown: the daemon checkpoints all tenants and exits 0.
    let lines = c.shutdown().unwrap();
    assert_eq!(
        lines.iter().filter(|l| l.contains("\"event\":\"checkpoint\"")).count(),
        3,
        "{lines:?}"
    );
    let status = child.0.wait().unwrap();
    assert!(status.success(), "daemon exited {status:?}");
    for t in 0..3usize {
        let dir = ckpt.join("tenants").join(format!("smoke-{t}"));
        assert!(dir.is_dir(), "missing checkpoint dir {}", dir.display());
        let has_ckpt = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().starts_with("ckpt-"));
        assert!(has_ckpt, "no checkpoint generation in {}", dir.display());
    }
    // The exit-time metrics dump was written and keeps the labels.
    let dump = std::fs::read_to_string(&metrics_path).unwrap();
    if obs_enabled() {
        assert!(dump.contains("{tenant=\"smoke-0\"}"), "exit dump lost tenant labels:\n{dump}");
    }
    std::fs::remove_dir_all(&ckpt).unwrap();
}

/// The quality-tier round trip over the wire: version negotiation, an
/// interactive-QoS tenant, anytime preview events that settle, and the
/// `certify` checksum agreeing with both the preview's settled checksum
/// and a dedicated single-stream run.
#[test]
fn preview_then_certify_round_trip_matches_dedicated_run() {
    let (mut child, addr) = spawn_serve(&[]);
    let mut c = Client::connect_tcp(&addr).unwrap();

    // Version negotiation first: the server reports its generation and
    // the quality-tier capabilities; an impossible requirement is a typed
    // proto error on that request, not a disconnect.
    let hello = c.hello(Some(1)).unwrap();
    assert!(hello[0].contains("\"event\":\"hello\""), "{}", hello[0]);
    assert!(hello[0].contains("\"proto\":1"), "{}", hello[0]);
    for cap in ["preview", "screen", "certify", "priority"] {
        assert!(hello[0].contains(&format!("\"{cap}\"")), "missing {cap}: {}", hello[0]);
    }
    let refused = c.hello(Some(999)).unwrap();
    assert!(refused[0].contains("\"code\":\"proto\""), "{}", refused[0]);

    // An interactive tenant: the open event echoes the QoS lane.
    let open = c.open_with_priority("qt", valmod_mp::LanePriority::Interactive).unwrap();
    assert!(open[0].contains("\"priority\":\"interactive\""), "{}", open[0]);
    // Unknown parameter keys degrade to typed proto errors, connection
    // intact (the next request still answers).
    let bad = c.request("open qt2 qos=fast").unwrap();
    assert!(bad[0].contains("\"code\":\"proto\""), "{}", bad[0]);

    let series = tenant_series(0);
    for chunk in series.chunks(19) {
        c.append("qt", chunk).unwrap();
    }

    // Anytime preview: per-round events with growing retired-cell counts,
    // then a settled final round and the exact settled checksum.
    let lines = c.preview("qt", 3).unwrap();
    let previews: Vec<&String> =
        lines.iter().filter(|l| l.contains("\"event\":\"preview\",")).collect();
    assert!(
        (1..=3).contains(&previews.len()),
        "expected 1..=3 preview rounds, got {}: {lines:?}",
        previews.len()
    );
    assert!(previews[0].contains("\"round\":1"), "{}", previews[0]);
    assert!(
        previews.last().unwrap().contains("\"settled\":true"),
        "last round must settle: {}",
        previews.last().unwrap()
    );
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"update\"")),
        "previews ride the delta channel: {lines:?}"
    );
    let done = lines.last().unwrap();
    assert!(done.contains("\"event\":\"preview_done\""), "{done}");

    // The screening tier answers standalone, bounds only.
    let screen = c.screen("qt").unwrap();
    assert!(screen[0].contains("\"event\":\"screen\""), "{}", screen[0]);
    assert!(screen[0].contains("\"base_length\":8"), "{}", screen[0]);
    assert!(
        screen.iter().skip(1).any(|l| l.contains("\"lower_bound\":")),
        "no screened candidates: {screen:?}"
    );

    // certify == preview's settled checksum == a dedicated run.
    let expect = dedicated_checksum(&series);
    assert!(
        done.contains(&format!("\"checksum\":\"{expect}\"")),
        "preview settled away from the dedicated run: {done}"
    );
    let certify = c.certify("qt").unwrap();
    assert!(certify[0].contains("\"event\":\"certify\""), "{}", certify[0]);
    assert!(
        certify[0].contains(&format!("\"checksum\":\"{expect}\"")),
        "certify diverged: {}",
        certify[0]
    );

    c.shutdown().unwrap();
    assert!(child.0.wait().unwrap().success());
}

#[test]
fn sigkill_mid_serve_recovers_every_tenant_bit_identically() {
    let ckpt = temp_path("sigkill_ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let flags = ["--checkpoint-dir", ckpt.to_str().unwrap(), "--checkpoint-every", "16"];
    let (mut child, addr) = spawn_serve(&flags);

    // Feed two tenants fully; each append batch syncs the journal before
    // responding, so everything acknowledged below must survive the kill.
    let mut c = Client::connect_tcp(&addr).unwrap();
    for t in 0..2usize {
        let name = format!("crash-{t}");
        c.open(&name).unwrap();
        for chunk in tenant_series(t).chunks(23) {
            c.append(&name, chunk).unwrap();
        }
    }
    child.0.kill().unwrap();
    child.0.wait().unwrap();

    // A fresh daemon over the same root recovers both tenants with the
    // exact state an uninterrupted run would have.
    let (mut child, addr) = spawn_serve(&flags);
    let mut c = Client::connect_tcp(&addr).unwrap();
    for t in 0..2usize {
        let name = format!("crash-{t}");
        let open = c.open(&name).unwrap();
        assert!(open[0].contains("\"status\":\"recovered\""), "{name}: {}", open[0]);
        assert!(open[0].contains("\"len\":110"), "{name} lost samples: {}", open[0]);
        let snap = c.snapshot(&name).unwrap();
        let expect = dedicated_checksum(&tenant_series(t));
        assert!(
            snap[0].contains(&format!("\"checksum\":\"{expect}\"")),
            "{name} diverged after recovery: {}",
            snap[0]
        );
    }
    // The recovered tenants keep serving appends.
    let more = c.append("crash-0", &[0.25, 0.5]).unwrap();
    assert!(more[0].contains("\"len\":112"), "{}", more[0]);
    c.shutdown().unwrap();
    assert!(child.0.wait().unwrap().success());
    std::fs::remove_dir_all(&ckpt).unwrap();
}
