//! Hand-rolled argument parsing (no external dependencies), structured so
//! the parser is unit-testable apart from `main`.

use std::fmt;

use valmod_core::{parse_quality, Quality};

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run VALMOD over a series file and report VALMAP + motifs.
    Run(RunArgs),
    /// Compute a fixed-length matrix profile and report motifs/discords.
    Profile(ProfileArgs),
    /// Generate a synthetic dataset to a file.
    Generate(GenerateArgs),
    /// Expand a motif pair into its motif set.
    MotifSet(MotifSetArgs),
    /// Tail a file or stdin and emit VALMAP deltas as NDJSON.
    Stream(StreamArgs),
    /// Run the multi-tenant streaming daemon.
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

/// Arguments of `valmod run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Input series file.
    pub input: String,
    /// Minimum subsequence length.
    pub l_min: usize,
    /// Maximum subsequence length.
    pub l_max: usize,
    /// Motif pairs per length.
    pub k: usize,
    /// Partial-profile size `p`.
    pub p: usize,
    /// Worker threads (defaults to the hardware parallelism).
    pub threads: Option<usize>,
    /// Disable the stage-2 software pipeline (results are identical; this
    /// is a measurement/debugging knob).
    pub no_pipeline: bool,
    /// Optional path for a VALMAP JSON dump.
    pub valmap_out: Option<String>,
    /// Quality tier: `exact` (default), `anytime[:budget]` (improving
    /// previews settling to the exact result), or `screen` (lower-bound
    /// ranking only).
    pub quality: Quality,
    /// Seed of the anytime tier's diagonal visiting order.
    pub seed: u64,
    /// Optional path for the end-of-run Prometheus-style metrics dump
    /// (`-` for stdout).
    pub metrics: Option<String>,
    /// Optional path for the Chrome trace-event JSON dump.
    pub trace_out: Option<String>,
}

/// Arguments of `valmod profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArgs {
    /// Input series file.
    pub input: String,
    /// Subsequence length.
    pub length: usize,
    /// Motif pairs to report.
    pub k: usize,
    /// Worker threads (defaults to the hardware parallelism).
    pub threads: Option<usize>,
    /// Optional path for the end-of-run Prometheus-style metrics dump
    /// (`-` for stdout).
    pub metrics: Option<String>,
    /// Optional path for the Chrome trace-event JSON dump.
    pub trace_out: Option<String>,
}

/// Arguments of `valmod generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Dataset kind: `ecg`, `astro`, `walk`, or `noise`.
    pub kind: String,
    /// Number of points.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output file.
    pub output: String,
}

/// Arguments of `valmod motif-set`.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifSetArgs {
    /// Input series file.
    pub input: String,
    /// Left member offset.
    pub a: usize,
    /// Right member offset.
    pub b: usize,
    /// Subsequence length.
    pub length: usize,
    /// Expansion radius (defaults to 2× the pair distance).
    pub radius: Option<f64>,
}

/// Arguments of `valmod stream`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamArgs {
    /// Input series file, or `-` for stdin.
    pub input: String,
    /// Minimum subsequence length.
    pub l_min: usize,
    /// Maximum subsequence length.
    pub l_max: usize,
    /// Motif pairs per length.
    pub k: usize,
    /// Partial-profile size `p` (used by the batch-grade snapshot).
    pub p: usize,
    /// Worker threads (defaults to the hardware parallelism).
    pub threads: Option<usize>,
    /// Points consumed before the engine bootstraps (defaults to the
    /// minimum the length range requires).
    pub warmup: Option<usize>,
    /// Emit deltas every N appended points.
    pub every: usize,
    /// Fixed storage capacity in points (unbounded when absent).
    pub capacity: Option<usize>,
    /// Keep waiting for more input at end-of-file (`tail -f` semantics)
    /// instead of finishing — a paused live feed no longer ends the run.
    pub follow: bool,
    /// Sleep between end-of-file re-reads under `--follow`, milliseconds.
    pub poll_ms: u64,
    /// Directory for crash-safe checkpoints + sample journal (durability
    /// off when absent).
    pub checkpoint_dir: Option<String>,
    /// Appended samples between checkpoint generations.
    pub checkpoint_every: usize,
    /// Recover from the newest valid checkpoint (+ journal replay) in
    /// `--checkpoint-dir` before consuming input.
    pub resume: bool,
    /// Quality tier of the batch-grade snapshot taken at end-of-stream
    /// (`anytime` additionally emits per-round `preview` events).
    pub quality: Quality,
    /// Seed of the anytime tier's diagonal visiting order.
    pub seed: u64,
    /// Emit a `metrics` NDJSON event every N appended points (0 = off).
    pub metrics_every: usize,
    /// Optional path for the end-of-session Prometheus-style metrics dump
    /// (`-` for stdout; NDJSON keeps stdout, so `-` interleaves).
    pub metrics: Option<String>,
    /// Optional path for the Chrome trace-event JSON dump.
    pub trace_out: Option<String>,
}

/// Arguments of `valmod serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// TCP bind address (`host:port`; port 0 picks a free port, which the
    /// `serving` NDJSON line reports). Mutually exclusive with `unix`.
    pub bind: Option<String>,
    /// Unix domain socket path. Mutually exclusive with `bind`.
    pub unix: Option<String>,
    /// Minimum subsequence length.
    pub l_min: usize,
    /// Maximum subsequence length.
    pub l_max: usize,
    /// Motif pairs per length.
    pub k: usize,
    /// Partial-profile size `p`.
    pub p: usize,
    /// Worker threads of the one shared pool (defaults to the hardware
    /// parallelism).
    pub threads: Option<usize>,
    /// Per-tenant warmup target (defaults to the minimum the length
    /// range requires).
    pub warmup: Option<usize>,
    /// Per-tenant storage capacity in points (unbounded when absent).
    pub capacity: Option<usize>,
    /// Global memory budget across all tenants, bytes (unbounded when
    /// absent).
    pub mem_budget: Option<u64>,
    /// Per-tenant lane depth (queued operations before backpressure).
    pub lane_depth: usize,
    /// Durability root; each tenant checkpoints under
    /// `DIR/tenants/<name>/` (durability off when absent).
    pub checkpoint_dir: Option<String>,
    /// Accepted samples between a tenant's periodic checkpoints
    /// (staggered across tenants; 0 = checkpoint only at bootstrap and
    /// shutdown).
    pub checkpoint_every: u64,
    /// Optional path for the exit-time tenant-labeled Prometheus dump
    /// (`-` for stdout).
    pub metrics: Option<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text shared by `--help` and parse errors.
pub const USAGE: &str = "\
valmod — variable-length motif discovery (VALMOD, SIGMOD 2018)

USAGE:
  valmod run --input FILE --lmin N --lmax N [--k N] [--p N] [--threads N] [--no-pipeline]
             [--quality exact|anytime[:N]|screen] [--seed N]
             [--valmap-out FILE] [--metrics PATH|-] [--trace-out FILE]
  valmod profile --input FILE --length N [--k N] [--threads N] [--quality exact]
                 [--metrics PATH|-] [--trace-out FILE]
  valmod generate --kind ecg|astro|walk|noise|seismic|epg --n N [--seed N] --output FILE
  valmod motif-set --input FILE --a N --b N --length N [--radius X]
  valmod stream --input FILE|- --lmin N --lmax N [--k N] [--p N] [--threads N]
                [--warmup N] [--every N] [--capacity N] [--follow] [--poll-ms N]
                [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                [--quality exact|anytime[:N]] [--seed N]
                [--metrics-every N] [--metrics PATH|-] [--trace-out FILE]
  valmod serve --lmin N --lmax N [--bind HOST:PORT | --unix PATH] [--k N] [--p N]
               [--threads N] [--warmup N] [--capacity N] [--mem-budget BYTES]
               [--lane-depth N] [--checkpoint-dir DIR] [--checkpoint-every N]
               [--metrics PATH|-]
  valmod help

`--quality` picks the answer tier. `exact` (the default) is the eager
VALMOD run. `anytime[:BUDGET]` walks stage 1 in a seeded shuffled order
(`--seed`) over BUDGET rounds (default 4), emitting one NDJSON `preview`
event per round (convergence = fraction of cells retired, VALMAP churn)
before settling to the byte-identical exact result. `screen` ranks
candidate lengths and offsets by the admissible lower bound without
exact recomputation — a cheap pre-pass whose bounds never exceed the
true distances. On `stream`, the tier shapes the end-of-stream
batch-grade snapshot (`anytime` emits its preview events on the delta
channel).

`--metrics` writes an end-of-run Prometheus-style text dump of every
engine counter/gauge/histogram to PATH (`-` for stdout); `--trace-out`
writes the recorded spans as Chrome trace-event JSON, loadable in
chrome://tracing or Perfetto. On `stream`, `--metrics-every N`
additionally emits a `{\"event\":\"metrics\",...}` NDJSON line every N
appended points on the delta channel.

`stream` tails the input (use `-` for stdin), bootstraps on the first
points, then appends each subsequent point incrementally and emits the
VALMAP entries that changed as NDJSON, one JSON object per line. With
`--follow` it keeps waiting at end-of-file (sleep-retry, `--poll-ms`
between attempts) so a paused live feed does not end the run; without it,
end-of-file finishes the stream as before. With `--checkpoint-dir` the
session is crash-safe: atomic checkpoints every `--checkpoint-every`
samples plus a per-sample journal, and `--resume` recovers the newest
valid generation (journal replayed, bit-identical state) after a crash.

`serve` hosts many independent tenant streams over one shared worker
pool behind a framed socket protocol (length-prefixed frames, NDJSON
responses): clients `open` named tenants, `append` samples, query
`valmap`/`motifs`/`discords`/`snapshot`, and `shutdown` checkpoints
every tenant before the daemon exits. Defaults to `--bind 127.0.0.1:0`
(a free port, reported on the `serving` line). Each tenant gets a fair
scheduler lane (`--lane-depth` pending operations before a typed
`saturated` error) and, with `--checkpoint-dir`, its own crash-safe
store under `DIR/tenants/<name>/` with checkpoint generations staggered
across tenants.
";

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next().ok_or_else(|| ParseError(format!("flag {flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, ParseError> {
    raw.parse().map_err(|_| ParseError(format!("cannot parse {raw:?} for {flag}")))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// [`ParseError`] with a user-facing message for unknown commands, unknown
/// flags, missing values, or missing required flags.
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let Some((&cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => parse_run(rest),
        "profile" => parse_profile(rest),
        "generate" => parse_generate(rest),
        "motif-set" => parse_motif_set(rest),
        "stream" => parse_stream(rest),
        "serve" => parse_serve(rest),
        other => Err(ParseError(format!("unknown command {other:?}"))),
    }
}

fn parse_run(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut input, mut l_min, mut l_max) = (None, None, None);
    let (mut k, mut p, mut threads, mut valmap_out) = (10usize, 8usize, None, None);
    let mut no_pipeline = false;
    let (mut quality, mut seed) = (Quality::Exact, 0u64);
    let (mut metrics, mut trace_out) = (None, None);
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--input" => input = Some(take_value(flag, &mut it)?.to_string()),
            "--lmin" => l_min = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--lmax" => l_max = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--k" => k = parse_num(flag, take_value(flag, &mut it)?)?,
            "--p" => p = parse_num(flag, take_value(flag, &mut it)?)?,
            "--threads" => threads = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--no-pipeline" => no_pipeline = true,
            "--quality" => {
                quality = parse_quality(take_value(flag, &mut it)?).map_err(ParseError)?
            }
            "--seed" => seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--valmap-out" => valmap_out = Some(take_value(flag, &mut it)?.to_string()),
            "--metrics" => metrics = Some(take_value(flag, &mut it)?.to_string()),
            "--trace-out" => trace_out = Some(take_value(flag, &mut it)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?} for run"))),
        }
    }
    Ok(Command::Run(RunArgs {
        input: input.ok_or_else(|| ParseError("run requires --input".into()))?,
        l_min: l_min.ok_or_else(|| ParseError("run requires --lmin".into()))?,
        l_max: l_max.ok_or_else(|| ParseError("run requires --lmax".into()))?,
        k,
        p,
        threads,
        no_pipeline,
        valmap_out,
        quality,
        seed,
        metrics,
        trace_out,
    }))
}

fn parse_profile(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut input, mut length, mut k, mut threads) = (None, None, 5usize, None);
    let (mut metrics, mut trace_out) = (None, None);
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--input" => input = Some(take_value(flag, &mut it)?.to_string()),
            "--length" => length = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--k" => k = parse_num(flag, take_value(flag, &mut it)?)?,
            "--threads" => threads = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            // `profile` is a single fixed-length pass with no stage-1/2
            // split, so only the exact tier applies; the flag exists for a
            // uniform command line and rejects the other tiers loudly.
            "--quality" => {
                if parse_quality(take_value(flag, &mut it)?).map_err(ParseError)? != Quality::Exact
                {
                    return Err(ParseError(
                        "profile is exact-only; anytime/screen tiers apply to run and stream"
                            .into(),
                    ));
                }
            }
            "--metrics" => metrics = Some(take_value(flag, &mut it)?.to_string()),
            "--trace-out" => trace_out = Some(take_value(flag, &mut it)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?} for profile"))),
        }
    }
    Ok(Command::Profile(ProfileArgs {
        input: input.ok_or_else(|| ParseError("profile requires --input".into()))?,
        length: length.ok_or_else(|| ParseError("profile requires --length".into()))?,
        k,
        threads,
        metrics,
        trace_out,
    }))
}

fn parse_generate(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut kind, mut n, mut seed, mut output) = (None, None, 42u64, None);
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--kind" => kind = Some(take_value(flag, &mut it)?.to_string()),
            "--n" => n = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--seed" => seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--output" => output = Some(take_value(flag, &mut it)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?} for generate"))),
        }
    }
    let kind = kind.ok_or_else(|| ParseError("generate requires --kind".into()))?;
    if !matches!(kind.as_str(), "ecg" | "astro" | "walk" | "noise" | "seismic" | "epg") {
        return Err(ParseError(format!(
            "unknown dataset kind {kind:?} (expected ecg|astro|walk|noise|seismic|epg)"
        )));
    }
    Ok(Command::Generate(GenerateArgs {
        kind,
        n: n.ok_or_else(|| ParseError("generate requires --n".into()))?,
        seed,
        output: output.ok_or_else(|| ParseError("generate requires --output".into()))?,
    }))
}

fn parse_motif_set(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut input, mut a, mut b, mut length, mut radius) = (None, None, None, None, None);
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--input" => input = Some(take_value(flag, &mut it)?.to_string()),
            "--a" => a = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--b" => b = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--length" => length = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--radius" => radius = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            other => return Err(ParseError(format!("unknown flag {other:?} for motif-set"))),
        }
    }
    Ok(Command::MotifSet(MotifSetArgs {
        input: input.ok_or_else(|| ParseError("motif-set requires --input".into()))?,
        a: a.ok_or_else(|| ParseError("motif-set requires --a".into()))?,
        b: b.ok_or_else(|| ParseError("motif-set requires --b".into()))?,
        length: length.ok_or_else(|| ParseError("motif-set requires --length".into()))?,
        radius,
    }))
}

fn parse_stream(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut input, mut l_min, mut l_max) = (None, None, None);
    let (mut k, mut p, mut threads) = (10usize, 8usize, None);
    let (mut warmup, mut every, mut capacity) = (None, 1usize, None);
    let (mut follow, mut poll_ms) = (false, 200u64);
    let (mut checkpoint_dir, mut checkpoint_every, mut resume) = (None, 256usize, false);
    let (mut quality, mut seed) = (Quality::Exact, 0u64);
    let (mut metrics_every, mut metrics, mut trace_out) = (0usize, None, None);
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--input" => input = Some(take_value(flag, &mut it)?.to_string()),
            "--lmin" => l_min = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--lmax" => l_max = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--k" => k = parse_num(flag, take_value(flag, &mut it)?)?,
            "--p" => p = parse_num(flag, take_value(flag, &mut it)?)?,
            "--threads" => threads = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--warmup" => warmup = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--every" => every = parse_num(flag, take_value(flag, &mut it)?)?,
            "--capacity" => capacity = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--follow" => follow = true,
            "--poll-ms" => poll_ms = parse_num(flag, take_value(flag, &mut it)?)?,
            "--checkpoint-dir" => checkpoint_dir = Some(take_value(flag, &mut it)?.to_string()),
            "--checkpoint-every" => checkpoint_every = parse_num(flag, take_value(flag, &mut it)?)?,
            "--resume" => resume = true,
            "--quality" => {
                quality = parse_quality(take_value(flag, &mut it)?).map_err(ParseError)?
            }
            "--seed" => seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--metrics-every" => metrics_every = parse_num(flag, take_value(flag, &mut it)?)?,
            "--metrics" => metrics = Some(take_value(flag, &mut it)?.to_string()),
            "--trace-out" => trace_out = Some(take_value(flag, &mut it)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?} for stream"))),
        }
    }
    if every == 0 {
        return Err(ParseError("--every must be at least 1".into()));
    }
    if poll_ms == 0 {
        return Err(ParseError("--poll-ms must be at least 1".into()));
    }
    if checkpoint_every == 0 {
        return Err(ParseError("--checkpoint-every must be at least 1".into()));
    }
    if resume && checkpoint_dir.is_none() {
        return Err(ParseError("--resume requires --checkpoint-dir".into()));
    }
    if quality == Quality::Screen {
        return Err(ParseError(
            "stream snapshots are exact or anytime; the screen tier applies to run".into(),
        ));
    }
    Ok(Command::Stream(StreamArgs {
        input: input.ok_or_else(|| ParseError("stream requires --input".into()))?,
        l_min: l_min.ok_or_else(|| ParseError("stream requires --lmin".into()))?,
        l_max: l_max.ok_or_else(|| ParseError("stream requires --lmax".into()))?,
        k,
        p,
        threads,
        warmup,
        every,
        capacity,
        follow,
        poll_ms,
        checkpoint_dir,
        checkpoint_every,
        resume,
        quality,
        seed,
        metrics_every,
        metrics,
        trace_out,
    }))
}

fn parse_serve(rest: &[&str]) -> Result<Command, ParseError> {
    let (mut bind, mut unix, mut l_min, mut l_max) = (None, None, None, None);
    let (mut k, mut p, mut threads) = (10usize, 8usize, None);
    let (mut warmup, mut capacity, mut mem_budget) = (None, None, None);
    let mut lane_depth = 64usize;
    let (mut checkpoint_dir, mut checkpoint_every) = (None, 256u64);
    let mut metrics = None;
    let mut it = rest.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--bind" => bind = Some(take_value(flag, &mut it)?.to_string()),
            "--unix" => unix = Some(take_value(flag, &mut it)?.to_string()),
            "--lmin" => l_min = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--lmax" => l_max = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--k" => k = parse_num(flag, take_value(flag, &mut it)?)?,
            "--p" => p = parse_num(flag, take_value(flag, &mut it)?)?,
            "--threads" => threads = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--warmup" => warmup = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--capacity" => capacity = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--mem-budget" => mem_budget = Some(parse_num(flag, take_value(flag, &mut it)?)?),
            "--lane-depth" => lane_depth = parse_num(flag, take_value(flag, &mut it)?)?,
            "--checkpoint-dir" => checkpoint_dir = Some(take_value(flag, &mut it)?.to_string()),
            "--checkpoint-every" => checkpoint_every = parse_num(flag, take_value(flag, &mut it)?)?,
            "--metrics" => metrics = Some(take_value(flag, &mut it)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?} for serve"))),
        }
    }
    if bind.is_some() && unix.is_some() {
        return Err(ParseError("--bind and --unix are mutually exclusive".into()));
    }
    if lane_depth == 0 {
        return Err(ParseError("--lane-depth must be at least 1".into()));
    }
    Ok(Command::Serve(ServeArgs {
        bind,
        unix,
        l_min: l_min.ok_or_else(|| ParseError("serve requires --lmin".into()))?,
        l_max: l_max.ok_or_else(|| ParseError("serve requires --lmax".into()))?,
        k,
        p,
        threads,
        warmup,
        capacity,
        mem_budget,
        lane_depth,
        checkpoint_dir,
        checkpoint_every,
        metrics,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults_and_overrides() {
        let cmd = parse(&["run", "--input", "x.txt", "--lmin", "50", "--lmax", "400"]).unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.input, "x.txt");
                assert_eq!((a.l_min, a.l_max, a.k, a.p), (50, 400, 10, 8));
                assert!(a.valmap_out.is_none());
                assert!(a.threads.is_none());
                assert!(!a.no_pipeline, "the pipeline defaults to on");
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16", "--no-pipeline"])
            .unwrap();
        match cmd {
            Command::Run(a) => assert!(a.no_pipeline),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "run",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "16",
            "--k",
            "3",
            "--p",
            "4",
            "--valmap-out",
            "v.json",
        ])
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!((a.k, a.p), (3, 4));
                assert_eq!(a.valmap_out.as_deref(), Some("v.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn threads_flag_parses_on_run_and_profile() {
        let cmd = parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16", "--threads", "4"])
            .unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.threads, Some(4)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["profile", "--input", "x", "--length", "32", "--threads", "2"]).unwrap();
        match cmd {
            Command::Profile(a) => assert_eq!(a.threads, Some(2)),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16", "--threads", "x"])
            .is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&["run", "--input", "x"]).is_err());
        assert!(parse(&["profile", "--length", "5"]).is_err());
        assert!(parse(&["generate", "--kind", "ecg", "--n", "10"]).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_error() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "--bogus", "1"]).is_err());
        assert!(parse(&["generate", "--kind", "mystery", "--n", "5", "--output", "o"]).is_err());
    }

    #[test]
    fn values_must_parse() {
        assert!(parse(&["run", "--input", "x", "--lmin", "abc", "--lmax", "5"]).is_err());
        assert!(parse(&["motif-set", "--input", "x", "--a", "-3", "--b", "5", "--length", "8"])
            .is_err());
    }

    #[test]
    fn stream_defaults_and_overrides() {
        let cmd = parse(&["stream", "--input", "-", "--lmin", "16", "--lmax", "24"]).unwrap();
        match cmd {
            Command::Stream(a) => {
                assert_eq!(a.input, "-");
                assert_eq!((a.l_min, a.l_max, a.k, a.p, a.every), (16, 24, 10, 8, 1));
                assert!(a.warmup.is_none() && a.capacity.is_none() && a.threads.is_none());
                assert!(!a.follow);
                assert_eq!(a.poll_ms, 200);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "stream",
            "--input",
            "x.txt",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--k",
            "2",
            "--warmup",
            "100",
            "--every",
            "16",
            "--capacity",
            "4096",
            "--threads",
            "2",
        ])
        .unwrap();
        match cmd {
            Command::Stream(a) => {
                assert_eq!((a.k, a.warmup, a.every), (2, Some(100), 16));
                assert_eq!((a.capacity, a.threads), (Some(4096), Some(2)));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["stream", "--input", "x", "--lmin", "8"]).is_err());
        assert!(parse(&["stream", "--input", "x", "--lmin", "8", "--lmax", "12", "--every", "0"])
            .is_err());
        assert!(parse(&["stream", "--bogus", "1"]).is_err());
    }

    #[test]
    fn stream_follow_flag_and_poll_interval() {
        let cmd = parse(&[
            "stream",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--follow",
            "--poll-ms",
            "50",
        ])
        .unwrap();
        match cmd {
            Command::Stream(a) => {
                assert!(a.follow);
                assert_eq!(a.poll_ms, 50);
            }
            other => panic!("{other:?}"),
        }
        // --follow takes no value: the next token parses as its own flag.
        assert!(parse(&[
            "stream", "--input", "x", "--lmin", "8", "--lmax", "12", "--follow", "yes"
        ])
        .is_err());
        assert!(parse(&[
            "stream",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--poll-ms",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn stream_checkpoint_flags() {
        let cmd = parse(&["stream", "--input", "-", "--lmin", "8", "--lmax", "12"]).unwrap();
        match cmd {
            Command::Stream(a) => {
                assert!(a.checkpoint_dir.is_none() && !a.resume);
                assert_eq!(a.checkpoint_every, 256, "durability default cadence");
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "stream",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--checkpoint-every",
            "64",
            "--resume",
        ])
        .unwrap();
        match cmd {
            Command::Stream(a) => {
                assert_eq!(a.checkpoint_dir.as_deref(), Some("/tmp/ckpt"));
                assert_eq!(a.checkpoint_every, 64);
                assert!(a.resume);
            }
            other => panic!("{other:?}"),
        }
        // --resume without a directory to resume from is a user error.
        assert!(
            parse(&["stream", "--input", "x", "--lmin", "8", "--lmax", "12", "--resume"]).is_err()
        );
        // A zero cadence would never checkpoint.
        assert!(parse(&[
            "stream",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--checkpoint-dir",
            "d",
            "--checkpoint-every",
            "0",
        ])
        .is_err());
    }

    #[test]
    fn observability_flags_parse_on_run_profile_and_stream() {
        let cmd = parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16"]).unwrap();
        match cmd {
            Command::Run(a) => assert!(a.metrics.is_none() && a.trace_out.is_none()),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "run",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "16",
            "--metrics",
            "-",
            "--trace-out",
            "t.json",
        ])
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.metrics.as_deref(), Some("-"));
                assert_eq!(a.trace_out.as_deref(), Some("t.json"));
            }
            other => panic!("{other:?}"),
        }
        let cmd =
            parse(&["profile", "--input", "x", "--length", "32", "--metrics", "m.prom"]).unwrap();
        match cmd {
            Command::Profile(a) => {
                assert_eq!(a.metrics.as_deref(), Some("m.prom"));
                assert!(a.trace_out.is_none());
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "stream",
            "--input",
            "-",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--metrics-every",
            "64",
            "--trace-out",
            "trace.json",
        ])
        .unwrap();
        match cmd {
            Command::Stream(a) => {
                assert_eq!(a.metrics_every, 64);
                assert_eq!(a.trace_out.as_deref(), Some("trace.json"));
                assert!(a.metrics.is_none());
            }
            other => panic!("{other:?}"),
        }
        // metrics_every defaults to off (0) and the flags require values.
        let cmd = parse(&["stream", "--input", "-", "--lmin", "8", "--lmax", "12"]).unwrap();
        match cmd {
            Command::Stream(a) => assert_eq!(a.metrics_every, 0),
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16", "--metrics"]).is_err()
        );
    }

    #[test]
    fn serve_defaults_and_overrides() {
        let cmd = parse(&["serve", "--lmin", "16", "--lmax", "24"]).unwrap();
        match cmd {
            Command::Serve(a) => {
                assert!(a.bind.is_none() && a.unix.is_none());
                assert_eq!((a.l_min, a.l_max, a.k, a.p), (16, 24, 10, 8));
                assert_eq!(a.lane_depth, 64);
                assert_eq!(a.checkpoint_every, 256);
                assert!(a.mem_budget.is_none() && a.checkpoint_dir.is_none());
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "serve",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--bind",
            "127.0.0.1:4980",
            "--mem-budget",
            "1048576",
            "--lane-depth",
            "8",
            "--checkpoint-dir",
            "/tmp/serve",
            "--checkpoint-every",
            "64",
            "--metrics",
            "-",
        ])
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.bind.as_deref(), Some("127.0.0.1:4980"));
                assert_eq!(a.mem_budget, Some(1_048_576));
                assert_eq!((a.lane_depth, a.checkpoint_every), (8, 64));
                assert_eq!(a.checkpoint_dir.as_deref(), Some("/tmp/serve"));
                assert_eq!(a.metrics.as_deref(), Some("-"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--lmin", "8"]).is_err());
        assert!(parse(&["serve", "--lmin", "8", "--lmax", "12", "--bind", "a:1", "--unix", "/s"])
            .is_err());
        assert!(parse(&["serve", "--lmin", "8", "--lmax", "12", "--lane-depth", "0"]).is_err());
    }

    #[test]
    fn quality_flags_parse_per_command() {
        let cmd = parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16"]).unwrap();
        match cmd {
            Command::Run(a) => assert_eq!((a.quality, a.seed), (Quality::Exact, 0)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "run",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "16",
            "--quality",
            "anytime:6",
            "--seed",
            "42",
        ])
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.quality, Quality::Anytime { budget: 6 });
                assert_eq!(a.seed, 42);
            }
            other => panic!("{other:?}"),
        }
        let cmd =
            parse(&["run", "--input", "x", "--lmin", "8", "--lmax", "16", "--quality", "screen"])
                .unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.quality, Quality::Screen),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "stream",
            "--input",
            "-",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--quality",
            "anytime",
        ])
        .unwrap();
        match cmd {
            Command::Stream(a) => {
                assert_eq!(
                    a.quality,
                    Quality::Anytime { budget: valmod_core::DEFAULT_ANYTIME_BUDGET }
                );
            }
            other => panic!("{other:?}"),
        }
        // Profile accepts only the exact tier; stream has no screen tier;
        // bad tier names fail everywhere with the shared grammar.
        assert!(parse(&["profile", "--input", "x", "--length", "32", "--quality", "exact"]).is_ok());
        assert!(
            parse(&["profile", "--input", "x", "--length", "32", "--quality", "anytime"]).is_err()
        );
        assert!(parse(&[
            "stream",
            "--input",
            "-",
            "--lmin",
            "8",
            "--lmax",
            "12",
            "--quality",
            "screen"
        ])
        .is_err());
        assert!(parse(&[
            "run",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "16",
            "--quality",
            "sloppy"
        ])
        .is_err());
        assert!(parse(&[
            "run",
            "--input",
            "x",
            "--lmin",
            "8",
            "--lmax",
            "16",
            "--quality",
            "anytime:0"
        ])
        .is_err());
    }

    #[test]
    fn motif_set_radius_is_optional() {
        let cmd = parse(&["motif-set", "--input", "x", "--a", "3", "--b", "50", "--length", "8"])
            .unwrap();
        match cmd {
            Command::MotifSet(a) => assert!(a.radius.is_none()),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "motif-set",
            "--input",
            "x",
            "--a",
            "3",
            "--b",
            "50",
            "--length",
            "8",
            "--radius",
            "1.5",
        ])
        .unwrap();
        match cmd {
            Command::MotifSet(a) => assert_eq!(a.radius, Some(1.5)),
            other => panic!("{other:?}"),
        }
    }
}
