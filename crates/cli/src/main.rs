//! `valmod` — command-line driver for the VALMOD suite.
//!
//! This binary plays the role of the paper's C back-end: it reads a data
//! series, runs VALMOD (or a fixed-length matrix profile), and emits the
//! VALMAP analysis as text (and optionally JSON for downstream tooling —
//! the demo's Python front-end equivalent).

mod args;

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

use args::{Command, GenerateArgs, MotifSetArgs, ProfileArgs, RunArgs, StreamArgs};
use valmod_core::render::{render_valmap, sparkline};
use valmod_core::{expand_motif_set, run_valmod, ValmodConfig};
use valmod_mp::motif::{top_k_discords, top_k_pairs};
use valmod_mp::stomp::stomp_parallel_in;
use valmod_mp::{default_exclusion, MotifPair, WorkerPool};
use valmod_series::{gen, io};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let command = match args::parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Run(a) => cmd_run(&a),
        Command::Profile(a) => cmd_profile(&a),
        Command::Generate(a) => cmd_generate(&a),
        Command::MotifSet(a) => cmd_motif_set(&a),
        Command::Stream(a) => cmd_stream(&a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_pairs_table(pairs: &[MotifPair]) {
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "#", "offset a", "offset b", "length", "distance", "dist/sqrt(l)"
    );
    for (rank, p) in pairs.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12.4} {:>12.4}",
            rank + 1,
            p.a,
            p.b,
            p.length,
            p.distance,
            p.distance / (p.length as f64).sqrt()
        );
    }
}

fn cmd_run(a: &RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    // The command owns one persistent pool for its whole run: threads are
    // spawned once, parked between phases, joined when the command ends.
    let mut config = ValmodConfig::new(a.l_min, a.l_max)
        .with_k(a.k)
        .with_profile_size(a.p)
        .with_stage2_pipeline(!a.no_pipeline)
        .with_pool(Arc::new(WorkerPool::new()));
    if let Some(threads) = a.threads {
        config = config.with_threads(threads);
    }
    let started = std::time::Instant::now();
    let output = run_valmod(series.values(), &config)?;
    let elapsed = started.elapsed();

    println!("series: {} ({} points)", a.input, series.len());
    println!("data |{}|\n", sparkline(series.values(), 72));
    println!("{}", render_valmap(&output.valmap, 72));

    println!("top motif pairs across lengths (length-normalized ranking):");
    let ranking = output.ranking();
    let pairs: Vec<MotifPair> = ranking.iter().take(a.k).map(|r| r.pair).collect();
    print_pairs_table(&pairs);

    let recomputed: usize = output.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    println!(
        "\ncompleted in {elapsed:.2?} on {} thread(s) — stage 1 {:.2?}, stage 2 {:.2?} \
         ({recomputed} rows recomputed across all lengths)",
        config.threads, output.timings.stage1, output.timings.stage2
    );

    if let Some(path) = &a.valmap_out {
        let json = valmap_to_json(&output.valmap);
        std::fs::write(path, json)?;
        println!("VALMAP written to {path}");
    }
    Ok(())
}

/// Minimal hand-rolled JSON dump of VALMAP (front-end hand-off format).
fn valmap_to_json(valmap: &valmod_core::Valmap) -> String {
    let join = |it: Vec<String>| it.join(", ");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"l_min\": {},\n", valmap.l_min));
    out.push_str(&format!(
        "  \"mpn\": [{}],\n",
        join(
            valmap
                .mpn
                .iter()
                .map(|v| if v.is_finite() { format!("{v:.6}") } else { "null".into() })
                .collect()
        )
    ));
    out.push_str(&format!(
        "  \"ip\": [{}],\n",
        join(valmap.ip.iter().map(|v| v.map_or("null".into(), |j| j.to_string())).collect())
    ));
    out.push_str(&format!(
        "  \"lp\": [{}],\n",
        join(valmap.lp.iter().map(ToString::to_string).collect())
    ));
    out.push_str(&format!(
        "  \"checkpoints\": [{}]\n",
        join(
            valmap
                .checkpoints
                .iter()
                .map(|c| {
                    format!("{{\"length\": {}, \"updates\": {}}}", c.length, c.updates.len())
                })
                .collect()
        )
    ));
    out.push('}');
    out
}

fn cmd_profile(a: &ProfileArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let threads = a.threads.map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        |t| t.max(1),
    );
    let pool = WorkerPool::new();
    let mp =
        stomp_parallel_in(series.values(), a.length, default_exclusion(a.length), threads, &pool)?;
    println!("series: {} ({} points), window {}", a.input, series.len(), a.length);
    println!("data |{}|", sparkline(series.values(), 72));
    println!("MP   |{}|\n", sparkline(&mp.values, 72));
    println!("top-{} motif pairs:", a.k);
    print_pairs_table(&top_k_pairs(&mp, a.k));
    println!("\ntop-{} discords:", a.k);
    for (rank, (offset, d)) in top_k_discords(&mp, a.k).iter().enumerate() {
        println!("{:>4} offset {:>10} distance {:>12.4}", rank + 1, offset, d);
    }
    Ok(())
}

fn cmd_generate(a: &GenerateArgs) -> Result<(), Box<dyn std::error::Error>> {
    let values = match a.kind.as_str() {
        "ecg" => gen::ecg(a.n, &gen::EcgConfig::default(), a.seed),
        "astro" => gen::astro(a.n, &gen::AstroConfig::default(), a.seed),
        "walk" => gen::random_walk(a.n, a.seed),
        "seismic" => gen::seismic(a.n, &gen::SeismicConfig::default(), a.seed),
        "epg" => gen::epg(a.n, &gen::EpgConfig::default(), a.seed),
        "noise" => gen::white_noise(a.n, a.seed, 1.0),
        other => unreachable!("parser rejects kind {other:?}"),
    };
    io::write_series(&a.output, &values)?;
    println!("wrote {} points of {} (seed {}) to {}", values.len(), a.kind, a.seed, a.output);
    Ok(())
}

/// Mutable state of one `valmod stream` session: the bootstrap buffer
/// until enough points arrived, then the incremental engine.
struct StreamSession {
    config: ValmodConfig,
    capacity: Option<usize>,
    warmup: usize,
    l_min: usize,
    l_max: usize,
    every: usize,
    bootstrap: Vec<f64>,
    engine: Option<valmod_stream::StreamingValmod>,
    since_poll: usize,
    line_values: Vec<f64>,
}

impl StreamSession {
    /// Feeds one complete input line: tokenize, bootstrap or append each
    /// value, emit due NDJSON events.
    fn feed_line(
        &mut self,
        line: &str,
        line_no: usize,
        out: &mut impl Write,
    ) -> Result<(), Box<dyn std::error::Error>> {
        self.line_values.clear();
        // The same tokenizer `run`/`profile` read files with, so every
        // subcommand accepts the exact same format.
        let mut line_values = std::mem::take(&mut self.line_values);
        valmod_series::io::parse_series_line(line, line_no, &mut line_values)?;
        for &value in &line_values {
            self.feed_value(value, line_no, out)?;
        }
        self.line_values = line_values;
        Ok(())
    }

    fn feed_value(
        &mut self,
        value: f64,
        line_no: usize,
        out: &mut impl Write,
    ) -> Result<(), Box<dyn std::error::Error>> {
        match &mut self.engine {
            None => {
                if !value.is_finite() {
                    eprintln!("skipping non-finite point on line {line_no}");
                    return Ok(());
                }
                self.bootstrap.push(value);
                if self.bootstrap.len() >= self.warmup {
                    let built = match self.capacity {
                        Some(cap) => valmod_stream::StreamingValmod::with_capacity(
                            &self.bootstrap,
                            self.config.clone(),
                            cap,
                        )?,
                        None => valmod_stream::StreamingValmod::new(
                            &self.bootstrap,
                            self.config.clone(),
                        )?,
                    };
                    writeln!(
                        out,
                        "{}",
                        valmod_stream::bootstrap_line(
                            built.len(),
                            self.l_min,
                            self.l_max,
                            built.len() - self.l_min + 1
                        )
                    )?;
                    out.flush()?;
                    self.engine = Some(built);
                }
            }
            Some(engine) => {
                match engine.try_append(value) {
                    Ok(()) => {}
                    Err(e @ valmod_series::SeriesError::NonFinite { .. }) => {
                        // A bad sample is skippable; the feed goes on.
                        eprintln!("skipping point on line {line_no}: {e}");
                        return Ok(());
                    }
                    Err(e) => {
                        // A full bounded buffer is back-pressure, not a
                        // skippable sample: emit what we know, then fail
                        // loudly instead of silently dropping the rest of
                        // the feed.
                        let n = engine.len();
                        for delta in engine.poll_deltas() {
                            writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
                        }
                        writeln!(
                            out,
                            "{}",
                            valmod_stream::summary_line(n, engine.valmap().best_entry())
                        )?;
                        out.flush()?;
                        return Err(format!(
                            "stream stopped at line {line_no} after {n} points: {e}"
                        )
                        .into());
                    }
                }
                self.since_poll += 1;
                if self.since_poll >= self.every {
                    self.since_poll = 0;
                    let n = engine.len();
                    for delta in engine.poll_deltas() {
                        writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
                    }
                    out.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Emits the pending deltas plus the closing summary line.
    fn finish(&mut self, out: &mut impl Write) -> Result<(), Box<dyn std::error::Error>> {
        let Some(engine) = &mut self.engine else {
            return Err(format!(
                "stream ended after {} points, before the {}-point bootstrap",
                self.bootstrap.len(),
                self.warmup
            )
            .into());
        };
        let n = engine.len();
        for delta in engine.poll_deltas() {
            writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
        }
        writeln!(out, "{}", valmod_stream::summary_line(n, engine.valmap().best_entry()))?;
        out.flush()?;
        Ok(())
    }

    /// The summary line for an interrupted stream (closed output).
    fn summary_text(&mut self) -> Option<String> {
        self.engine.as_mut().map(|e| valmod_stream::summary_line(e.len(), e.valmap().best_entry()))
    }
}

/// Whether an error chain bottoms out in a broken pipe (the NDJSON
/// consumer closed our stdout).
fn is_broken_pipe(err: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur = Some(err);
    while let Some(e) = cur {
        if let Some(io_err) = e.downcast_ref::<std::io::Error>() {
            if io_err.kind() == std::io::ErrorKind::BrokenPipe {
                return true;
            }
        }
        cur = e.source();
    }
    false
}

/// `valmod stream`: tail a file or stdin, bootstrap the incremental
/// engine on the first points, then append each subsequent point and
/// emit the VALMAP entries that changed as NDJSON on stdout.
///
/// Non-finite points from the feed are reported on stderr and skipped —
/// the engine's `try_append` contract means a bad sample can never kill
/// the stream or corrupt the profiles. With `--follow`, end-of-file
/// parks the reader (sleep-retry) instead of finishing, so a live feed
/// that pauses keeps the service alive; a closed output (SIGPIPE /
/// broken pipe) ends the run cleanly with the summary on stderr.
fn cmd_stream(a: &StreamArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ValmodConfig::new(a.l_min, a.l_max)
        .with_k(a.k)
        .with_profile_size(a.p)
        .with_pool(Arc::new(WorkerPool::new()));
    if let Some(threads) = a.threads {
        config = config.with_threads(threads);
    }
    // The engine needs room for two non-trivially-matching windows of
    // every length before it can bootstrap (ValmodConfig::validate's
    // formula).
    let needed = a.l_max + config.exclusion(a.l_max) + 1;
    let warmup = a.warmup.unwrap_or(0).max(needed);
    if let Some(cap) = a.capacity {
        if cap < warmup {
            return Err(format!(
                "--capacity {cap} cannot hold the {warmup}-point bootstrap \
                 (lengths up to {} need at least {needed} points)",
                a.l_max
            )
            .into());
        }
    }

    let from_stdin = a.input == "-";
    let mut reader: Box<dyn BufRead> = if from_stdin {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        Box::new(BufReader::new(std::fs::File::open(&a.input)?))
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    let mut session = StreamSession {
        config,
        capacity: a.capacity,
        warmup,
        l_min: a.l_min,
        l_max: a.l_max,
        every: a.every,
        bootstrap: Vec::with_capacity(warmup),
        engine: None,
        since_poll: 0,
        line_values: Vec::new(),
    };
    let result = stream_loop(a, &mut session, &mut reader, &mut out);
    match result {
        Err(e) if is_broken_pipe(&*e) => {
            // The consumer closed our stdout mid-stream. That is a normal
            // way for a pipeline to end: report the closing summary on
            // stderr (stdout is gone) and exit cleanly.
            if let Some(summary) = session.summary_text() {
                eprintln!("{summary}");
            }
            Ok(())
        }
        other => other,
    }
}

/// The read loop behind [`cmd_stream`]: line-at-a-time with explicit
/// end-of-file handling.
///
/// * Without `--follow`, end-of-file finishes the stream — including a
///   final line missing its trailing newline, whose samples are fed
///   before the summary (nothing is silently dropped).
/// * With `--follow`, end-of-file on a *file* parks for `--poll-ms` and
///   retries (`tail -f` semantics); a partial trailing line stays
///   buffered until its newline arrives, so a sample split across writes
///   is never parsed in halves. End-of-file on stdin is final even under
///   `--follow` — a closed pipe can never produce more data.
fn stream_loop(
    a: &StreamArgs,
    session: &mut StreamSession,
    reader: &mut dyn BufRead,
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let follow_retries = a.follow && a.input != "-";
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            if follow_retries {
                std::thread::sleep(std::time::Duration::from_millis(a.poll_ms));
                continue;
            }
            // Final EOF: a trailing line without '\n' still counts.
            if !buf.is_empty() {
                line_no += 1;
                session.feed_line(&buf, line_no, out)?;
            }
            break;
        }
        if buf.ends_with('\n') {
            line_no += 1;
            session.feed_line(&buf, line_no, out)?;
            buf.clear();
        }
        // No newline yet: mid-line EOF. The next read_line call appends
        // the rest of the line to `buf`.
    }
    session.finish(out)
}

fn cmd_motif_set(a: &MotifSetArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let d = valmod_series::znorm::zdist(
        series.subsequence(a.a, a.length)?,
        series.subsequence(a.b, a.length)?,
    );
    let pair = MotifPair::new(a.a, a.b, d, a.length);
    let set = expand_motif_set(series.values(), &pair, a.radius, default_exclusion(a.length))?;
    println!(
        "motif set of pair ({}, {}) at length {} — radius {:.4}: {} occurrences",
        a.a,
        a.b,
        a.length,
        set.radius,
        set.len()
    );
    for o in &set.occurrences {
        println!("  offset {:>10} distance {:>12.4}", o.offset, o.distance);
    }
    Ok(())
}
