//! `valmod` — command-line driver for the VALMOD suite.
//!
//! This binary plays the role of the paper's C back-end: it reads a data
//! series, runs VALMOD (or a fixed-length matrix profile), and emits the
//! VALMAP analysis as text (and optionally JSON for downstream tooling —
//! the demo's Python front-end equivalent).

mod args;

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

use args::{Command, GenerateArgs, MotifSetArgs, ProfileArgs, RunArgs, ServeArgs, StreamArgs};
use valmod_core::render::{render_valmap, sparkline};
use valmod_core::{expand_motif_set, Query, QueryOutcome, ScreenReport};
use valmod_mp::motif::{top_k_discords, top_k_pairs};
use valmod_mp::stomp::stomp_parallel_in;
use valmod_mp::{default_exclusion, MotifPair, WorkerPool};
use valmod_obs as obs;
use valmod_series::{gen, io};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let command = match args::parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Run(a) => cmd_run(&a),
        Command::Profile(a) => cmd_profile(&a),
        Command::Generate(a) => cmd_generate(&a),
        Command::MotifSet(a) => cmd_motif_set(&a),
        Command::Stream(a) => cmd_stream(&a),
        Command::Serve(a) => cmd_serve(&a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the observability dumps a subcommand was asked for: the
/// Prometheus-style text exposition to `metrics` (`-` for stdout) and the
/// Chrome trace-event JSON to `trace_out`.
fn write_obs_outputs(
    metrics: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = metrics {
        let dump = obs::render_prometheus();
        if path == "-" {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(dump.as_bytes())?;
            stdout.flush()?;
        } else {
            std::fs::write(path, dump)?;
        }
    }
    if let Some(path) = trace_out {
        std::fs::write(path, obs::render_chrome_trace())?;
    }
    Ok(())
}

/// The input-side health stats the stream summary line carries, read
/// back from the session's observability counters.
fn summary_io() -> valmod_stream::SummaryIo {
    let m = obs::metrics();
    valmod_stream::SummaryIo {
        read_retries: m.stream_read_retries.get(),
        max_backoff_ms: u64::try_from(m.stream_max_backoff_ms.get()).unwrap_or(0),
    }
}

fn print_pairs_table(pairs: &[MotifPair]) {
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "#", "offset a", "offset b", "length", "distance", "dist/sqrt(l)"
    );
    for (rank, p) in pairs.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12.4} {:>12.4}",
            rank + 1,
            p.a,
            p.b,
            p.length,
            p.distance,
            p.distance / (p.length as f64).sqrt()
        );
    }
}

fn cmd_run(a: &RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    // The command owns one persistent pool for its whole run: threads are
    // spawned once, parked between phases, joined when the command ends.
    let mut query = Query::new(a.l_min, a.l_max)
        .k(a.k)
        .profile_size(a.p)
        .pipeline(!a.no_pipeline)
        .quality(a.quality)
        .seed(a.seed)
        .pool(Arc::new(WorkerPool::new()));
    if let Some(threads) = a.threads {
        query = query.threads(threads);
    }
    let started = std::time::Instant::now();
    // Anytime preview rounds emit NDJSON progress lines ahead of the
    // human-readable report (the same event shape `valmod stream` uses).
    let n = series.len();
    let outcome = query.run_with_preview(series.values(), |p| {
        println!("{}", valmod_stream::preview_line(n, p));
    })?;
    let elapsed = started.elapsed();
    let output = match outcome {
        QueryOutcome::Screen(report) => {
            print_screen_report(&a.input, series.values(), &report, elapsed);
            return write_obs_outputs(a.metrics.as_deref(), a.trace_out.as_deref());
        }
        QueryOutcome::Exact(output) => output,
    };
    let config = query.config();

    println!("series: {} ({} points)", a.input, series.len());
    println!("data |{}|\n", sparkline(series.values(), 72));
    println!("{}", render_valmap(&output.valmap, 72));

    println!("top motif pairs across lengths (length-normalized ranking):");
    let ranking = output.ranking();
    let pairs: Vec<MotifPair> = ranking.iter().take(a.k).map(|r| r.pair).collect();
    print_pairs_table(&pairs);

    let recomputed: usize = output.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    println!(
        "\ncompleted in {elapsed:.2?} on {} thread(s) — stage 1 {:.2?}, stage 2 {:.2?} \
         ({recomputed} rows recomputed across all lengths)",
        config.threads, output.timings.stage1, output.timings.stage2
    );

    if let Some(path) = &a.valmap_out {
        let json = valmap_to_json(&output.valmap);
        std::fs::write(path, json)?;
        println!("VALMAP written to {path}");
    }
    write_obs_outputs(a.metrics.as_deref(), a.trace_out.as_deref())?;
    Ok(())
}

/// Renders the screening tier's lower-bound ranking: the exact base
/// length, then the top candidates per extended length with their
/// admissible bounds (never exceeding the true distances).
fn print_screen_report(
    input: &str,
    series: &[f64],
    report: &ScreenReport,
    elapsed: std::time::Duration,
) {
    println!("series: {input} ({} points) — screening tier (lower bounds only)", series.len());
    println!("data |{}|\n", sparkline(series, 72));
    println!("exact base length {}:", report.base.length);
    print_pairs_table(&report.base.pairs);
    println!("\nscreened candidates by admissible lower bound (no exact recomputation):");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>14}",
        "length", "offset", "match", "lower bound", "lb/sqrt(l)"
    );
    for sl in &report.lengths {
        for c in &sl.candidates {
            println!(
                "{:>8} {:>10} {:>12} {:>14.4} {:>14.4}",
                c.length,
                c.offset,
                c.match_offset,
                c.lower_bound,
                c.lower_bound / (c.length as f64).sqrt()
            );
        }
    }
    if let Some(best) = report.best_candidate() {
        println!(
            "\nbest screened candidate: offsets ({}, {}), length {}, bound {:.4}",
            best.offset, best.match_offset, best.length, best.lower_bound
        );
    }
    println!("screened in {elapsed:.2?}");
}

/// Minimal hand-rolled JSON dump of VALMAP (front-end hand-off format).
fn valmap_to_json(valmap: &valmod_core::Valmap) -> String {
    let join = |it: Vec<String>| it.join(", ");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"l_min\": {},\n", valmap.l_min));
    out.push_str(&format!(
        "  \"mpn\": [{}],\n",
        join(
            valmap
                .mpn
                .iter()
                .map(|v| if v.is_finite() { format!("{v:.6}") } else { "null".into() })
                .collect()
        )
    ));
    out.push_str(&format!(
        "  \"ip\": [{}],\n",
        join(valmap.ip.iter().map(|v| v.map_or("null".into(), |j| j.to_string())).collect())
    ));
    out.push_str(&format!(
        "  \"lp\": [{}],\n",
        join(valmap.lp.iter().map(ToString::to_string).collect())
    ));
    out.push_str(&format!(
        "  \"checkpoints\": [{}]\n",
        join(
            valmap
                .checkpoints
                .iter()
                .map(|c| {
                    format!("{{\"length\": {}, \"updates\": {}}}", c.length, c.updates.len())
                })
                .collect()
        )
    ));
    out.push('}');
    out
}

fn cmd_profile(a: &ProfileArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let threads = a.threads.map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        |t| t.max(1),
    );
    let pool = WorkerPool::new();
    let mp =
        stomp_parallel_in(series.values(), a.length, default_exclusion(a.length), threads, &pool)?;
    println!("series: {} ({} points), window {}", a.input, series.len(), a.length);
    println!("data |{}|", sparkline(series.values(), 72));
    println!("MP   |{}|\n", sparkline(&mp.values, 72));
    println!("top-{} motif pairs:", a.k);
    print_pairs_table(&top_k_pairs(&mp, a.k));
    println!("\ntop-{} discords:", a.k);
    for (rank, (offset, d)) in top_k_discords(&mp, a.k).iter().enumerate() {
        println!("{:>4} offset {:>10} distance {:>12.4}", rank + 1, offset, d);
    }
    write_obs_outputs(a.metrics.as_deref(), a.trace_out.as_deref())?;
    Ok(())
}

fn cmd_generate(a: &GenerateArgs) -> Result<(), Box<dyn std::error::Error>> {
    let values = match a.kind.as_str() {
        "ecg" => gen::ecg(a.n, &gen::EcgConfig::default(), a.seed),
        "astro" => gen::astro(a.n, &gen::AstroConfig::default(), a.seed),
        "walk" => gen::random_walk(a.n, a.seed),
        "seismic" => gen::seismic(a.n, &gen::SeismicConfig::default(), a.seed),
        "epg" => gen::epg(a.n, &gen::EpgConfig::default(), a.seed),
        "noise" => gen::white_noise(a.n, a.seed, 1.0),
        other => unreachable!("parser rejects kind {other:?}"),
    };
    io::write_series(&a.output, &values)?;
    println!("wrote {} points of {} (seed {}) to {}", values.len(), a.kind, a.seed, a.output);
    Ok(())
}

/// Mutable state of one `valmod stream` session: the warmup/engine state
/// machine ([`valmod_stream::SessionCore`]) plus the NDJSON cadence, the
/// durability layer, and the resume fast-forward.
struct StreamSession {
    core: valmod_stream::SessionCore,
    l_min: usize,
    l_max: usize,
    every: usize,
    since_poll: usize,
    /// Cadence of the `metrics` NDJSON event (0 = off).
    metrics_every: usize,
    since_metrics: usize,
    line_values: Vec<f64>,
    /// Durability: checkpoints + per-sample journal (absent without
    /// `--checkpoint-dir`).
    store: Option<valmod_stream::CheckpointStore>,
    checkpoint_every: usize,
    since_checkpoint: usize,
}

impl StreamSession {
    /// Feeds one complete input line: tokenize, bootstrap or append each
    /// value, emit due NDJSON events.
    fn feed_line(
        &mut self,
        line: &str,
        line_no: usize,
        out: &mut impl Write,
    ) -> Result<(), Box<dyn std::error::Error>> {
        self.line_values.clear();
        // The same tokenizer `run`/`profile` read files with, so every
        // subcommand accepts the exact same format.
        let mut line_values = std::mem::take(&mut self.line_values);
        valmod_series::io::parse_series_line(line, line_no, &mut line_values)?;
        for &value in &line_values {
            self.feed_value(value, line_no, out)?;
        }
        self.line_values = line_values;
        Ok(())
    }

    fn feed_value(
        &mut self,
        value: f64,
        line_no: usize,
        out: &mut impl Write,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let outcome = match self.core.feed(value) {
            Ok(outcome) => outcome,
            // A full bounded buffer is back-pressure, not a skippable
            // sample: emit what we know, then fail loudly instead of
            // silently dropping the rest of the feed.
            Err(e) => {
                let skipped = self.core.skipped();
                return match self.core.engine_mut() {
                    Some(engine) => {
                        let n = engine.len();
                        for delta in engine.poll_deltas() {
                            writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
                        }
                        writeln!(
                            out,
                            "{}",
                            valmod_stream::summary_line(
                                n,
                                skipped,
                                summary_io(),
                                engine.valmap().best_entry(),
                            )
                        )?;
                        out.flush()?;
                        Err(format!("stream stopped at line {line_no} after {n} points: {e}")
                            .into())
                    }
                    None => Err(e.into()),
                };
            }
        };
        match outcome {
            // The resume fast-forward consumed a re-read prefix sample
            // the recovered engine already holds.
            valmod_stream::FeedOutcome::Replayed => {}
            valmod_stream::FeedOutcome::Buffered => {}
            valmod_stream::FeedOutcome::Skipped { warn } => {
                // A bad sample is skippable; the feed goes on — but at
                // sensor rates a broken feed must not drown stderr, so
                // the warning is rate-limited (first 10, then every
                // 1000th) while the count keeps exact.
                if warn {
                    eprintln!(
                        "skipping non-finite point on line {line_no} ({} skipped so far)",
                        self.core.skipped()
                    );
                }
            }
            valmod_stream::FeedOutcome::Bootstrapped => {
                let engine = self.core.engine().expect("just bootstrapped");
                let n = engine.len();
                writeln!(
                    out,
                    "{}",
                    valmod_stream::bootstrap_line(n, self.l_min, self.l_max, n - self.l_min + 1)
                )?;
                out.flush()?;
                // Generation 0 captures the bootstrap, so the journal
                // always has a checkpoint to replay onto.
                self.checkpoint_now(out)?;
            }
            valmod_stream::FeedOutcome::Appended => {
                if let Some(store) = &mut self.store {
                    store.journal_sample(value)?;
                }
                self.since_checkpoint += 1;
                if self.store.is_some() && self.since_checkpoint >= self.checkpoint_every {
                    self.since_checkpoint = 0;
                    self.checkpoint_now(out)?;
                }
                self.since_poll += 1;
                if self.since_poll >= self.every {
                    self.since_poll = 0;
                    let engine = self.core.engine_mut().expect("appended to a live engine");
                    let n = engine.len();
                    for delta in engine.poll_deltas() {
                        writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
                    }
                    out.flush()?;
                    // The journal durability batch boundary rides the
                    // emission cadence: what a consumer has seen, a
                    // restart can reconstruct.
                    if let Some(store) = &mut self.store {
                        store.sync_journal()?;
                    }
                }
                if self.metrics_every > 0 {
                    self.since_metrics += 1;
                    if self.since_metrics >= self.metrics_every {
                        self.since_metrics = 0;
                        let n = self.core.engine().expect("appended to a live engine").len();
                        writeln!(out, "{}", obs::metrics_line(n))?;
                        out.flush()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes a checkpoint generation (if durability is on) and emits
    /// its NDJSON event.
    fn checkpoint_now(&mut self, out: &mut impl Write) -> Result<(), Box<dyn std::error::Error>> {
        let Some(store) = &mut self.store else { return Ok(()) };
        let engine = self.core.engine().expect("checkpointing requires a live engine");
        let generation = store.checkpoint(engine)?;
        writeln!(out, "{}", valmod_stream::checkpoint_line(engine.len(), generation))?;
        out.flush()?;
        Ok(())
    }

    /// Emits the pending deltas plus the closing summary line.
    fn finish(&mut self, out: &mut impl Write) -> Result<(), Box<dyn std::error::Error>> {
        if !self.core.is_live() {
            return Err(format!(
                "stream ended after {} points, before the {}-point bootstrap",
                self.core.buffered(),
                self.core.warmup()
            )
            .into());
        }
        if let Some(store) = &mut self.store {
            store.sync_journal()?;
        }
        let skipped = self.core.skipped();
        let engine = self.core.engine_mut().expect("live");
        let n = engine.len();
        for delta in engine.poll_deltas() {
            writeln!(out, "{}", valmod_stream::update_line(n, &delta))?;
        }
        // Under the anytime tier, certify the session at end-of-stream:
        // the batch-grade snapshot streams one `preview` event per round
        // (convergence, churn) before settling to the exact answer.
        if matches!(engine.config().quality, valmod_core::Quality::Anytime { .. }) {
            let mut lines = Vec::new();
            engine.snapshot_with_preview(&mut |p| {
                lines.push(valmod_stream::preview_line(n, p));
            })?;
            for line in lines {
                writeln!(out, "{line}")?;
            }
        }
        if self.metrics_every > 0 {
            // A final metrics event so a consumer always sees the
            // end-of-session state, whatever the cadence remainder.
            writeln!(out, "{}", obs::metrics_line(n))?;
        }
        writeln!(
            out,
            "{}",
            valmod_stream::summary_line(n, skipped, summary_io(), engine.valmap().best_entry())
        )?;
        out.flush()?;
        Ok(())
    }

    /// The summary line for an interrupted stream (closed output).
    fn summary_text(&mut self) -> Option<String> {
        let skipped = self.core.skipped();
        self.core.engine_mut().map(|e| {
            valmod_stream::summary_line(e.len(), skipped, summary_io(), e.valmap().best_entry())
        })
    }
}

/// Read-error kinds worth retrying: the feed is momentarily unready, not
/// gone.
fn is_transient_read(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Bounded retries before a transient read error is treated as
/// persistent (with exponential backoff, the window is ~64× the cap).
const MAX_READ_RETRIES: u32 = 64;

/// `read_line` with bounded retry + exponential backoff for transient
/// errors (`Interrupted`/`WouldBlock`/`TimedOut`): 1 ms doubling up to
/// `cap_ms` (the `--poll-ms` scale — a reader that polls its feed every
/// `cap_ms` has no reason to spin faster on a hiccup). Only persistent
/// errors propagate. Bytes read before a mid-line hiccup stay in `buf`,
/// so a retried line is never parsed in halves.
fn read_line_retry(
    reader: &mut dyn BufRead,
    buf: &mut String,
    cap_ms: u64,
) -> std::io::Result<usize> {
    let cap = std::time::Duration::from_millis(cap_ms.max(1));
    let mut delay = std::time::Duration::from_millis(1).min(cap);
    let mut attempts = 0u32;
    loop {
        match reader.read_line(buf) {
            Ok(n) => return Ok(n),
            Err(e) if is_transient_read(e.kind()) && attempts < MAX_READ_RETRIES => {
                attempts += 1;
                obs::count!(stream_read_retries, 1);
                obs::metrics()
                    .stream_max_backoff_ms
                    .record_max(i64::try_from(delay.as_millis()).unwrap_or(i64::MAX));
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2).min(cap);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Whether an error chain bottoms out in a broken pipe (the NDJSON
/// consumer closed our stdout).
fn is_broken_pipe(err: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur = Some(err);
    while let Some(e) = cur {
        if let Some(io_err) = e.downcast_ref::<std::io::Error>() {
            if io_err.kind() == std::io::ErrorKind::BrokenPipe {
                return true;
            }
        }
        cur = e.source();
    }
    false
}

/// `valmod stream`: tail a file or stdin, bootstrap the incremental
/// engine on the first points, then append each subsequent point and
/// emit the VALMAP entries that changed as NDJSON on stdout.
///
/// Non-finite points from the feed are reported on stderr and skipped —
/// the engine's `try_append` contract means a bad sample can never kill
/// the stream or corrupt the profiles. With `--follow`, end-of-file
/// parks the reader (sleep-retry) instead of finishing, so a live feed
/// that pauses keeps the service alive; a closed output (SIGPIPE /
/// broken pipe) ends the run cleanly with the summary on stderr.
fn cmd_stream(a: &StreamArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut query = Query::new(a.l_min, a.l_max)
        .k(a.k)
        .profile_size(a.p)
        .quality(a.quality)
        .seed(a.seed)
        .pool(Arc::new(WorkerPool::new()));
    if let Some(threads) = a.threads {
        query = query.threads(threads);
    }
    let config = query.into_config();
    // The warmup floor and the capacity-vs-warmup check live in
    // SessionCore (shared with the serve daemon's tenants); only the
    // resumed path needs the effective target separately.
    let warmup = valmod_stream::SessionCore::effective_warmup(&config, a.warmup);

    let from_stdin = a.input == "-";
    // The failpoint wrapper is a single relaxed atomic load per read
    // when nothing is armed; armed (tests only), it injects the
    // transient/persistent read errors the retry loop is built for.
    let mut reader: Box<dyn BufRead> = if from_stdin {
        Box::new(BufReader::new(valmod_series::faults::ChaosRead::new(
            "stream.read",
            std::io::stdin(),
        )))
    } else {
        Box::new(BufReader::new(valmod_series::faults::ChaosRead::new(
            "stream.read",
            std::fs::File::open(&a.input)?,
        )))
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    // Durability: open the store, then recover (--resume) or refuse to
    // clobber a previous session's state.
    let mut store =
        a.checkpoint_dir.as_ref().map(valmod_stream::CheckpointStore::open).transpose()?;
    let mut recovered: Option<valmod_stream::Recovery> = None;
    if let Some(store) = &mut store {
        if a.resume {
            recovered = store.recover(&config)?;
        } else if store.has_state() {
            return Err(format!(
                "checkpoint directory {:?} already holds session state; pass --resume to \
                 recover it, or point --checkpoint-dir at an empty directory",
                store.dir().display()
            )
            .into());
        }
    }
    let mut fast_forward = 0u64;
    let mut recovered_event = None;
    let mut core = match recovered {
        Some(rec) => {
            let ckpt_cap = rec.engine.buffer().capacity();
            if a.capacity.is_some() && a.capacity != ckpt_cap {
                return Err(format!(
                    "checkpoint was written with capacity {:?}, which conflicts with \
                     --capacity {:?}",
                    ckpt_cap, a.capacity
                )
                .into());
            }
            recovered_event = Some(valmod_stream::recovered_line(
                rec.engine.len(),
                rec.generation,
                rec.replayed,
                rec.fell_back,
            ));
            // A file input replays from its start: silently skip the
            // prefix the recovered engine already holds. Stdin cannot
            // seek back — new samples append directly.
            if !from_stdin {
                fast_forward = rec.engine.len() as u64;
            }
            valmod_stream::SessionCore::resumed(rec.engine, warmup)
        }
        None => valmod_stream::SessionCore::with_options(config, a.warmup, a.capacity)?,
    };
    core.set_fast_forward(fast_forward);

    let mut session = StreamSession {
        core,
        l_min: a.l_min,
        l_max: a.l_max,
        every: a.every,
        since_poll: 0,
        metrics_every: a.metrics_every,
        since_metrics: 0,
        line_values: Vec::new(),
        store,
        checkpoint_every: a.checkpoint_every,
        since_checkpoint: 0,
    };
    if let Some(line) = recovered_event {
        writeln!(out, "{line}")?;
        out.flush()?;
        // Seal the recovered state into a fresh generation immediately:
        // from here on the session appends to a clean journal, never to
        // a possibly-torn tail.
        session.checkpoint_now(&mut out)?;
    }
    let result = stream_loop(a, &mut session, &mut reader, &mut out);
    let result = match result {
        Err(e) if is_broken_pipe(&*e) => {
            // The consumer closed our stdout mid-stream. That is a normal
            // way for a pipeline to end: report the closing summary on
            // stderr (stdout is gone) and exit cleanly. stderr may be
            // closed too — `eprintln!` would panic, so a failed write is
            // simply dropped: there is nowhere left to report to.
            if let Some(summary) = session.summary_text() {
                let _ = writeln!(std::io::stderr(), "{summary}");
            }
            Ok(())
        }
        other => other,
    };
    let _ = out.flush();
    drop(out);
    // The end-of-session dumps go to their own paths, so they are written
    // even when the NDJSON consumer hung up; with nothing left to report
    // to after an error, a failed dump is dropped rather than masking it.
    match result {
        Ok(()) => write_obs_outputs(a.metrics.as_deref(), a.trace_out.as_deref()),
        Err(e) => {
            let _ = write_obs_outputs(a.metrics.as_deref(), a.trace_out.as_deref());
            Err(e)
        }
    }
}

/// `valmod serve` — the multi-tenant streaming daemon. Binds the
/// requested socket, prints a `serving` NDJSON line with the actual
/// address (port 0 resolves to a free port), then blocks until a client
/// issues the `shutdown` protocol command; shutdown checkpoints every
/// tenant before the accept loop drains. The exit-time `--metrics` dump
/// carries the per-tenant label dimension.
fn cmd_serve(a: &ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut query = Query::new(a.l_min, a.l_max).k(a.k).profile_size(a.p);
    if let Some(threads) = a.threads {
        query = query.threads(threads);
    }
    let config = query.into_config();
    let policy = valmod_stream::TenantPolicy {
        warmup: a.warmup,
        capacity: a.capacity,
        mem_budget: a.mem_budget,
        lane_depth: a.lane_depth,
        checkpoint_root: a.checkpoint_dir.as_ref().map(std::path::PathBuf::from),
        checkpoint_every: a.checkpoint_every,
    };
    let bind = match (&a.unix, &a.bind) {
        (Some(path), _) => valmod_serve::Bind::Unix(path.into()),
        (None, Some(addr)) => valmod_serve::Bind::Tcp(addr.clone()),
        (None, None) => valmod_serve::Bind::Tcp("127.0.0.1:0".into()),
    };
    let handle = valmod_serve::serve(&bind, Arc::new(WorkerPool::new()), config, policy)?;
    {
        let mut stdout = std::io::stdout().lock();
        writeln!(stdout, "{{\"event\":\"serving\",\"addr\":\"{}\"}}", handle.local_addr())?;
        stdout.flush()?;
    }
    handle.join();
    // After join the daemon has fully drained; the metrics registry
    // still holds every tenant's final values.
    write_obs_outputs(a.metrics.as_deref(), None)?;
    println!("{{\"event\":\"stopped\"}}");
    Ok(())
}

/// The read loop behind [`cmd_stream`]: line-at-a-time with explicit
/// end-of-file handling.
///
/// * Without `--follow`, end-of-file finishes the stream — including a
///   final line missing its trailing newline, whose samples are fed
///   before the summary (nothing is silently dropped).
/// * With `--follow`, end-of-file on a *file* parks for `--poll-ms` and
///   retries (`tail -f` semantics); a partial trailing line stays
///   buffered until its newline arrives, so a sample split across writes
///   is never parsed in halves. End-of-file on stdin is final even under
///   `--follow` — a closed pipe can never produce more data.
/// * Transient read errors ([`is_transient_read`]) are retried with
///   bounded exponential backoff ([`read_line_retry`]) instead of
///   killing the session; only persistent errors are fatal.
fn stream_loop(
    a: &StreamArgs,
    session: &mut StreamSession,
    reader: &mut dyn BufRead,
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let follow_retries = a.follow && a.input != "-";
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        let n = read_line_retry(reader, &mut buf, a.poll_ms)?;
        if n == 0 {
            if follow_retries {
                std::thread::sleep(std::time::Duration::from_millis(a.poll_ms));
                continue;
            }
            // Final EOF: a trailing line without '\n' still counts.
            if !buf.is_empty() {
                line_no += 1;
                session.feed_line(&buf, line_no, out)?;
            }
            break;
        }
        if buf.ends_with('\n') {
            line_no += 1;
            session.feed_line(&buf, line_no, out)?;
            buf.clear();
        }
        // No newline yet: mid-line EOF. The next read_line call appends
        // the rest of the line to `buf`.
    }
    session.finish(out)
}

fn cmd_motif_set(a: &MotifSetArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let d = valmod_series::znorm::zdist(
        series.subsequence(a.a, a.length)?,
        series.subsequence(a.b, a.length)?,
    );
    let pair = MotifPair::new(a.a, a.b, d, a.length);
    let set = expand_motif_set(series.values(), &pair, a.radius, default_exclusion(a.length))?;
    println!(
        "motif set of pair ({}, {}) at length {} — radius {:.4}: {} occurrences",
        a.a,
        a.b,
        a.length,
        set.radius,
        set.len()
    );
    for o in &set.occurrences {
        println!("  offset {:>10} distance {:>12.4}", o.offset, o.distance);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{is_transient_read, read_line_retry, MAX_READ_RETRIES};
    use std::io::{BufReader, ErrorKind};
    use valmod_series::faults::{self, ChaosRead, FaultKind, FaultPlan};

    const SITE: &str = "cli.test.read";

    fn plan(times: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan { site: Some(SITE.into()), after: 0, times, kind }
    }

    #[test]
    fn transient_read_errors_retry_until_data_arrives() {
        let mut reader = BufReader::new(ChaosRead::new(SITE, &b"1.5\n2.5\n"[..]));
        let _g = faults::arm(plan(3, FaultKind::Err(ErrorKind::WouldBlock)));
        let mut buf = String::new();
        assert_eq!(read_line_retry(&mut reader, &mut buf, 2).unwrap(), 4);
        assert_eq!(buf, "1.5\n");
        // The fault window has passed: the next line reads clean.
        buf.clear();
        assert_eq!(read_line_retry(&mut reader, &mut buf, 2).unwrap(), 4);
        assert_eq!(buf, "2.5\n");
    }

    #[test]
    fn persistent_transient_errors_exhaust_the_retry_budget() {
        let mut reader = BufReader::new(ChaosRead::new(SITE, &b"1.5\n"[..]));
        let g = faults::arm(plan(u64::MAX, FaultKind::Err(ErrorKind::TimedOut)));
        let mut buf = String::new();
        let err = read_line_retry(&mut reader, &mut buf, 1).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert!(buf.is_empty());
        // Bounded: exactly the budget plus the final failing attempt.
        assert_eq!(g.hits(), u64::from(MAX_READ_RETRIES) + 1);
    }

    #[test]
    fn non_transient_errors_fail_immediately() {
        let mut reader = BufReader::new(ChaosRead::new(SITE, &b"1.5\n"[..]));
        let g = faults::arm(plan(u64::MAX, FaultKind::Err(ErrorKind::NotFound)));
        let mut buf = String::new();
        let err = read_line_retry(&mut reader, &mut buf, 1).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert_eq!(g.hits(), 1, "no retry for a persistent error");
        assert!(!is_transient_read(ErrorKind::NotFound));
    }
}
