//! `valmod` — command-line driver for the VALMOD suite.
//!
//! This binary plays the role of the paper's C back-end: it reads a data
//! series, runs VALMOD (or a fixed-length matrix profile), and emits the
//! VALMAP analysis as text (and optionally JSON for downstream tooling —
//! the demo's Python front-end equivalent).

mod args;

use std::process::ExitCode;

use args::{Command, GenerateArgs, MotifSetArgs, ProfileArgs, RunArgs};
use valmod_core::render::{render_valmap, sparkline};
use valmod_core::{expand_motif_set, run_valmod, ValmodConfig};
use valmod_mp::motif::{top_k_discords, top_k_pairs};
use valmod_mp::stomp::stomp_parallel;
use valmod_mp::{default_exclusion, MotifPair};
use valmod_series::{gen, io};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let command = match args::parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Run(a) => cmd_run(&a),
        Command::Profile(a) => cmd_profile(&a),
        Command::Generate(a) => cmd_generate(&a),
        Command::MotifSet(a) => cmd_motif_set(&a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_pairs_table(pairs: &[MotifPair]) {
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "#", "offset a", "offset b", "length", "distance", "dist/sqrt(l)"
    );
    for (rank, p) in pairs.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12.4} {:>12.4}",
            rank + 1,
            p.a,
            p.b,
            p.length,
            p.distance,
            p.distance / (p.length as f64).sqrt()
        );
    }
}

fn cmd_run(a: &RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let mut config = ValmodConfig::new(a.l_min, a.l_max).with_k(a.k).with_profile_size(a.p);
    if let Some(threads) = a.threads {
        config = config.with_threads(threads);
    }
    let started = std::time::Instant::now();
    let output = run_valmod(series.values(), &config)?;
    let elapsed = started.elapsed();

    println!("series: {} ({} points)", a.input, series.len());
    println!("data |{}|\n", sparkline(series.values(), 72));
    println!("{}", render_valmap(&output.valmap, 72));

    println!("top motif pairs across lengths (length-normalized ranking):");
    let ranking = output.ranking();
    let pairs: Vec<MotifPair> = ranking.iter().take(a.k).map(|r| r.pair).collect();
    print_pairs_table(&pairs);

    let recomputed: usize = output.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    println!(
        "\ncompleted in {elapsed:.2?} on {} thread(s) — stage 1 {:.2?}, stage 2 {:.2?} \
         ({recomputed} rows recomputed across all lengths)",
        config.threads, output.timings.stage1, output.timings.stage2
    );

    if let Some(path) = &a.valmap_out {
        let json = valmap_to_json(&output.valmap);
        std::fs::write(path, json)?;
        println!("VALMAP written to {path}");
    }
    Ok(())
}

/// Minimal hand-rolled JSON dump of VALMAP (front-end hand-off format).
fn valmap_to_json(valmap: &valmod_core::Valmap) -> String {
    let join = |it: Vec<String>| it.join(", ");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"l_min\": {},\n", valmap.l_min));
    out.push_str(&format!(
        "  \"mpn\": [{}],\n",
        join(
            valmap
                .mpn
                .iter()
                .map(|v| if v.is_finite() { format!("{v:.6}") } else { "null".into() })
                .collect()
        )
    ));
    out.push_str(&format!(
        "  \"ip\": [{}],\n",
        join(valmap.ip.iter().map(|v| v.map_or("null".into(), |j| j.to_string())).collect())
    ));
    out.push_str(&format!(
        "  \"lp\": [{}],\n",
        join(valmap.lp.iter().map(ToString::to_string).collect())
    ));
    out.push_str(&format!(
        "  \"checkpoints\": [{}]\n",
        join(
            valmap
                .checkpoints
                .iter()
                .map(|c| {
                    format!("{{\"length\": {}, \"updates\": {}}}", c.length, c.updates.len())
                })
                .collect()
        )
    ));
    out.push('}');
    out
}

fn cmd_profile(a: &ProfileArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let threads = a.threads.map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        |t| t.max(1),
    );
    let mp = stomp_parallel(series.values(), a.length, default_exclusion(a.length), threads)?;
    println!("series: {} ({} points), window {}", a.input, series.len(), a.length);
    println!("data |{}|", sparkline(series.values(), 72));
    println!("MP   |{}|\n", sparkline(&mp.values, 72));
    println!("top-{} motif pairs:", a.k);
    print_pairs_table(&top_k_pairs(&mp, a.k));
    println!("\ntop-{} discords:", a.k);
    for (rank, (offset, d)) in top_k_discords(&mp, a.k).iter().enumerate() {
        println!("{:>4} offset {:>10} distance {:>12.4}", rank + 1, offset, d);
    }
    Ok(())
}

fn cmd_generate(a: &GenerateArgs) -> Result<(), Box<dyn std::error::Error>> {
    let values = match a.kind.as_str() {
        "ecg" => gen::ecg(a.n, &gen::EcgConfig::default(), a.seed),
        "astro" => gen::astro(a.n, &gen::AstroConfig::default(), a.seed),
        "walk" => gen::random_walk(a.n, a.seed),
        "seismic" => gen::seismic(a.n, &gen::SeismicConfig::default(), a.seed),
        "epg" => gen::epg(a.n, &gen::EpgConfig::default(), a.seed),
        "noise" => gen::white_noise(a.n, a.seed, 1.0),
        other => unreachable!("parser rejects kind {other:?}"),
    };
    io::write_series(&a.output, &values)?;
    println!("wrote {} points of {} (seed {}) to {}", values.len(), a.kind, a.seed, a.output);
    Ok(())
}

fn cmd_motif_set(a: &MotifSetArgs) -> Result<(), Box<dyn std::error::Error>> {
    let series = io::read_series(&a.input)?;
    let d = valmod_series::znorm::zdist(
        series.subsequence(a.a, a.length)?,
        series.subsequence(a.b, a.length)?,
    );
    let pair = MotifPair::new(a.a, a.b, d, a.length);
    let set = expand_motif_set(series.values(), &pair, a.radius, default_exclusion(a.length))?;
    println!(
        "motif set of pair ({}, {}) at length {} — radius {:.4}: {} occurrences",
        a.a,
        a.b,
        a.length,
        set.radius,
        set.len()
    );
    for o in &set.occurrences {
        println!("  offset {:>10} distance {:>12.4}", o.offset, o.distance);
    }
    Ok(())
}
