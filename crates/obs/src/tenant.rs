//! The per-tenant metric dimension.
//!
//! The static [`crate::registry`] is deliberately const-initialized —
//! one field access plus a relaxed atomic per event, no locks, no
//! registration. Tenants are the one dimension that cannot be static:
//! the serve daemon opens and closes named sessions at runtime. This
//! module adds a small *dynamic* registry beside the static one, under
//! the same recording discipline:
//!
//! * [`tenant`] resolves a name to its [`TenantMetrics`] once (one lock
//!   acquisition, amortized by the caller caching the `Arc`); every
//!   *recording* after that is the same lock-free relaxed atomic as the
//!   static registry — the hot append path never touches the map.
//! * The per-tenant metric *set* is fixed ([`TENANT_DESCS`]), so the
//!   renderers iterate `tenants × descriptors` exactly like they iterate
//!   the static table, and the exposition schema stays knowable.
//!
//! All three renderers carry the dimension: the Prometheus exposition
//! emits one sample per tenant with a `tenant="..."` label, the Chrome
//! trace appends one `"C"` (counter) event per tenant at export time,
//! and the NDJSON metrics line nests a `"tenants"` object keyed by
//! tenant name. Under `obs-off` the map is never populated and every
//! recording is a no-op, like the rest of the crate.

use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{Counter, Gauge};

/// The fixed metric set every tenant carries. Recording through the
/// fields is lock-free (relaxed atomics); resolution of a name to this
/// struct is [`tenant`].
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Samples appended to this tenant's engine (accepted, not skipped).
    pub appends: Counter,
    /// Queries served (snapshot/valmap/motifs/discords/summary).
    pub queries: Counter,
    /// VALMAP delta entries emitted to this tenant's delta stream.
    pub deltas: Counter,
    /// Operations rejected by backpressure (lane saturation or the
    /// global memory budget).
    pub backpressure: Counter,
    /// Checkpoint generations published for this tenant.
    pub checkpoints: Counter,
    /// Accounted engine memory, in bytes.
    pub mem_bytes: Gauge,
}

/// Metadata of one per-tenant family: exposition name (already carrying
/// the Prometheus `_total` suffix where applicable), kind, help, and the
/// field accessor.
pub struct TenantDesc {
    /// Full exposition name (`valmod_tenant_*`).
    pub name: &'static str,
    /// Metric kind (only counters and gauges exist per tenant).
    pub kind: crate::registry::Kind,
    /// One-line meaning for `# HELP`.
    pub help: &'static str,
    /// Reads the live value out of a tenant's metric set.
    pub get: fn(&TenantMetrics) -> i64,
}

/// The per-tenant families, in exposition order.
pub static TENANT_DESCS: &[TenantDesc] = &[
    TenantDesc {
        name: "valmod_tenant_appends_total",
        kind: crate::registry::Kind::Counter,
        help: "Samples appended per tenant",
        get: |t| t.appends.get() as i64,
    },
    TenantDesc {
        name: "valmod_tenant_queries_total",
        kind: crate::registry::Kind::Counter,
        help: "Queries served per tenant",
        get: |t| t.queries.get() as i64,
    },
    TenantDesc {
        name: "valmod_tenant_deltas_total",
        kind: crate::registry::Kind::Counter,
        help: "VALMAP delta entries emitted per tenant",
        get: |t| t.deltas.get() as i64,
    },
    TenantDesc {
        name: "valmod_tenant_backpressure_total",
        kind: crate::registry::Kind::Counter,
        help: "Operations rejected by backpressure per tenant",
        get: |t| t.backpressure.get() as i64,
    },
    TenantDesc {
        name: "valmod_tenant_checkpoints_total",
        kind: crate::registry::Kind::Counter,
        help: "Checkpoint generations published per tenant",
        get: |t| t.checkpoints.get() as i64,
    },
    TenantDesc {
        name: "valmod_tenant_mem_bytes",
        kind: crate::registry::Kind::Gauge,
        help: "Accounted engine memory per tenant, in bytes",
        get: |t| t.mem_bytes.get(),
    },
];

/// The registration list: insertion order is exposition order.
type TenantList = Mutex<Vec<(String, Arc<TenantMetrics>)>>;

/// Registration order is insertion order, so expositions are stable
/// across scrapes of one process.
fn registry() -> &'static TenantList {
    static TENANTS: OnceLock<TenantList> = OnceLock::new();
    TENANTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Resolves (registering on first sight) the metric set of one tenant.
/// Callers cache the returned `Arc` so the map lock is paid once per
/// tenant lifetime, not per event. Under `obs-off` nothing is
/// registered and a shared no-op set is returned.
#[must_use]
pub fn tenant(name: &str) -> Arc<TenantMetrics> {
    #[cfg(feature = "obs-off")]
    {
        let _ = name;
        static DUMMY: OnceLock<Arc<TenantMetrics>> = OnceLock::new();
        Arc::clone(DUMMY.get_or_init(|| Arc::new(TenantMetrics::default())))
    }
    #[cfg(not(feature = "obs-off"))]
    {
        let mut tenants = registry().lock().expect("tenant registry poisoned");
        if let Some((_, m)) = tenants.iter().find(|(n, _)| n == name) {
            return Arc::clone(m);
        }
        let m = Arc::new(TenantMetrics::default());
        tenants.push((name.to_string(), Arc::clone(&m)));
        Arc::clone(&m)
    }
}

/// Every registered tenant with its metric set, in registration order.
/// Empty under `obs-off`.
#[must_use]
pub fn tenants_snapshot() -> Vec<(String, Arc<TenantMetrics>)> {
    registry().lock().expect("tenant registry poisoned").clone()
}

/// Drops every tenant registration — test isolation support (tenant
/// metrics otherwise persist for the process lifetime, as Prometheus
/// scrapers expect).
pub fn reset_tenants() {
    registry().lock().expect("tenant registry poisoned").clear();
}

/// Escapes a tenant name for use inside a Prometheus label value or a
/// JSON string (the two grammars share these escapes).
#[must_use]
pub fn escape_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes tests that mutate the process-global tenant registry
/// (they run in parallel threads within one test binary otherwise).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_resolution_is_idempotent() {
        let _g = test_guard();
        let a = tenant("idempotent-check");
        a.appends.add(3);
        let b = tenant("idempotent-check");
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(b.appends.get(), 3, "same tenant name must resolve to the same set");
        let _ = b;
        reset_tenants();
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_preserves_registration_order() {
        let _g = test_guard();
        reset_tenants();
        for name in ["z-last", "a-first", "m-mid"] {
            let _ = tenant(name);
        }
        let names: Vec<String> = tenants_snapshot().into_iter().map(|(n, _)| n).collect();
        let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
        assert!(pos("z-last") < pos("a-first") && pos("a-first") < pos("m-mid"));
        reset_tenants();
    }

    #[test]
    fn label_escaping_covers_json_and_prometheus() {
        assert_eq!(escape_label("plain-name_1.2"), "plain-name_1.2");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
