#![warn(missing_docs)]

//! Observability for the VALMOD suite: metrics, spans, and renderers.
//!
//! Seven PRs of kernel, pipeline, and durability work made the engine
//! fast and crash-safe; this crate makes it *legible*. Three pieces:
//!
//! * [`metric`] — lock-free counters, gauges, and log₂-bucketed
//!   histograms. Every metric the suite exports lives in one static,
//!   const-initialized [`Metrics`] registry ([`metrics`]): no
//!   allocation, no locks, no registration order — a hot path pays one
//!   relaxed `fetch_add` per event, and the kernel layers pay less than
//!   that by accumulating locally and flushing once per walk.
//! * [`span`] — lightweight span tracing into a bounded in-memory ring.
//!   A [`span`](span()) guard records wall-clock start and duration on
//!   drop; the ring overwrites its oldest entries, so a long-lived
//!   stream session keeps the most recent window of activity.
//! * [`render`] — three read-side views over the same state: a
//!   Prometheus-style text exposition ([`render_prometheus`]), a Chrome
//!   `trace-event` JSON export loadable in `chrome://tracing` / Perfetto
//!   ([`render_chrome_trace`]), and a single-line NDJSON `metrics` event
//!   for the streaming delta channel ([`metrics_line`]).
//!
//! # Compiling it all out
//!
//! The `obs-off` feature turns every recording operation into a no-op
//! and every guard into a zero-sized type, so an instrumented call site
//! costs nothing — not even an `Instant::now` — in an `obs-off` build.
//! CI builds the suite both ways and gates the instrumented stage-1
//! kernel at <2% overhead against the compiled-out build.
//!
//! # Example
//!
//! ```
//! use valmod_obs as obs;
//!
//! let before = obs::metrics().stage1_cells.get();
//! {
//!     let _span = obs::span("stage1", obs::Layer::Kernel);
//!     obs::metrics().stage1_cells.add(1_000);
//! }
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(obs::metrics().stage1_cells.get() - before, 1_000);
//! let dump = obs::render_prometheus();
//! assert!(dump.contains("valmod_stage1_cells_total"));
//! ```

pub mod metric;
pub mod registry;
pub mod render;
pub mod span;
pub mod tenant;

pub use metric::{Counter, Gauge, Histogram, Timer};
pub use registry::{metrics, Desc, Kind, Layer, MetricRef, Metrics, Unit};
pub use render::{metrics_line, render_chrome_trace, render_prometheus, tenant_metrics_lines};
pub use span::{span, spans_snapshot, Span, SpanGuard};
pub use tenant::{tenant, tenants_snapshot, TenantMetrics};

/// Starts a [`Timer`] observing into a histogram field of the static
/// registry on drop; expands to a zero-sized no-op under `obs-off`.
///
/// ```
/// # use valmod_obs as obs;
/// let _t = valmod_obs::time!(stream_append_seconds);
/// ```
#[macro_export]
macro_rules! time {
    ($field:ident) => {
        $crate::Timer::start(&$crate::metrics().$field)
    };
}

/// Adds to a counter field of the static registry; a single relaxed
/// `fetch_add`, compiled out entirely under `obs-off`.
///
/// ```
/// # use valmod_obs as obs;
/// valmod_obs::count!(pool_submits, 3);
/// ```
#[macro_export]
macro_rules! count {
    ($field:ident, $n:expr) => {
        $crate::metrics().$field.add($n)
    };
}
