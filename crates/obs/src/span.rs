//! Span tracing into a bounded in-memory ring.
//!
//! A [`span`] guard stamps a wall-clock start on creation and records
//! `(name, layer, thread, start, duration)` into a fixed-capacity ring
//! on drop. Spans wrap *phase-level* work — a stage-1 walk, a streaming
//! append, a checkpoint — never per-cell loops, so the two `Instant`
//! reads per span are noise next to the work they bracket. The ring
//! overwrites its oldest entries: a long-lived stream session always
//! holds the most recent window of activity, ready for
//! [`crate::render_chrome_trace`].
//!
//! The ring is a `Mutex<Vec<_>>`, not a lock-free structure, and that
//! is deliberate: spans fire at phase rate (thousands per second at the
//! very worst), where an uncontended mutex costs about as much as the
//! atomics a lock-free ring would need — without the torn-read
//! subtleties. The *counters* are the hot-path story; see
//! [`crate::metric`].

#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry::Layer;

/// Spans retained before the ring starts overwriting its oldest.
pub const SPAN_CAPACITY: usize = 8192;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static span name (e.g. `"stage1"`, `"checkpoint"`).
    pub name: &'static str,
    /// Owning subsystem (the Chrome trace `cat`).
    pub layer: Layer,
    /// Stable per-thread id (dense, assigned on first span).
    pub tid: u32,
    /// Start, in nanoseconds since the process's first observation.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// The bounded ring: a write cursor over a capacity-bound vector.
struct Ring {
    spans: Vec<Span>,
    /// Next write position; `spans.len() < SPAN_CAPACITY` means the ring
    /// has not wrapped yet.
    head: usize,
    /// Total spans ever recorded (so dropped-span counts are visible).
    recorded: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring { spans: Vec::new(), head: 0, recorded: 0 });

/// Monotonic anchor: all span timestamps are relative to the first
/// clock read, so Chrome trace timestamps start near zero.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process's first observation (monotonic).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Dense stable thread ids: the first thread to record a span is tid 0,
/// the next tid 1, and a thread keeps its id for the process lifetime —
/// the "pids/tids stable" property the Chrome trace tests assert.
#[cfg(not(feature = "obs-off"))]
fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Opens a span; the returned guard records it when dropped. Under
/// `obs-off` the guard is zero-sized and no clock is read.
#[must_use]
pub fn span(name: &'static str, layer: Layer) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        SpanGuard { name, layer, start_ns: now_ns(), start: Instant::now() }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (name, layer);
        SpanGuard {}
    }
}

/// Live span: records into the ring on drop.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    name: &'static str,
    #[cfg(not(feature = "obs-off"))]
    layer: Layer,
    #[cfg(not(feature = "obs-off"))]
    start_ns: u64,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        {
            let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let record = Span {
                name: self.name,
                layer: self.layer,
                tid: thread_id(),
                start_ns: self.start_ns,
                dur_ns,
            };
            let mut ring = RING.lock().expect("span ring poisoned");
            ring.recorded += 1;
            if ring.spans.len() < SPAN_CAPACITY {
                ring.spans.push(record);
            } else {
                let at = ring.head;
                ring.spans[at] = record;
            }
            ring.head = (ring.head + 1) % SPAN_CAPACITY;
        }
    }
}

/// A copy of the retained spans, oldest first. (Total spans ever
/// recorded may exceed `spans_snapshot().len()` by the overwritten
/// count; see [`spans_recorded`].)
#[must_use]
pub fn spans_snapshot() -> Vec<Span> {
    let ring = RING.lock().expect("span ring poisoned");
    if ring.spans.len() < SPAN_CAPACITY {
        ring.spans.clone()
    } else {
        // Wrapped: oldest is at `head`.
        let mut out = Vec::with_capacity(SPAN_CAPACITY);
        out.extend_from_slice(&ring.spans[ring.head..]);
        out.extend_from_slice(&ring.spans[..ring.head]);
        out
    }
}

/// Total spans ever recorded (including ones the ring overwrote).
#[must_use]
pub fn spans_recorded() -> u64 {
    RING.lock().expect("span ring poisoned").recorded
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn spans_record_name_layer_and_monotone_times() {
        let before = spans_recorded();
        {
            let _outer = span("outer-test-span", Layer::Stream);
            let _inner = span("inner-test-span", Layer::Persist);
        }
        assert_eq!(spans_recorded() - before, 2);
        let spans = spans_snapshot();
        let inner = spans.iter().rev().find(|s| s.name == "inner-test-span").unwrap();
        let outer = spans.iter().rev().find(|s| s.name == "outer-test-span").unwrap();
        assert_eq!(inner.layer, Layer::Persist);
        assert_eq!(outer.layer, Layer::Stream);
        // Guards drop inner-first, and the inner interval nests inside
        // the outer one.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1);
        assert_eq!(inner.tid, outer.tid, "same thread, same stable tid");
    }

    #[test]
    fn a_thread_keeps_its_tid() {
        let (a, b) = {
            let _s1 = span("tid-probe-1", Layer::Pool);
            drop(_s1);
            let _s2 = span("tid-probe-2", Layer::Pool);
            drop(_s2);
            let spans = spans_snapshot();
            let probe = |n| spans.iter().rev().find(|s| s.name == n).unwrap().tid;
            (probe("tid-probe-1"), probe("tid-probe-2"))
        };
        assert_eq!(a, b);
    }
}
