//! The static metric registry: every metric the suite exports, in one
//! const-initialized `static`.
//!
//! A fixed registry beats a dynamic one here on every axis that
//! matters: recording is a field access plus one relaxed atomic (no
//! hash lookup, no lock, no registration race), the full metric set is
//! visible in one place for the README reference table, and the
//! renderers iterate a const descriptor table instead of a concurrent
//! map. The cost — adding a metric means adding a field *and* a
//! descriptor — is paid at review time, where a new metric should be
//! visible anyway. [`Metrics::descriptors`] is checked against the
//! struct exhaustively in tests so the two can never drift.

use crate::metric::{Counter, Gauge, Histogram};

/// Which subsystem a metric (or span) belongs to — the `layer` column
/// of the README reference table and the `cat` field of Chrome trace
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// The stage-1 SIMD kernel (diagonal walks at ℓmin).
    Kernel,
    /// Stage 2: per-length dot advance, LB classification, MASS recompute.
    Stage2,
    /// The persistent worker pool (`valmod_mp::WorkerPool`).
    Pool,
    /// The streaming engine and its CLI session.
    Stream,
    /// Checkpoint/journal persistence.
    Persist,
    /// The multi-tenant serve daemon (connections, frames, tenants).
    Serve,
}

impl Layer {
    /// Lower-case name, as rendered in tables and trace categories.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Layer::Kernel => "kernel",
            Layer::Stage2 => "stage2",
            Layer::Pool => "pool",
            Layer::Stream => "stream",
            Layer::Persist => "persist",
            Layer::Serve => "serve",
        }
    }
}

/// Metric kind, driving the `# TYPE` line of the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count.
    Counter,
    /// Instantaneous (or high-watermark) value.
    Gauge,
    /// Log₂-bucketed distribution.
    Histogram,
}

/// Unit of a histogram's raw observations, driving how bucket bounds
/// and sums render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts (batch sizes); bounds render as integers.
    Count,
    /// Nanoseconds; bounds and sums render as seconds.
    Nanos,
}

/// One registry entry's metadata: everything a renderer or the README
/// table needs, minus the live value.
#[derive(Debug)]
pub struct Desc {
    /// Full exposition name (`valmod_*`, with the Prometheus `_total`
    /// suffix on counters).
    pub name: &'static str,
    /// Rendered label set (`{width="8",backend="packed"}`), or `""`.
    pub labels: &'static str,
    /// Metric kind.
    pub kind: Kind,
    /// Owning subsystem.
    pub layer: Layer,
    /// Histogram unit ([`Unit::Count`] for counters/gauges, unused).
    pub unit: Unit,
    /// One-line meaning, as shown in `# HELP` and the README table.
    pub help: &'static str,
    /// Accessor into the static registry.
    pub get: fn() -> MetricRef,
}

/// A borrowed live metric, matched by renderers.
#[derive(Debug, Clone, Copy)]
pub enum MetricRef {
    /// A counter's live handle.
    Counter(&'static Counter),
    /// A gauge's live handle.
    Gauge(&'static Gauge),
    /// A histogram's live handle.
    Histogram(&'static Histogram),
}

/// Every metric the suite exports. Fields group by layer; see each
/// descriptor in [`Metrics::descriptors`] for the exposition name and
/// meaning.
#[derive(Debug)]
#[allow(missing_docs)] // each field is documented by its descriptor entry
pub struct Metrics {
    // -- stage-1 kernel --
    pub stage1_cells: Counter,
    pub stage1_offers: Counter,
    pub stage1_prefilter_rejected: Counter,
    pub stage1_dispatch_w8_packed: Counter,
    pub stage1_dispatch_w4_packed: Counter,
    pub stage1_dispatch_w8_portable: Counter,
    pub stage1_dispatch_w4_portable: Counter,
    pub anytime_rounds: Counter,
    pub anytime_cells_retired: Counter,
    pub anytime_convergence_permille: Gauge,
    pub anytime_churn_permille: Gauge,
    // -- stage 2 --
    pub stage2_dot_advances: Counter,
    pub stage2_valid_rows: Counter,
    pub stage2_invalid_rows: Counter,
    pub stage2_recomputed_rows: Counter,
    pub stage2_lengths: Counter,
    pub stage2_stomp_fallback: Counter,
    // -- worker pool --
    pub pool_submits: Counter,
    pub pool_queue_depth: Gauge,
    pub pool_steals: Counter,
    pub pool_parks: Counter,
    pub pool_unparks: Counter,
    pub pool_lane_submits: Counter,
    pub pool_lane_rejections: Counter,
    pub pool_lanes: Gauge,
    // -- streaming --
    pub stream_appends: Counter,
    pub stream_append_seconds: Histogram,
    pub stream_delta_batch: Histogram,
    pub stream_ring_occupancy: Gauge,
    pub stream_read_retries: Counter,
    pub stream_max_backoff_ms: Gauge,
    pub stream_tree_updates: Counter,
    pub stream_view_tree_pops: Counter,
    pub stream_view_refreshes: Counter,
    // -- serve daemon --
    pub serve_connections: Counter,
    pub serve_frames: Counter,
    pub serve_tenants: Gauge,
    // -- persistence --
    pub ckpt_serialize_seconds: Histogram,
    pub ckpt_restore_seconds: Histogram,
    pub ckpt_fsync_seconds: Histogram,
    pub ckpt_published: Counter,
    pub journal_replayed: Counter,
}

impl Metrics {
    const fn new() -> Self {
        Self {
            stage1_cells: Counter::new(),
            stage1_offers: Counter::new(),
            stage1_prefilter_rejected: Counter::new(),
            stage1_dispatch_w8_packed: Counter::new(),
            stage1_dispatch_w4_packed: Counter::new(),
            stage1_dispatch_w8_portable: Counter::new(),
            stage1_dispatch_w4_portable: Counter::new(),
            anytime_rounds: Counter::new(),
            anytime_cells_retired: Counter::new(),
            anytime_convergence_permille: Gauge::new(),
            anytime_churn_permille: Gauge::new(),
            stage2_dot_advances: Counter::new(),
            stage2_valid_rows: Counter::new(),
            stage2_invalid_rows: Counter::new(),
            stage2_recomputed_rows: Counter::new(),
            stage2_lengths: Counter::new(),
            stage2_stomp_fallback: Counter::new(),
            pool_submits: Counter::new(),
            pool_queue_depth: Gauge::new(),
            pool_steals: Counter::new(),
            pool_parks: Counter::new(),
            pool_unparks: Counter::new(),
            pool_lane_submits: Counter::new(),
            pool_lane_rejections: Counter::new(),
            pool_lanes: Gauge::new(),
            stream_appends: Counter::new(),
            stream_append_seconds: Histogram::new(),
            stream_delta_batch: Histogram::new(),
            stream_ring_occupancy: Gauge::new(),
            stream_read_retries: Counter::new(),
            stream_max_backoff_ms: Gauge::new(),
            stream_tree_updates: Counter::new(),
            stream_view_tree_pops: Counter::new(),
            stream_view_refreshes: Counter::new(),
            serve_connections: Counter::new(),
            serve_frames: Counter::new(),
            serve_tenants: Gauge::new(),
            ckpt_serialize_seconds: Histogram::new(),
            ckpt_restore_seconds: Histogram::new(),
            ckpt_fsync_seconds: Histogram::new(),
            ckpt_published: Counter::new(),
            journal_replayed: Counter::new(),
        }
    }

    /// The const descriptor table the renderers (and the README table)
    /// iterate, in a stable order: grouped by layer, hot layers first.
    #[must_use]
    pub fn descriptors() -> &'static [Desc] {
        DESCRIPTORS
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide registry. Always the same `static`: recording
/// through it is a field access plus one relaxed atomic.
#[must_use]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

macro_rules! desc {
    ($name:literal, $labels:literal, $kind:ident, $layer:ident, $unit:ident, $field:ident,
     $help:literal) => {
        Desc {
            name: $name,
            labels: $labels,
            kind: Kind::$kind,
            layer: Layer::$layer,
            unit: Unit::$unit,
            help: $help,
            get: || metric_ref(&METRICS.$field),
        }
    };
}

/// Overload-by-trait so the `desc!` macro can hand any field to
/// [`MetricRef`] without per-kind arms.
trait IntoRef {
    fn metric_ref(&'static self) -> MetricRef;
}

impl IntoRef for Counter {
    fn metric_ref(&'static self) -> MetricRef {
        MetricRef::Counter(self)
    }
}

impl IntoRef for Gauge {
    fn metric_ref(&'static self) -> MetricRef {
        MetricRef::Gauge(self)
    }
}

impl IntoRef for Histogram {
    fn metric_ref(&'static self) -> MetricRef {
        MetricRef::Histogram(self)
    }
}

fn metric_ref<T: IntoRef>(field: &'static T) -> MetricRef {
    field.metric_ref()
}

static DESCRIPTORS: &[Desc] = &[
    desc!(
        "valmod_stage1_cells_total",
        "",
        Counter,
        Kernel,
        Count,
        stage1_cells,
        "Recurrence cells walked by the stage-1 kernel (diagonal length sum)"
    ),
    desc!(
        "valmod_stage1_offers_total",
        "",
        Counter,
        Kernel,
        Count,
        stage1_offers,
        "Rows offered to the top-rho selector after surviving the prefilter"
    ),
    desc!(
        "valmod_stage1_prefilter_rejected_total",
        "",
        Counter,
        Kernel,
        Count,
        stage1_prefilter_rejected,
        "Rows rejected by the correlation prefilter before selector insertion"
    ),
    desc!(
        "valmod_stage1_dispatch_total",
        "{width=\"8\",backend=\"packed\"}",
        Counter,
        Kernel,
        Count,
        stage1_dispatch_w8_packed,
        "Stage-1 walks dispatched to the packed 8-lane (AVX-512) kernel"
    ),
    desc!(
        "valmod_stage1_dispatch_total",
        "{width=\"4\",backend=\"packed\"}",
        Counter,
        Kernel,
        Count,
        stage1_dispatch_w4_packed,
        "Stage-1 walks dispatched to the packed 4-lane (AVX2+FMA) kernel"
    ),
    desc!(
        "valmod_stage1_dispatch_total",
        "{width=\"8\",backend=\"portable\"}",
        Counter,
        Kernel,
        Count,
        stage1_dispatch_w8_portable,
        "Stage-1 walks dispatched to the portable 8-lane kernel"
    ),
    desc!(
        "valmod_stage1_dispatch_total",
        "{width=\"4\",backend=\"portable\"}",
        Counter,
        Kernel,
        Count,
        stage1_dispatch_w4_portable,
        "Stage-1 walks dispatched to the portable 4-lane kernel"
    ),
    desc!(
        "valmod_anytime_rounds_total",
        "",
        Counter,
        Kernel,
        Count,
        anytime_rounds,
        "Anytime stage-1 rounds completed (one VALMAP preview per round)"
    ),
    desc!(
        "valmod_anytime_cells_retired_total",
        "",
        Counter,
        Kernel,
        Count,
        anytime_cells_retired,
        "QT cells retired by anytime stage-1 rounds"
    ),
    desc!(
        "valmod_anytime_convergence_permille",
        "",
        Gauge,
        Kernel,
        Count,
        anytime_convergence_permille,
        "Fraction of stage-1 cells retired by the current anytime run, in permille"
    ),
    desc!(
        "valmod_anytime_churn_permille",
        "",
        Gauge,
        Kernel,
        Count,
        anytime_churn_permille,
        "VALMAP entry churn of the latest anytime preview round, in permille"
    ),
    desc!(
        "valmod_stage2_dot_advances_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_dot_advances,
        "Per-row dot-product recurrence advances across all lengths"
    ),
    desc!(
        "valmod_stage2_valid_rows_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_valid_rows,
        "Rows the lower bound resolved without recomputation (the paper's pruning win)"
    ),
    desc!(
        "valmod_stage2_invalid_rows_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_invalid_rows,
        "Rows the lower bound could not certify at the current length"
    ),
    desc!(
        "valmod_stage2_recomputed_rows_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_recomputed_rows,
        "Rows recomputed exactly with MASS after the lower bound failed"
    ),
    desc!(
        "valmod_stage2_lengths_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_lengths,
        "Subsequence lengths processed by stage 2"
    ),
    desc!(
        "valmod_stage2_stomp_fallback_total",
        "",
        Counter,
        Stage2,
        Count,
        stage2_stomp_fallback,
        "Lengths that fell back to a full STOMP pass (flat-window degeneracy)"
    ),
    desc!(
        "valmod_pool_submits_total",
        "",
        Counter,
        Pool,
        Count,
        pool_submits,
        "Jobs pushed to the worker pool (blocking runs and pipelined batches)"
    ),
    desc!(
        "valmod_pool_queue_depth",
        "",
        Gauge,
        Pool,
        Count,
        pool_queue_depth,
        "Jobs currently queued and not yet claimed by a worker"
    ),
    desc!(
        "valmod_pool_steals_total",
        "",
        Counter,
        Pool,
        Count,
        pool_steals,
        "Jobs executed by a helping submitter instead of a pool worker"
    ),
    desc!(
        "valmod_pool_parks_total",
        "",
        Counter,
        Pool,
        Count,
        pool_parks,
        "Worker transitions into a parked (condvar wait) state"
    ),
    desc!(
        "valmod_pool_unparks_total",
        "",
        Counter,
        Pool,
        Count,
        pool_unparks,
        "Worker wakeups out of the parked state"
    ),
    desc!(
        "valmod_pool_lane_submits_total",
        "",
        Counter,
        Pool,
        Count,
        pool_lane_submits,
        "Jobs routed into a registered fair-scheduling lane"
    ),
    desc!(
        "valmod_pool_lane_rejections_total",
        "",
        Counter,
        Pool,
        Count,
        pool_lane_rejections,
        "Lane admissions rejected by queue-depth backpressure"
    ),
    desc!(
        "valmod_pool_lanes",
        "",
        Gauge,
        Pool,
        Count,
        pool_lanes,
        "Fair-scheduling lanes currently registered on the pool"
    ),
    desc!(
        "valmod_stream_appends_total",
        "",
        Counter,
        Stream,
        Count,
        stream_appends,
        "Points appended to the streaming engine"
    ),
    desc!(
        "valmod_stream_append_seconds",
        "",
        Histogram,
        Stream,
        Nanos,
        stream_append_seconds,
        "Latency of one streaming append (all lengths advanced)"
    ),
    desc!(
        "valmod_stream_delta_batch_size",
        "",
        Histogram,
        Stream,
        Count,
        stream_delta_batch,
        "VALMAP delta entries returned per poll"
    ),
    desc!(
        "valmod_stream_ring_occupancy",
        "",
        Gauge,
        Stream,
        Count,
        stream_ring_occupancy,
        "Points currently held by the streaming ring buffer"
    ),
    desc!(
        "valmod_stream_read_retries_total",
        "",
        Counter,
        Stream,
        Count,
        stream_read_retries,
        "Transient stdin read errors retried by the stream CLI"
    ),
    desc!(
        "valmod_stream_max_backoff_ms",
        "",
        Gauge,
        Stream,
        Count,
        stream_max_backoff_ms,
        "Largest read-retry backoff the stream CLI ever slept, in milliseconds"
    ),
    desc!(
        "valmod_stream_tree_updates_total",
        "",
        Counter,
        Stream,
        Count,
        stream_tree_updates,
        "Tournament-tree leaf updates applied by profile changes under appends"
    ),
    desc!(
        "valmod_stream_view_tree_pops_total",
        "",
        Counter,
        Stream,
        Count,
        stream_view_tree_pops,
        "Candidate entries popped best-first from the tournament trees during a live-view refresh"
    ),
    desc!(
        "valmod_stream_view_refreshes_total",
        "",
        Counter,
        Stream,
        Count,
        stream_view_refreshes,
        "Live-view refreshes served by the incremental tree-driven path"
    ),
    desc!(
        "valmod_ckpt_serialize_seconds",
        "",
        Histogram,
        Persist,
        Nanos,
        ckpt_serialize_seconds,
        "Time to serialize and write one checkpoint image"
    ),
    desc!(
        "valmod_ckpt_restore_seconds",
        "",
        Histogram,
        Persist,
        Nanos,
        ckpt_restore_seconds,
        "Time to restore an engine from a checkpoint image"
    ),
    desc!(
        "valmod_ckpt_fsync_seconds",
        "",
        Histogram,
        Persist,
        Nanos,
        ckpt_fsync_seconds,
        "Time in fsync (checkpoint images, journals, and directory entries)"
    ),
    desc!(
        "valmod_ckpt_published_total",
        "",
        Counter,
        Persist,
        Count,
        ckpt_published,
        "Checkpoint generations atomically published"
    ),
    desc!(
        "valmod_journal_replayed_total",
        "",
        Counter,
        Persist,
        Count,
        journal_replayed,
        "Journal samples replayed during crash recovery"
    ),
    desc!(
        "valmod_serve_connections_total",
        "",
        Counter,
        Serve,
        Count,
        serve_connections,
        "Client connections accepted by the serve daemon"
    ),
    desc!(
        "valmod_serve_frames_total",
        "",
        Counter,
        Serve,
        Count,
        serve_frames,
        "Protocol frames processed by the serve daemon"
    ),
    desc!(
        "valmod_serve_tenants",
        "",
        Gauge,
        Serve,
        Count,
        serve_tenants,
        "Tenant sessions currently open in the serve daemon"
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_names_are_unique_per_label_set() {
        let mut seen = std::collections::HashSet::new();
        for d in Metrics::descriptors() {
            assert!(seen.insert((d.name, d.labels)), "duplicate descriptor {}{}", d.name, d.labels);
        }
    }

    #[test]
    fn descriptors_resolve_to_matching_kinds() {
        for d in Metrics::descriptors() {
            let matches = matches!(
                (d.kind, (d.get)()),
                (Kind::Counter, MetricRef::Counter(_))
                    | (Kind::Gauge, MetricRef::Gauge(_))
                    | (Kind::Histogram, MetricRef::Histogram(_))
            );
            assert!(matches, "descriptor {} kind/accessor mismatch", d.name);
        }
    }

    #[test]
    fn counters_follow_prometheus_naming() {
        for d in Metrics::descriptors() {
            assert!(d.name.starts_with("valmod_"), "{} lacks the suite prefix", d.name);
            if d.kind == Kind::Counter {
                assert!(d.name.ends_with("_total"), "counter {} lacks _total", d.name);
            }
        }
    }

    #[test]
    fn every_layer_is_instrumented() {
        for layer in
            [Layer::Kernel, Layer::Stage2, Layer::Pool, Layer::Stream, Layer::Persist, Layer::Serve]
        {
            assert!(
                Metrics::descriptors().iter().any(|d| d.layer == layer),
                "layer {} has no metrics",
                layer.name()
            );
        }
    }
}
