//! Read-side renderers over the registry and the span ring.
//!
//! Three consumers, three formats, one source of truth:
//!
//! * [`render_prometheus`] — the text exposition format, for `--metrics`
//!   dumps and anything that scrapes;
//! * [`render_chrome_trace`] — Chrome `trace-event` JSON (the
//!   `traceEvents` array form), for `--trace-out` files opened in
//!   `chrome://tracing` or Perfetto;
//! * [`metrics_line`] — a single-line NDJSON `metrics` event, emitted
//!   periodically on the `valmod stream` delta channel next to
//!   `update`/`checkpoint`/`summary` lines.
//!
//! All JSON here is hand-rolled like the rest of the suite (the
//! vendored-only constraint): the grammar emitted is tiny, and the
//! tests round-trip it through a real parser.

use crate::metric::{Histogram, BUCKETS};
use crate::registry::{Kind, MetricRef, Metrics, Unit};
use crate::span::spans_snapshot;
use crate::tenant::{escape_label, tenants_snapshot, TENANT_DESCS};

/// Renders one histogram bucket bound: `2^i` raw units, as seconds for
/// nanosecond histograms (shortest round-trip float) or as an integer
/// for count histograms. The final bucket is `+Inf` either way.
fn bucket_bound(i: usize, unit: Unit) -> String {
    if i == BUCKETS - 1 {
        return "+Inf".into();
    }
    let raw = 1u64 << i;
    match unit {
        Unit::Count => raw.to_string(),
        Unit::Nanos => format!("{}", raw as f64 / 1e9),
    }
}

fn hist_sum(h: &Histogram, unit: Unit) -> String {
    match unit {
        Unit::Count => h.sum().to_string(),
        Unit::Nanos => format!("{}", h.sum() as f64 / 1e9),
    }
}

/// The Prometheus-style text exposition of every registry metric:
/// `# HELP` / `# TYPE` metadata followed by sample lines, histograms in
/// the cumulative `_bucket{le=...}` / `_sum` / `_count` form. Buckets
/// render up to the highest occupied one (plus `+Inf`), keeping dumps
/// short for idle subsystems.
#[must_use]
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(4096);
    let mut last_name = "";
    for d in Metrics::descriptors() {
        // Labeled variants share one metric family: emit HELP/TYPE once.
        if d.name != last_name {
            let type_name = match d.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", d.name, d.help));
            out.push_str(&format!("# TYPE {} {}\n", d.name, type_name));
            last_name = d.name;
        }
        match (d.get)() {
            MetricRef::Counter(c) => {
                out.push_str(&format!("{}{} {}\n", d.name, d.labels, c.get()));
            }
            MetricRef::Gauge(g) => {
                out.push_str(&format!("{}{} {}\n", d.name, d.labels, g.get()));
            }
            MetricRef::Histogram(h) => {
                let buckets = h.buckets();
                let top = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
                let mut cumulative = 0u64;
                for (i, &count) in buckets.iter().enumerate().take(top) {
                    cumulative += count;
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {}\n",
                        d.name,
                        bucket_bound(i, d.unit),
                        cumulative
                    ));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", d.name, h.count()));
                out.push_str(&format!("{}_sum {}\n", d.name, hist_sum(h, d.unit)));
                out.push_str(&format!("{}_count {}\n", d.name, h.count()));
            }
        }
    }
    // The per-tenant dimension: one sample per registered tenant under a
    // `tenant="..."` label, HELP/TYPE once per family — the same family
    // grouping discipline as the labeled static descriptors above.
    let tenants = tenants_snapshot();
    if !tenants.is_empty() {
        for d in TENANT_DESCS {
            let type_name = match d.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", d.name, d.help));
            out.push_str(&format!("# TYPE {} {}\n", d.name, type_name));
            for (name, m) in &tenants {
                out.push_str(&format!(
                    "{}{{tenant=\"{}\"}} {}\n",
                    d.name,
                    escape_label(name),
                    (d.get)(m)
                ));
            }
        }
    }
    out
}

/// JSON-escapes a span/category name (the names are static identifiers,
/// but the escape keeps the emitted grammar honest).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The retained spans as a Chrome `trace-event` JSON document: one
/// complete (`"ph":"X"`) event per span, timestamps in microseconds,
/// `pid` fixed at 1 and `tid` the span's stable per-thread id. Load the
/// output of `--trace-out` directly in `chrome://tracing` or Perfetto.
#[must_use]
pub fn render_chrome_trace() -> String {
    let spans = spans_snapshot();
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            json_str(s.name),
            json_str(s.layer.name()),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.tid
        ));
    }
    // The tenant dimension: one Chrome counter (`"ph":"C"`) event per
    // tenant at export time, carrying the full per-tenant metric set in
    // `args` — Perfetto renders these as named counter tracks.
    let export_ts = crate::span::now_ns() as f64 / 1e3;
    for (name, m) in tenants_snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        let mut args = String::new();
        for (i, d) in TENANT_DESCS.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&format!("{}:{}", json_str(tenant_field_key(d.name)), (d.get)(&m)));
        }
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"serve\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{{}}}}}",
            json_str(&format!("tenant:{name}")),
            export_ts,
            args
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The periodic NDJSON `metrics` event for the streaming delta channel:
/// `{"event":"metrics","points":N,...}` with one flat key per registry
/// metric (descriptor order, so the schema is stable). Counters and
/// gauges emit their value under the registry field name; histograms
/// emit `<name>_count` and `<name>_sum` (sums in seconds for latency
/// histograms). `points` is the stream position the event was observed
/// at.
#[must_use]
pub fn metrics_line(points: usize) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!("{{\"event\":\"metrics\",\"points\":{points}"));
    for d in Metrics::descriptors() {
        let key = field_key(d.name, d.labels);
        match (d.get)() {
            MetricRef::Counter(c) => out.push_str(&format!(",\"{key}\":{}", c.get())),
            MetricRef::Gauge(g) => out.push_str(&format!(",\"{key}\":{}", g.get())),
            MetricRef::Histogram(h) => {
                out.push_str(&format!(",\"{key}_count\":{}", h.count()));
                out.push_str(&format!(",\"{key}_sum\":{}", hist_sum(h, d.unit)));
            }
        }
    }
    out.push('}');
    out
}

/// NDJSON field key of a per-tenant family: the exposition name minus
/// the `valmod_tenant_` prefix and the counter `_total` suffix.
fn tenant_field_key(name: &str) -> &str {
    name.strip_prefix("valmod_tenant_").unwrap_or(name).trim_end_matches("_total")
}

/// The per-tenant NDJSON `tenant_metrics` events, one single-line JSON
/// document per registered tenant — the tenant-labeled counterpart of
/// [`metrics_line`], emitted on the serve daemon's delta channels. The
/// static line's schema is untouched: tenants are a separate event so
/// existing `metrics` consumers never see a schema change.
#[must_use]
pub fn tenant_metrics_lines(points: usize) -> Vec<String> {
    tenants_snapshot()
        .into_iter()
        .map(|(name, m)| {
            let mut out = String::with_capacity(256);
            out.push_str(&format!(
                "{{\"event\":\"tenant_metrics\",\"tenant\":\"{}\",\"points\":{points}",
                escape_label(&name)
            ));
            for d in TENANT_DESCS {
                out.push_str(&format!(",\"{}\":{}", tenant_field_key(d.name), (d.get)(&m)));
            }
            out.push('}');
            out
        })
        .collect()
}

/// NDJSON key for a descriptor: the exposition name minus the
/// `valmod_` prefix, with label values folded in (`stage1_dispatch_
/// total{width="8",backend="packed"}` → `stage1_dispatch_w8_packed`).
fn field_key(name: &str, labels: &str) -> String {
    let base = name.strip_prefix("valmod_").unwrap_or(name).trim_end_matches("_total");
    if labels.is_empty() {
        return base.to_string();
    }
    let mut key = base.to_string();
    // `{width="8",backend="packed"}` → suffixes `_w8`, `_packed`.
    for pair in labels.trim_matches(|c| c == '{' || c == '}').split(',') {
        if let Some((k, v)) = pair.split_once('=') {
            let v = v.trim_matches('"');
            if k == "width" {
                key.push_str(&format!("_w{v}"));
            } else {
                key.push_str(&format!("_{v}"));
            }
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{metrics, Layer};
    use crate::span::span;

    #[test]
    fn prometheus_dump_covers_every_family_once() {
        metrics().stage1_cells.add(10);
        metrics().stream_append_seconds.observe(1_500);
        let dump = render_prometheus();
        assert_eq!(dump.matches("# TYPE valmod_stage1_cells_total counter").count(), 1);
        assert_eq!(dump.matches("# TYPE valmod_stage1_dispatch_total counter").count(), 1);
        assert_eq!(dump.matches("# TYPE valmod_stream_append_seconds histogram").count(), 1);
        assert!(dump.contains("valmod_stage1_dispatch_total{width=\"8\",backend=\"packed\"}"));
        assert!(dump.contains("valmod_stream_append_seconds_bucket{le=\"+Inf\"}"));
        assert!(dump.contains("valmod_stream_append_seconds_count"));
        assert!(dump.contains("valmod_stream_append_seconds_sum"));
        for line in dump.lines() {
            assert!(!line.is_empty(), "no blank lines in the exposition");
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_buckets_render_cumulatively() {
        // A histogram not shared with other tests in this binary.
        let h = &metrics().ckpt_restore_seconds;
        let (c0, s0) = (h.count(), h.sum());
        h.observe(1); // bucket le=2ns
        h.observe(3); // bucket le=4ns
        h.observe(3);
        let dump = render_prometheus();
        let section: Vec<&str> =
            dump.lines().filter(|l| l.starts_with("valmod_ckpt_restore_seconds_bucket")).collect();
        // Cumulative: each bucket's value never decreases.
        let values: Vec<u64> =
            section.iter().map(|l| l.rsplit(' ').next().unwrap().parse().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        assert_eq!(*values.last().unwrap(), c0 + 3);
        assert!(
            dump.contains(&format!("valmod_ckpt_restore_seconds_sum {}", (s0 + 7) as f64 / 1e9))
        );
    }

    #[test]
    fn chrome_trace_is_json_with_complete_events() {
        {
            let _s = span("render-test-span", Layer::Kernel);
        }
        let doc = render_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));
        #[cfg(not(feature = "obs-off"))]
        {
            assert!(doc.contains("\"name\":\"render-test-span\""));
            assert!(doc.contains("\"cat\":\"kernel\""));
            assert!(doc.contains("\"ph\":\"X\""));
            assert!(doc.contains("\"pid\":1"));
        }
    }

    #[test]
    fn metrics_line_is_single_line_with_stable_keys() {
        let line = metrics_line(512);
        assert!(line.starts_with("{\"event\":\"metrics\",\"points\":512,"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
        for key in [
            "\"stage1_cells\":",
            "\"stage1_dispatch_w8_packed\":",
            "\"stage2_valid_rows\":",
            "\"pool_queue_depth\":",
            "\"stream_append_seconds_count\":",
            "\"stream_append_seconds_sum\":",
            "\"ckpt_published\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn metrics_line_schema_is_golden() {
        // The full key sequence of the NDJSON `metrics` event, in
        // descriptor order. A diff here is a wire-format change for
        // every consumer of the delta channel: update the README table
        // and this list together, never by accident.
        const GOLDEN: &[&str] = &[
            "event",
            "points",
            "stage1_cells",
            "stage1_offers",
            "stage1_prefilter_rejected",
            "stage1_dispatch_w8_packed",
            "stage1_dispatch_w4_packed",
            "stage1_dispatch_w8_portable",
            "stage1_dispatch_w4_portable",
            "anytime_rounds",
            "anytime_cells_retired",
            "anytime_convergence_permille",
            "anytime_churn_permille",
            "stage2_dot_advances",
            "stage2_valid_rows",
            "stage2_invalid_rows",
            "stage2_recomputed_rows",
            "stage2_lengths",
            "stage2_stomp_fallback",
            "pool_submits",
            "pool_queue_depth",
            "pool_steals",
            "pool_parks",
            "pool_unparks",
            "pool_lane_submits",
            "pool_lane_rejections",
            "pool_lanes",
            "stream_appends",
            "stream_append_seconds_count",
            "stream_append_seconds_sum",
            "stream_delta_batch_size_count",
            "stream_delta_batch_size_sum",
            "stream_ring_occupancy",
            "stream_read_retries",
            "stream_max_backoff_ms",
            "stream_tree_updates",
            "stream_view_tree_pops",
            "stream_view_refreshes",
            "ckpt_serialize_seconds_count",
            "ckpt_serialize_seconds_sum",
            "ckpt_restore_seconds_count",
            "ckpt_restore_seconds_sum",
            "ckpt_fsync_seconds_count",
            "ckpt_fsync_seconds_sum",
            "ckpt_published",
            "journal_replayed",
            "serve_connections",
            "serve_frames",
            "serve_tenants",
        ];
        let line = metrics_line(7);
        // Values are bare JSON numbers, so commas only separate members.
        let inner = line.strip_prefix('{').unwrap().strip_suffix('}').unwrap();
        let keys: Vec<&str> = inner
            .split(',')
            .map(|member| {
                let (key, value) = member.split_once(':').expect("key:value member");
                assert!(key.starts_with('"') && key.ends_with('"'), "unquoted key {key}");
                assert!(!value.is_empty());
                key.trim_matches('"')
            })
            .collect();
        assert_eq!(keys, GOLDEN);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn renderers_carry_the_tenant_dimension() {
        use crate::tenant::{reset_tenants, tenant, test_guard};
        let _g = test_guard();
        reset_tenants();
        let t = tenant("render-tenant-a");
        t.appends.add(41);
        t.mem_bytes.set(1024);
        let _ = tenant("render \"quoted\" tenant");

        let dump = render_prometheus();
        assert_eq!(dump.matches("# TYPE valmod_tenant_appends_total counter").count(), 1);
        assert_eq!(dump.matches("# TYPE valmod_tenant_mem_bytes gauge").count(), 1);
        assert!(dump.contains("valmod_tenant_appends_total{tenant=\"render-tenant-a\"} 41"));
        assert!(dump.contains("valmod_tenant_mem_bytes{tenant=\"render-tenant-a\"} 1024"));
        assert!(dump.contains("{tenant=\"render \\\"quoted\\\" tenant\"}"));

        let doc = render_chrome_trace();
        assert!(doc.contains("\"name\":\"tenant:render-tenant-a\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"appends\":41"));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));

        let lines = tenant_metrics_lines(99);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(
            "{\"event\":\"tenant_metrics\",\"tenant\":\"render-tenant-a\",\"points\":99"
        ));
        assert!(lines[0].contains("\"appends\":41"));
        assert!(lines[0].contains("\"mem_bytes\":1024"));
        assert!(lines[0].ends_with('}') && !lines[0].contains('\n'));

        // The static NDJSON line stays tenant-free: separate event type.
        assert!(!metrics_line(1).contains("render-tenant-a"));
        reset_tenants();
    }

    #[test]
    fn field_keys_fold_labels() {
        assert_eq!(field_key("valmod_stage1_cells_total", ""), "stage1_cells");
        assert_eq!(
            field_key("valmod_stage1_dispatch_total", "{width=\"4\",backend=\"portable\"}"),
            "stage1_dispatch_w4_portable"
        );
        assert_eq!(field_key("valmod_pool_queue_depth", ""), "pool_queue_depth");
    }
}
