//! Lock-free metric primitives: counters, gauges, histograms, timers.
//!
//! Everything here is const-constructible (so the whole registry is a
//! plain `static` with no lazy initialization) and records through
//! single relaxed atomic operations — the only ordering a monotone
//! counter or a monitoring gauge needs. Readers (`get`, the renderers)
//! also load relaxed: a metrics dump is a statistical snapshot, not a
//! synchronization point.
//!
//! Under the `obs-off` feature every recording method compiles to an
//! empty body and [`Timer`] loses its `Instant` field, so instrumented
//! call sites vanish from the optimized build entirely.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Log₂ histogram bucket count. Bucket `i` holds observations with
/// raw value `< 2^i` (and `≥ 2^(i-1)` for `i > 0`); the last bucket
/// additionally absorbs everything larger, rendering as `+Inf`. With 40
/// buckets a nanosecond-unit histogram spans 1 ns to ~9 minutes.
pub const BUCKETS: usize = 40;

/// A monotone event counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const, so the registry is a plain `static`).
    #[must_use]
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Adds `n` events: one relaxed `fetch_add`. Hot layers accumulate
    /// locally and call this once per batch (see the kernel's deferred
    /// flush), so even "per-cell" metrics cost one atomic per *walk*.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current count.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// An instantaneous signed value (queue depth, ring occupancy), plus a
/// watermark mode ([`Gauge::record_max`]) for high-water readings.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self { value: AtomicI64::new(0) }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Adds `delta` (negative to decrement).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = delta;
    }

    /// Raises the gauge to `v` if `v` exceeds the current value — the
    /// high-watermark mode (e.g. the largest backoff a stream session
    /// ever slept).
    #[inline]
    pub fn record_max(&self, v: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_max(v, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A log₂-bucketed histogram over non-negative integer observations
/// (nanoseconds for latency histograms, plain counts otherwise).
///
/// Power-of-two buckets trade resolution for a branch-free `observe`:
/// the bucket index is one `leading_zeros`, and the whole structure is
/// a fixed array of relaxed atomics — no locks, no allocation, mergable
/// by addition. Exactly the shape HdrHistogram-style recorders use for
/// their coarse first level.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value`: the smallest `i` with
    /// `value < 2^i`, clamped to the last (overflow) bucket.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one observation: three relaxed atomic adds.
    #[inline]
    pub fn observe(&self, value: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = value;
    }

    /// Observations recorded.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed raw values.
    #[inline]
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, `buckets()[i]` = observations
    /// with value in `[2^(i-1), 2^i)`.
    #[must_use]
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Times a scope into a histogram (nanosecond observations) on drop.
/// Under `obs-off` this is a zero-sized type and `start` never reads
/// the clock.
#[derive(Debug)]
pub struct Timer {
    #[cfg(not(feature = "obs-off"))]
    hist: &'static Histogram,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl Timer {
    /// Starts timing into `hist` (a `'static` registry field).
    #[inline]
    #[must_use]
    pub fn start(hist: &'static Histogram) -> Self {
        #[cfg(not(feature = "obs-off"))]
        {
            Self { hist, start: Instant::now() }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = hist;
            Self {}
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.observe(ns);
        }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_record() {
        let c = Counter::new();
        c.add(3);
        c.add(0);
        c.add(39);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-9);
        assert_eq!(g.get(), -2);
        g.record_max(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index((1 << 39) - 1), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[10], 1); // 1000 < 1024
        assert_eq!(b[BUCKETS - 1], 1); // u64::MAX overflows into +Inf
        assert_eq!(b.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn concurrent_adds_never_lose_events() {
        static C: Counter = Counter::new();
        static H: Histogram = Histogram::new();
        let before = (C.get(), H.count());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        C.add(1);
                        H.observe(i);
                    }
                });
            }
        });
        assert_eq!(C.get() - before.0, 40_000);
        assert_eq!(H.count() - before.1, 40_000);
    }
}
