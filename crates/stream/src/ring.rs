//! Eviction-free point storage for long-running streaming processes.
//!
//! Exactness is the whole contract of [`crate::StreamingValmod`]: its
//! snapshot must equal a batch run over the *entire* concatenated series,
//! so the storage may never drop a point — a classic wrap-around ring
//! would silently violate the contract the moment it overwrote history.
//! [`RingBuffer`] therefore keeps the ring discipline a long-running
//! service wants (a capacity fixed up front, one allocation for the life
//! of the process, no reallocation/copy spikes while serving traffic,
//! explicit back-pressure when full) but is *eviction-free*: an append
//! past capacity is an error, never a silent overwrite.
//!
//! For exploratory use an unbounded mode grows by amortized doubling
//! instead; production deployments should size the buffer explicitly.

use valmod_series::{Result, SeriesError};

/// Append-only, optionally capacity-bounded storage of the raw series.
///
/// The points are kept contiguous (the incremental dot-product
/// recurrences and the batch snapshot both want plain slices), in
/// original units — the streaming engine centers its *working* copy
/// separately so the snapshot sees the exact bytes that were appended.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    data: Vec<f64>,
    capacity: Option<usize>,
}

impl RingBuffer {
    /// An unbounded buffer seeded with `initial` (grows by doubling).
    #[must_use]
    pub fn unbounded(initial: &[f64]) -> Self {
        Self { data: initial.to_vec(), capacity: None }
    }

    /// A bounded buffer seeded with `initial`: allocates exactly
    /// `capacity` points up front and never reallocates afterwards.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CapacityExceeded`] when `initial` alone exceeds
    /// `capacity`.
    pub fn bounded(initial: &[f64], capacity: usize) -> Result<Self> {
        if initial.len() > capacity {
            return Err(SeriesError::CapacityExceeded { capacity });
        }
        let mut data = Vec::with_capacity(capacity);
        data.extend_from_slice(initial);
        Ok(Self { data, capacity: Some(capacity) })
    }

    /// Appends one point.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CapacityExceeded`] when the buffer is bounded and
    /// full; the buffer is left untouched.
    pub fn try_push(&mut self, value: f64) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.data.len() == cap {
                return Err(SeriesError::CapacityExceeded { capacity: cap });
            }
        }
        self.data.push(value);
        Ok(())
    }

    /// Appends a batch of points atomically: either all fit or none are
    /// stored.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CapacityExceeded`] when the batch would not fit in
    /// a bounded buffer; the buffer is left untouched.
    pub fn try_extend(&mut self, points: &[f64]) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.data.len() + points.len() > cap {
                return Err(SeriesError::CapacityExceeded { capacity: cap });
            }
        }
        self.data.extend_from_slice(points);
        Ok(())
    }

    /// The stored points, oldest first — the exact concatenated series.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The fixed capacity, or `None` for an unbounded buffer.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Points that can still be appended (`None` = unlimited).
    #[must_use]
    pub fn remaining(&self) -> Option<usize> {
        self.capacity.map(|c| c - self.data.len())
    }

    /// Whether a bounded buffer is full (an unbounded one never is).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.remaining() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::RingBuffer;
    use valmod_series::SeriesError;

    #[test]
    fn unbounded_grows_freely() {
        let mut b = RingBuffer::unbounded(&[1.0, 2.0]);
        for i in 0..1000 {
            b.try_push(i as f64).unwrap();
        }
        assert_eq!(b.len(), 1002);
        assert_eq!(b.capacity(), None);
        assert_eq!(b.remaining(), None);
        assert!(!b.is_full());
        assert_eq!(b.as_slice()[..2], [1.0, 2.0]);
    }

    #[test]
    fn bounded_never_reallocates_and_errors_when_full() {
        let mut b = RingBuffer::bounded(&[1.0, 2.0, 3.0], 5).unwrap();
        let base = b.as_slice().as_ptr();
        b.try_push(4.0).unwrap();
        b.try_push(5.0).unwrap();
        assert!(b.is_full());
        assert_eq!(b.remaining(), Some(0));
        // The allocation is stable for the life of the buffer.
        assert_eq!(b.as_slice().as_ptr(), base);
        match b.try_push(6.0) {
            Err(SeriesError::CapacityExceeded { capacity: 5 }) => {}
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        assert_eq!(b.as_slice(), [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn batch_extend_is_atomic() {
        let mut b = RingBuffer::bounded(&[0.0; 3], 6).unwrap();
        assert!(b.try_extend(&[1.0, 2.0, 3.0, 4.0]).is_err());
        assert_eq!(b.len(), 3, "failed extend must store nothing");
        b.try_extend(&[1.0, 2.0, 3.0]).unwrap();
        assert!(b.is_full());
    }

    #[test]
    fn oversized_seed_is_rejected() {
        assert!(RingBuffer::bounded(&[0.0; 10], 5).is_err());
        assert!(RingBuffer::bounded(&[0.0; 5], 5).unwrap().is_full());
    }
}
