#![warn(missing_docs)]

//! # `valmod-stream` — VALMOD under appends
//!
//! The batch engine ([`valmod_core::run_valmod`]) answers the paper's
//! question — exact top-k motifs for every length in `[ℓmin, ℓmax]` —
//! over a series that is already complete. A monitoring deployment is
//! never complete: points arrive continuously, and re-running the batch
//! job per append wastes O(n²·R) work on data that barely changed. This
//! crate maintains the same answers *incrementally*: pay O(n·R) once at
//! ingest, answer live queries without a batch re-run.
//!
//! | Symbol | Paper concept |
//! |--------|---------------|
//! | [`StreamingValmod`] | the VALMOD problem (top-k motif pairs per length in `[ℓmin, ℓmax]`), maintained under appends |
//! | [`StreamingValmod::valmap`] | VALMAP `⟨MPn, IP, LP⟩`, the variable-length matrix profile meta-structure |
//! | [`StreamingValmod::motifs`] | per-length top-k motif pairs (the `VALMP` output), batch tie-break orders |
//! | [`StreamingValmod::discords`] | per-length top-k discords (the journal extension's anomaly search) |
//! | [`ValmapDelta`] | one VALMAP entry update — the unit of the checkpoint log, streamed as NDJSON |
//! | [`StreamingValmod::snapshot`] | the batch algorithm's full output, bit-identical to `run_valmod` |
//! | [`RingBuffer`] | eviction-free storage: exactness forbids dropping history |
//! | [`CheckpointStore`] / [`StreamingValmod::checkpoint_to`] | crash-safe durability: checksummed checkpoints + sample journal, recovery bit-identical to the uninterrupted engine |
//!
//! The per-length profiles generalize the single-length STAMPI engine
//! ([`valmod_mp::StreamingProfile`]): one append advances every length's
//! dot products with the same O(1)-per-window recurrence, while the
//! product row and the running window statistics are computed **once and
//! shared across lengths** instead of `R` times — see
//! [`engine`](crate::engine)'s module docs for the exact accounting, and
//! for why the bit-identical guarantee lives on [`StreamingValmod::snapshot`]
//! rather than on the (exact-in-real-arithmetic) live views.
//!
//! # Complexity per operation
//!
//! | Operation | Cost |
//! |-----------|------|
//! | [`StreamingValmod::new`] (bootstrap) | O(n²·R) once |
//! | [`StreamingValmod::append`] | O(n·R) |
//! | [`StreamingValmod::extend`] of B points | O(B·n·R), FFT-amortized first columns |
//! | [`StreamingValmod::valmap`] / [`StreamingValmod::motifs`] / [`StreamingValmod::discords`] | O(n·R·log n) after an advance, cached between |
//! | [`StreamingValmod::poll_deltas`] | one view refresh + O(n) diff |
//! | [`StreamingValmod::snapshot`] | a full batch run (bit-identical by construction) |
//!
//! # Example
//!
//! ```
//! use valmod_core::ValmodConfig;
//! use valmod_series::gen;
//! use valmod_stream::StreamingValmod;
//!
//! let series = gen::ecg(600, &gen::EcgConfig::default(), 7);
//! let mut engine =
//!     StreamingValmod::new(&series[..300], ValmodConfig::new(24, 32).with_k(2)).unwrap();
//! // Points arrive one at a time or in batches; both stay exact.
//! for chunk in series[300..].chunks(37) {
//!     engine.extend(chunk);
//!     for delta in engine.poll_deltas() {
//!         // e.g. push to a dashboard: offset improved at some length
//!         assert!(delta.normalized_distance.is_finite());
//!     }
//! }
//! assert_eq!(engine.len(), 600);
//! ```

pub mod delta;
pub mod engine;
pub mod persist;
pub mod registry;
pub mod ring;
pub mod session;
pub(crate) mod tree;

pub use delta::{
    bootstrap_line, checkpoint_line, preview_line, recovered_line, summary_line, update_line,
    SummaryIo, ValmapDelta,
};
pub use engine::{LengthMotifs, StreamingValmod};
pub use persist::{escape_tenant, CheckpointScheduler, CheckpointStore, JournalWriter, Recovery};
pub use registry::{AppendReport, OpenReport, TenantError, TenantPolicy, TenantRegistry};
pub use ring::RingBuffer;
pub use session::{skip_warns, FeedOutcome, SessionCore};
