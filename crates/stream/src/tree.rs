//! Index-only tournament trees over per-length profile minima.
//!
//! The live views of [`crate::StreamingValmod`] need, per length, the
//! best few entries of the profile under two total orders: the motif
//! order (distance ascending, then canonical offsets, then entry index —
//! exactly the stable sort of [`valmod_mp::motif::top_k_pairs`]) and the
//! discord order (distance descending, then entry index). Re-sorting all
//! `m` entries on every refresh costs O(m log m) *per length* — the
//! O(n·R·log n) wall the delta channel used to pay after every single
//! append. A tournament (segment) tree over entry indices replaces that:
//!
//! * each append touches few entries (the new window plus the older
//!   windows it improved), and each touched entry updates its
//!   leaf-to-root path in O(log m) — charged to the append that caused
//!   it, inside the same parallel per-length job, so determinism is
//!   untouched;
//! * a refresh extracts the top-k *without mutating the tree* by
//!   best-first search over subtree winners: every pop costs O(log m),
//!   so top-k extraction is O((k + dups)·log m) instead of a full sort.
//!
//! The tree stores only `u32` entry indices (4 bytes per node); the
//! comparator reads distances and neighbor offsets from the live profile
//! arrays at comparison time, so the tree never holds a stale copy of a
//! key — an entry whose profile value improved is re-seated by one
//! [`TournamentTree::update`] call and everything above it stays
//! consistent.

/// Sentinel for "no entry" in a tree node (empty subtree).
const NONE: u32 = u32::MAX;

/// A power-of-two-capacity tournament tree whose node payloads are entry
/// indices and whose order is supplied per call (`better(x, y)` — does
/// entry `x` strictly beat entry `y`?). Ties cannot occur between live
/// entries: every comparator in this crate includes the entry index as
/// its final tie-break.
#[derive(Debug, Clone)]
pub(crate) struct TournamentTree {
    /// Leaf capacity; always a power of two.
    size: usize,
    /// Live entries (leaves `0..len` are populated).
    len: usize,
    /// `2*size` slots: `nodes[1]` is the root winner, leaves start at
    /// `size`. `NONE` marks an empty subtree.
    nodes: Vec<u32>,
}

#[inline]
fn combine(a: u32, b: u32, better: &impl Fn(u32, u32) -> bool) -> u32 {
    if a == NONE {
        b
    } else if b == NONE || !better(b, a) {
        a
    } else {
        b
    }
}

impl TournamentTree {
    /// Builds a tree over entries `0..len` in O(len).
    pub(crate) fn build(len: usize, better: &impl Fn(u32, u32) -> bool) -> Self {
        let size = len.next_power_of_two().max(1);
        let mut nodes = vec![NONE; 2 * size];
        for (i, slot) in nodes[size..size + len].iter_mut().enumerate() {
            *slot = i as u32;
        }
        for p in (1..size).rev() {
            nodes[p] = combine(nodes[2 * p], nodes[2 * p + 1], better);
        }
        Self { size, len, nodes }
    }

    /// Number of live entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Resident bytes of the node array (memory-budget accounting).
    pub(crate) fn mem_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<u32>()
    }

    /// Re-seats entry `i` after its key changed: recomputes the winners
    /// on its leaf-to-root path. O(log len).
    pub(crate) fn update(&mut self, i: usize, better: &impl Fn(u32, u32) -> bool) {
        debug_assert!(i < self.len);
        let mut p = (self.size + i) / 2;
        while p >= 1 {
            let w = combine(self.nodes[2 * p], self.nodes[2 * p + 1], better);
            // An unchanged winner that is NOT the re-keyed entry means the
            // subtree's result and its key are both unchanged, so every
            // ancestor is unchanged too. (If the winner IS entry `i`, its
            // key changed even though the index did not — keep climbing.)
            if self.nodes[p] == w && w != i as u32 {
                break;
            }
            self.nodes[p] = w;
            p /= 2;
        }
    }

    /// Appends the next entry (index `len`) as a new leaf. Amortized
    /// O(log len): the capacity doubles with an O(len) rebuild when full,
    /// matching the `Vec` growth of the profile arrays alongside it.
    pub(crate) fn push(&mut self, better: &impl Fn(u32, u32) -> bool) {
        if self.len == self.size {
            let grown = {
                let size = self.size * 2;
                let mut nodes = vec![NONE; 2 * size];
                for (i, slot) in nodes[size..size + self.len].iter_mut().enumerate() {
                    *slot = i as u32;
                }
                let mut tree = Self { size, len: self.len, nodes };
                for p in (1..size).rev() {
                    tree.nodes[p] = combine(tree.nodes[2 * p], tree.nodes[2 * p + 1], better);
                }
                tree
            };
            *self = grown;
        }
        let i = self.len;
        self.len += 1;
        self.nodes[self.size + i] = i as u32;
        self.update(i, better);
    }

    /// Opens a best-first enumeration over the tree's entries; the
    /// cursor borrows nothing, so the caller can hold it across reads of
    /// the profile arrays. The tree must not be mutated while a cursor
    /// is live (cursors are refresh-local).
    pub(crate) fn cursor(&self) -> TreeCursor {
        let mut frontier = Vec::with_capacity(16);
        if self.len > 0 && self.nodes[1] != NONE {
            frontier.push(1usize);
        }
        TreeCursor { frontier }
    }

    /// Pops the best not-yet-returned entry: scans the cursor's frontier
    /// of disjoint subtrees for the best winner, then splits that subtree
    /// along the winner's path — O(log len) new frontier nodes per pop,
    /// and the frontier scan is O(pops·log len), tiny for top-k use.
    pub(crate) fn pop_best(
        &self,
        cursor: &mut TreeCursor,
        better: &impl Fn(u32, u32) -> bool,
    ) -> Option<u32> {
        if cursor.frontier.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for fi in 1..cursor.frontier.len() {
            if better(self.nodes[cursor.frontier[fi]], self.nodes[cursor.frontier[best]]) {
                best = fi;
            }
        }
        let mut p = cursor.frontier.swap_remove(best);
        let w = self.nodes[p];
        debug_assert_ne!(w, NONE, "frontier never holds empty subtrees");
        // Descend toward the winner's leaf; every subtree on the other
        // side of the path still holds unreturned entries.
        while p < self.size {
            let (l, r) = (2 * p, 2 * p + 1);
            if self.nodes[l] == w {
                if self.nodes[r] != NONE {
                    cursor.frontier.push(r);
                }
                p = l;
            } else {
                if self.nodes[l] != NONE {
                    cursor.frontier.push(l);
                }
                p = r;
            }
        }
        Some(w)
    }
}

/// Enumeration state of one best-first walk: a frontier of disjoint
/// subtree roots covering exactly the not-yet-returned entries.
#[derive(Debug)]
pub(crate) struct TreeCursor {
    frontier: Vec<usize>,
}

impl TreeCursor {
    /// Current frontier width (test hook for the O(pops·log n) bound).
    #[cfg(test)]
    pub(crate) fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Orders entries by a key table, index as tie-break — the same
    /// shape as the profile-backed comparators.
    fn by_keys(keys: &[f64]) -> impl Fn(u32, u32) -> bool + '_ {
        move |x, y| {
            let (kx, ky) = (keys[x as usize], keys[y as usize]);
            match kx.partial_cmp(&ky).unwrap() {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => x < y,
            }
        }
    }

    fn pseudo_keys(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000) as f64 / 7.0
            })
            .collect()
    }

    #[test]
    fn enumeration_matches_a_full_sort() {
        for n in [1usize, 2, 5, 17, 64, 257] {
            let keys = pseudo_keys(n, n as u64);
            let better = by_keys(&keys);
            let tree = TournamentTree::build(n, &better);
            let mut cursor = tree.cursor();
            let mut got = Vec::new();
            while let Some(i) = tree.pop_best(&mut cursor, &better) {
                got.push(i as usize);
            }
            let mut want: Vec<usize> = (0..n).collect();
            want.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap().then(a.cmp(&b)));
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn updates_and_pushes_track_key_changes() {
        let mut keys = pseudo_keys(50, 3);
        let mut tree = TournamentTree::build(40, &by_keys(&keys));
        // Improve a few entries (the append pattern: values only drop).
        for &i in &[7usize, 31, 0, 19] {
            keys[i] = -(i as f64);
            tree.update(i, &by_keys(&keys));
        }
        // Append the remaining entries one by one.
        while tree.len() < 50 {
            tree.push(&by_keys(&keys));
        }
        let better = by_keys(&keys);
        let mut cursor = tree.cursor();
        let mut got = Vec::new();
        while let Some(i) = tree.pop_best(&mut cursor, &better) {
            got.push(i as usize);
        }
        let mut want: Vec<usize> = (0..50).collect();
        want.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap().then(a.cmp(&b)));
        assert_eq!(got, want);
    }

    #[test]
    fn top_k_pops_stay_logarithmic() {
        // The satellite's point: extracting a few best entries must not
        // scan the whole tree. Each pop adds at most log2(size) frontier
        // nodes, so after k pops the frontier is O(k·log n) — far below n.
        let n = 4096usize;
        let keys = pseudo_keys(n, 11);
        let better = by_keys(&keys);
        let tree = TournamentTree::build(n, &better);
        let mut cursor = tree.cursor();
        for _ in 0..3 {
            tree.pop_best(&mut cursor, &better).unwrap();
        }
        assert!(
            cursor.frontier_len() <= 3 * 12,
            "frontier {} after 3 pops of {n} entries",
            cursor.frontier_len()
        );
    }
}
