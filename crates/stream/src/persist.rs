//! Crash-safe persistence of the streaming engine.
//!
//! A [`crate::StreamingValmod`] holds O(n·R) of expensively-computed
//! exact state; this module makes it durable with the same exactness
//! contract as everything else in the suite: a restored engine is
//! **bit-identical** to the engine that was checkpointed — byte-equal
//! `valmap()`, `poll_deltas()` and `snapshot()`, across SIMD dispatch
//! levels and worker counts.
//!
//! Three layers:
//!
//! * [`StreamingValmod::checkpoint_to`] / [`StreamingValmod::restore_from`]
//!   — a versioned, length-prefixed, FNV-checksummed binary image of the
//!   full engine state, written to / read from any `Write`/`Read`.
//! * [`JournalWriter`] — the per-sample write-ahead journal between
//!   checkpoints: one fixed-width checksummed record per appended point,
//!   torn-tail tolerant on replay.
//! * [`CheckpointStore`] — a directory of generation-numbered
//!   checkpoints and journals with atomic publication (temp file +
//!   fsync + rename + directory fsync) and recovery = newest *valid*
//!   checkpoint (corrupt/truncated falls back a generation) + contiguous
//!   journal replay.
//!
//! # What is persisted vs rebuilt
//!
//! The image stores exactly the state that cannot be re-derived
//! bit-exactly: the raw series, the bootstrap centering offset, the
//! per-length profiles and chained `QT` recurrence rows, the emitted
//! VALMAP (the `poll_deltas` diff base), and the version counter. The
//! prefix-sum statistics and per-window means/stds are *rebuilt* by
//! replaying the exact push/memoize sequence the live engine executed —
//! bit-identical because those accumulators are write-once (an entry
//! never changes after it is appended), so re-pushing the same values in
//! the same order reproduces every partial sum and every rounding step.
//!
//! Journal replay feeds recovered samples through
//! [`StreamingValmod::try_append`] — the *same* per-point code path the
//! live session used — never through the batched
//! [`StreamingValmod::extend`], whose FFT-amortized first columns order
//! the arithmetic differently. Same path, same bits.
//!
//! Every I/O operation in [`CheckpointStore`] routes through
//! [`valmod_series::faults`], so the crash-recovery tests can
//! deterministically fail any single `create`/`write`/`sync`/`rename`
//! and prove recovery is exact from every reachable crash point.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use valmod_core::ValmodConfig;
use valmod_obs as obs;
use valmod_series::{faults, Result, SeriesError};

use crate::engine::{reserve_extra, EmittedValmap, LengthState, StreamStats};
use crate::ring::RingBuffer;
use crate::StreamingValmod;
use valmod_mp::MatrixProfile;

/// File magic: format name + image version. Bumping the trailing byte is
/// the versioning story — an old binary refuses a new image with a
/// typed error instead of misreading it.
const MAGIC: &[u8; 8] = b"VLMDCKP1";

/// Checkpoint bytes are written in chunks of this size so a torn write
/// (or an injected crash) can land mid-image, not only at the end.
const WRITE_CHUNK: usize = 64 * 1024;

/// Checkpoint generations kept on disk. Two, so the newest can be
/// corrupt (torn by a crash, bit-flipped by the disk) and recovery still
/// has the previous generation plus its longer journal to replay.
const KEEP_GENERATIONS: u64 = 2;

/// FNV-1a-64 over a byte slice — the same hasher style the test kit uses
/// for output checksums. Used for the small fixed-width journal records.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Word-at-a-time FNV-1a-64: folds 8-byte little-endian words (trailing
/// bytes folded individually). The byte-wise hash is one sequential
/// multiply *per byte* — over a multi-megabyte checkpoint image that
/// latency chain alone would dominate checkpoint cost, so the envelope
/// uses this variant (8× fewer multiplies, still sensitive to any
/// single-bit flip).
#[must_use]
pub fn fnv64_words(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8 bytes"));
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn corrupt(detail: impl Into<String>) -> SeriesError {
    SeriesError::CheckpointCorrupt { detail: detail.into() }
}

/// Little-endian u64 writer over a growing buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt(&mut self, v: Option<usize>) {
        self.u64(v.map_or(u64::MAX, |x| x as u64));
    }
}

/// Bounds-checked little-endian u64 reader; every overrun is a typed
/// corruption error, never a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn u64(&mut self) -> Result<u64> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("body truncated"))?;
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("count overflows usize"))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt(&mut self) -> Result<Option<usize>> {
        match self.u64()? {
            u64::MAX => Ok(None),
            v => usize::try_from(v).map(Some).map_err(|_| corrupt("index overflows usize")),
        }
    }

    /// Validates that `len` 8-byte words are actually present *before*
    /// allocating for them, so a corrupted count fails cleanly instead
    /// of attempting an absurd allocation.
    fn expect_words(&self, len: usize) -> Result<()> {
        let need = len.checked_mul(8).ok_or_else(|| corrupt("count overflows"))?;
        if self.buf.len() - self.pos < need {
            return Err(corrupt("body truncated"));
        }
        Ok(())
    }

    fn f64_vec(&mut self, len: usize) -> Result<Vec<f64>> {
        self.expect_words(len)?;
        (0..len).map(|_| self.f64()).collect()
    }

    fn opt_vec(&mut self, len: usize) -> Result<Vec<Option<usize>>> {
        self.expect_words(len)?;
        (0..len).map(|_| self.opt()).collect()
    }

    fn u64_vec(&mut self, len: usize) -> Result<Vec<usize>> {
        self.expect_words(len)?;
        (0..len).map(|_| self.usize()).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl StreamingValmod {
    /// Serializes the full engine state as one checksummed binary image.
    ///
    /// Layout: `MAGIC (8) · body length (u64) · body · word-wise
    /// FNV-1a-64 ([`fnv64_words`]) of everything before the trailer
    /// (u64)`, all little-endian. The image is built in memory and
    /// written in [`WRITE_CHUNK`] pieces; no fsync happens here —
    /// durability policy belongs to [`CheckpointStore`].
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] when the sink fails (including injected
    /// faults at site `ckpt.write`).
    pub fn checkpoint_to(&self, w: &mut impl Write) -> Result<()> {
        // One preallocated buffer for the whole image: header, body, and
        // checksum trailer — a checkpoint serializes a few megabytes, so
        // avoiding the build-then-frame copy matters for the append-path
        // overhead budget.
        let mut enc = Enc { buf: Vec::with_capacity(self.image_size_hint()) };
        enc.buf.extend_from_slice(MAGIC);
        enc.u64(0); // body-length placeholder, patched below
        self.encode_body(&mut enc);
        let body_len = (enc.buf.len() - 16) as u64;
        enc.buf[8..16].copy_from_slice(&body_len.to_le_bytes());
        let sum = fnv64_words(&enc.buf);
        enc.u64(sum);
        for chunk in enc.buf.chunks(WRITE_CHUNK) {
            faults::write_all(w, "ckpt.write", chunk)?;
        }
        Ok(())
    }

    /// Exact byte size of the serialized image (header + body + trailer),
    /// so [`StreamingValmod::checkpoint_to`] allocates once.
    fn image_size_hint(&self) -> usize {
        let per_length: usize = self.lengths.iter().map(|s| 8 * (1 + 3 * s.profile.len())).sum();
        24 + 8 * (10 + self.buffer.as_slice().len() + 3 * self.emitted.mpn.len()) + per_length
    }

    fn encode_body(&self, enc: &mut Enc) {
        // Configuration fingerprint: every field that affects state.
        // Threads and pool are deliberately absent — results are
        // bit-identical for every worker count, so a checkpoint written
        // under 8 threads restores under 1 (and vice versa).
        enc.u64(self.config.l_min as u64);
        enc.u64(self.config.l_max as u64);
        enc.u64(self.config.k as u64);
        enc.u64(self.config.profile_size as u64);
        enc.u64(self.config.exclusion_den as u64);
        enc.opt(self.buffer.capacity());
        enc.f64(self.stats.center);
        enc.u64(self.version);
        let data = self.buffer.as_slice();
        enc.u64(data.len() as u64);
        for &v in data {
            enc.f64(v);
        }
        enc.u64(self.emitted.mpn.len() as u64);
        for &v in &self.emitted.mpn {
            enc.f64(v);
        }
        for &v in &self.emitted.ip {
            enc.opt(v);
        }
        for &v in &self.emitted.lp {
            enc.u64(v as u64);
        }
        for state in &self.lengths {
            enc.u64(state.profile.len() as u64);
            for &v in &state.profile.values {
                enc.f64(v);
            }
            for &v in &state.profile.indices {
                enc.opt(v);
            }
            for &v in &state.last_qt {
                enc.f64(v);
            }
        }
    }

    /// Restores an engine from a checkpoint image, verifying magic,
    /// length prefix, checksum, configuration fingerprint, and
    /// structural consistency before rebuilding.
    ///
    /// `config` supplies the runtime-only settings (threads, pool,
    /// stage-2 pipelining); its state-affecting fields must match the
    /// fingerprint in the image.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CheckpointCorrupt`] for any truncation, bit flip,
    /// or structural inconsistency; [`SeriesError::CheckpointMismatch`]
    /// when the image was written under an incompatible configuration;
    /// [`SeriesError::Io`] when the source fails.
    pub fn restore_from(r: &mut impl Read, config: &ValmodConfig) -> Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::restore_from_bytes(&bytes, config)
    }

    /// [`StreamingValmod::restore_from`] over an in-memory image.
    ///
    /// # Errors
    ///
    /// As [`StreamingValmod::restore_from`], minus the I/O.
    pub fn restore_from_bytes(bytes: &[u8], config: &ValmodConfig) -> Result<Self> {
        if bytes.len() < 24 {
            return Err(corrupt(format!(
                "image of {} bytes is shorter than the envelope",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a valmod checkpoint, or a newer format version)"));
        }
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let expect = (bytes.len() - 24) as u64;
        if body_len != expect {
            return Err(corrupt(format!(
                "length prefix says {body_len} body bytes, found {expect}"
            )));
        }
        let split = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[split..].try_into().expect("8 bytes"));
        let actual = fnv64_words(&bytes[..split]);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:016x}, computed {actual:016x})"
            )));
        }
        let mut dec = Dec { buf: &bytes[16..split], pos: 0 };
        Self::decode_body(&mut dec, config)
    }

    fn decode_body(dec: &mut Dec<'_>, config: &ValmodConfig) -> Result<Self> {
        let fields = [
            ("l_min", config.l_min),
            ("l_max", config.l_max),
            ("k", config.k),
            ("p", config.profile_size),
            ("exclusion denominator", config.exclusion_den),
        ];
        for (name, ours) in fields {
            let theirs = dec.usize()?;
            if theirs != ours {
                return Err(SeriesError::CheckpointMismatch {
                    detail: format!("{name} {theirs} in the checkpoint vs {ours} configured"),
                });
            }
        }
        let capacity = dec.opt()?;
        let center = dec.f64()?;
        let version = dec.u64()?;
        let n = dec.usize()?;
        let data = dec.f64_vec(n)?;
        config.validate(n).map_err(|e| corrupt(format!("stored series is unusable: {e}")))?;
        let emitted_len = dec.usize()?;
        if emitted_len > n {
            return Err(corrupt(format!("emitted VALMAP of {emitted_len} entries for {n} points")));
        }
        let emitted = EmittedValmap {
            mpn: dec.f64_vec(emitted_len)?,
            ip: dec.opt_vec(emitted_len)?,
            lp: dec.u64_vec(emitted_len)?,
        };

        let reserve = capacity.unwrap_or(n);
        let buffer = match capacity {
            Some(cap) => RingBuffer::bounded(&data, cap).map_err(|_| {
                corrupt(format!("{n} stored points exceed the stored capacity {cap}"))
            })?,
            None => RingBuffer::unbounded(&data),
        };
        // Bit-identical rebuild: the same values, the same fixed center,
        // the same push order as the live engine's accumulation.
        let stats = StreamStats::rebuild(center, &data, reserve);

        let mut lengths = Vec::with_capacity(config.l_max - config.l_min + 1);
        for length in config.l_min..=config.l_max {
            let m = dec.usize()?;
            if m != n - length + 1 {
                return Err(corrupt(format!(
                    "length {length} stores {m} entries, expected {} for {n} points",
                    n - length + 1
                )));
            }
            let per_len_reserve = reserve - length + 1;
            let mut values = dec.f64_vec(m)?;
            let mut indices = dec.opt_vec(m)?;
            let mut last_qt = dec.f64_vec(m)?;
            if let Some(bad) = indices.iter().flatten().find(|&&j| j >= m) {
                return Err(corrupt(format!(
                    "neighbor index {bad} out of range at length {length}"
                )));
            }
            reserve_extra(&mut values, per_len_reserve);
            reserve_extra(&mut indices, per_len_reserve);
            reserve_extra(&mut last_qt, per_len_reserve);
            // Per-window statistics are memoized from the write-once
            // prefix sums: recomputing each window reproduces the exact
            // bits the live engine pushed.
            let mut means = Vec::with_capacity(per_len_reserve);
            let mut stds = Vec::with_capacity(per_len_reserve);
            for i in 0..m {
                means.push(stats.mean(i, length));
                stds.push(stats.std(i, length));
            }
            let profile = MatrixProfile {
                window: length,
                exclusion: config.exclusion(length),
                values,
                indices,
            };
            let (pair_tree, discord_tree) = LengthState::built_trees(&profile);
            lengths.push(LengthState {
                length,
                exclusion: config.exclusion(length),
                profile,
                last_qt,
                means,
                stds,
                pair_tree,
                discord_tree,
            });
        }
        if !dec.done() {
            return Err(corrupt("trailing bytes after the last length state"));
        }
        Ok(Self {
            config: config.clone(),
            buffer,
            stats,
            lengths,
            cross: Vec::with_capacity(reserve),
            version,
            live: None,
            emitted,
        })
    }
}

/// The per-sample write-ahead journal between checkpoints.
///
/// Text format, one fixed-width record per line so a torn tail is
/// detectable by length alone:
///
/// ```text
/// valmod-journal gen=3 start=412
/// 3ff3c083126e978d 9f86d081884c7d65
/// ...
/// ```
///
/// Each record is the sample's IEEE-754 bits and an FNV-1a-64 over those
/// bits plus the sample's *absolute* index — so a record that is torn,
/// bit-flipped, or replayed at the wrong position all fail the same
/// checksum. Replay stops at the first invalid or incomplete record:
/// everything before a torn tail is recovered, the tail is discarded.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    next_index: u64,
}

/// One journal record's checksum: over the value bits then the absolute
/// sample index, both little-endian.
fn record_sum(bits: u64, index: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&bits.to_le_bytes());
    bytes[8..].copy_from_slice(&index.to_le_bytes());
    fnv64(&bytes)
}

impl JournalWriter {
    /// Creates the journal for generation `gen`, whose first record will
    /// be the sample at absolute index `start`, and makes the header
    /// durable.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] (fault sites `journal.create`,
    /// `journal.write`, `journal.sync`).
    pub fn create(path: &Path, gen: u64, start: u64) -> Result<Self> {
        faults::check("journal.create")?;
        let mut file = File::create(path)?;
        faults::write_all(
            &mut file,
            "journal.write",
            format!("valmod-journal gen={gen} start={start}\n").as_bytes(),
        )?;
        faults::check("journal.sync")?;
        file.sync_all()?;
        Ok(Self { file, next_index: start })
    }

    /// Appends one sample record (buffered by the OS until
    /// [`JournalWriter::sync`]).
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] (fault site `journal.write`).
    pub fn append(&mut self, value: f64) -> Result<()> {
        let bits = value.to_bits();
        let sum = record_sum(bits, self.next_index);
        faults::write_all(
            &mut self.file,
            "journal.write",
            format!("{bits:016x} {sum:016x}\n").as_bytes(),
        )?;
        self.next_index += 1;
        Ok(())
    }

    /// Makes everything appended so far durable.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] (fault site `journal.sync`).
    pub fn sync(&mut self) -> Result<()> {
        faults::check("journal.sync")?;
        let _fsync_timer = obs::time!(ckpt_fsync_seconds);
        self.file.sync_all()?;
        Ok(())
    }
}

/// A journal read back for replay: its generation, the absolute index of
/// its first sample, and every record up to the first invalid one.
#[derive(Debug)]
struct JournalContents {
    gen: u64,
    start: u64,
    values: Vec<f64>,
}

/// Parses a journal file, tolerating a torn tail (truncated or
/// corrupted trailing records are dropped, everything before them kept).
/// Returns `None` when even the header is unusable — the journal
/// contributes nothing to replay.
fn read_journal(path: &Path) -> Option<JournalContents> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.split_inclusive('\n');
    let header = lines.next()?.strip_suffix('\n')?;
    let rest = header.strip_prefix("valmod-journal gen=")?;
    let (gen_str, start_str) = rest.split_once(" start=")?;
    let gen = gen_str.parse().ok()?;
    let start: u64 = start_str.parse().ok()?;
    let mut values = Vec::new();
    for line in lines {
        // A record missing its newline is a torn tail by definition.
        let Some(record) = line.strip_suffix('\n') else { break };
        let Some((bits_str, sum_str)) = record.split_once(' ') else { break };
        let (Ok(bits), Ok(sum)) =
            (u64::from_str_radix(bits_str, 16), u64::from_str_radix(sum_str, 16))
        else {
            break;
        };
        if bits_str.len() != 16
            || sum_str.len() != 16
            || sum != record_sum(bits, start + values.len() as u64)
        {
            break;
        }
        values.push(f64::from_bits(bits));
    }
    Some(JournalContents { gen, start, values })
}

/// What [`CheckpointStore::recover`] reconstructed.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered engine — bit-identical to the live engine at the
    /// recovered sample count.
    pub engine: StreamingValmod,
    /// Generation of the checkpoint that restored cleanly.
    pub generation: u64,
    /// Samples replayed from journals on top of that checkpoint.
    pub replayed: u64,
    /// Newer checkpoint generations that failed validation and were
    /// skipped (0 = the newest was fine).
    pub fell_back: u64,
}

/// Escapes a tenant name into a filesystem-safe, collision-free
/// directory component: ASCII alphanumerics, `-` and `_` pass through,
/// every other byte becomes `%XX` (uppercase hex). The mapping is
/// injective, so distinct tenant names can never share a directory —
/// including hostile names like `..`, `a/b`, or `a%2Fb` (the `%` itself
/// is escaped).
#[must_use]
pub fn escape_tenant(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decides *when* each tenant of a shared daemon checkpoints, staggering
/// the write bursts so they never align: every tenant checkpoints once
/// per `cadence` accepted samples, but tenant slots are phase-shifted by
/// the van der Corput (bit-reversal) sequence — slot 0 at offset 0,
/// slot 1 at cadence/2, slot 2 at cadence/4, slot 3 at 3·cadence/4, … —
/// which spreads any prefix of join-order slots near-uniformly across
/// the cadence window without knowing the tenant count up front.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointScheduler {
    cadence: u64,
    phase: u64,
}

impl CheckpointScheduler {
    /// A scheduler for the `slot`-th tenant (join order) at the given
    /// cadence. A zero cadence disables periodic checkpoints.
    #[must_use]
    pub fn new(cadence: u64, slot: u64) -> Self {
        let phase = if cadence == 0 {
            0
        } else {
            // slot.reverse_bits() / 2^64 is the van der Corput point in
            // [0, 1); scale it to the cadence in exact integer math.
            u64::try_from((u128::from(slot.reverse_bits()) * u128::from(cadence)) >> 64)
                .expect("product >> 64 fits u64 because cadence does")
        };
        Self { cadence, phase }
    }

    /// Whether a checkpoint is due after the tenant's `appends`-th
    /// accepted sample (1-based count of post-bootstrap appends).
    #[must_use]
    pub fn due(&self, appends: u64) -> bool {
        self.cadence > 0 && appends > 0 && (appends + self.phase).is_multiple_of(self.cadence)
    }

    /// The slot's phase offset within the cadence window (test hook and
    /// observability).
    #[must_use]
    pub fn phase(&self) -> u64 {
        self.phase
    }
}

/// A directory of generation-numbered checkpoints and journals.
///
/// Files: `ckpt-<gen>.bin` (the engine image at some sample count) and
/// `journal-<gen>.log` (the samples appended after checkpoint `<gen>`,
/// until checkpoint `<gen>+1`). Checkpoints are published atomically:
/// written to `ckpt-<gen>.tmp`, fsync'd, renamed over the final name,
/// then the directory is fsync'd — a crash at any point leaves either
/// the old generation set or the new one, never a half-written published
/// image. The last [`KEEP_GENERATIONS`] generations are kept so a
/// corrupt newest image falls back to its predecessor plus a longer
/// journal replay.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Generation of the most recently begun checkpoint (the one the
    /// open journal follows); `None` before the first checkpoint.
    gen: Option<u64>,
    journal: Option<JournalWriter>,
}

fn parse_gen(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, gen: None, journal: None })
    }

    /// Opens the tenant-namespaced store `root/tenants/<escaped name>/`.
    /// Every tenant of a multi-tenant daemon gets its own generation
    /// sequence and journal chain, fully isolated from its neighbors —
    /// recovery of one tenant never reads another's files.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] when the directory cannot be created.
    pub fn open_tenant(root: impl AsRef<Path>, name: &str) -> Result<Self> {
        Self::open(root.as_ref().join("tenants").join(escape_tenant(name)))
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the directory already holds checkpoint or journal state
    /// from a previous session.
    #[must_use]
    pub fn has_state(&self) -> bool {
        !self.checkpoint_gens().is_empty()
            || fs::read_dir(&self.dir).is_ok_and(|entries| {
                entries.flatten().any(|e| {
                    let name = e.file_name();
                    parse_gen(&name.to_string_lossy(), "journal-", ".log").is_some()
                })
            })
    }

    fn ckpt_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{gen:08}.bin"))
    }

    fn journal_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("journal-{gen:08}.log"))
    }

    /// Published checkpoint generations, ascending.
    fn checkpoint_gens(&self) -> Vec<u64> {
        let Ok(entries) = fs::read_dir(&self.dir) else { return Vec::new() };
        let mut gens: Vec<u64> = entries
            .flatten()
            .filter_map(|e| parse_gen(&e.file_name().to_string_lossy(), "ckpt-", ".bin"))
            .collect();
        gens.sort_unstable();
        gens
    }

    /// Writes the next checkpoint generation atomically, prunes old
    /// generations, and opens the follow-on journal. The first call in a
    /// fresh directory writes generation 0 — call it right after
    /// bootstrap (or recovery) so the journal always has a checkpoint to
    /// replay onto.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`] from any step (fault sites `ckpt.create`,
    /// `ckpt.write`, `ckpt.sync`, `ckpt.rename`, `ckpt.dirsync`, then
    /// the journal-creation sites). On error the published state is
    /// whatever the previous generation left — recovery stays possible.
    pub fn checkpoint(&mut self, engine: &StreamingValmod) -> Result<u64> {
        let _ckpt_span = obs::span("checkpoint", obs::Layer::Persist);
        // Close out the current journal durably before publishing the
        // image that supersedes it: if the checkpoint fails partway, the
        // previous generation + this journal still reconstruct everything.
        if let Some(journal) = &mut self.journal {
            journal.sync()?;
        }
        let gen = self.gen.map_or(0, |g| g + 1);
        let tmp = self.dir.join(format!("ckpt-{gen:08}.tmp"));
        faults::check("ckpt.create")?;
        let mut file = File::create(&tmp)?;
        {
            let _serialize_timer = obs::time!(ckpt_serialize_seconds);
            engine.checkpoint_to(&mut file)?;
        }
        faults::check("ckpt.sync")?;
        {
            let _fsync_timer = obs::time!(ckpt_fsync_seconds);
            file.sync_all()?;
        }
        drop(file);
        faults::check("ckpt.rename")?;
        fs::rename(&tmp, self.ckpt_path(gen))?;
        // Make the rename itself durable: fsync the directory entry.
        faults::check("ckpt.dirsync")?;
        {
            let _fsync_timer = obs::time!(ckpt_fsync_seconds);
            File::open(&self.dir)?.sync_all()?;
        }
        obs::count!(ckpt_published, 1);

        self.journal = None;
        self.gen = Some(gen);
        for old in self.checkpoint_gens() {
            if old + KEEP_GENERATIONS <= gen {
                // Best-effort pruning: a leftover file is harmless.
                let _ = fs::remove_file(self.ckpt_path(old));
                let _ = fs::remove_file(self.journal_path(old));
            }
        }
        self.journal =
            Some(JournalWriter::create(&self.journal_path(gen), gen, engine.len() as u64)?);
        Ok(gen)
    }

    /// Journals one appended sample. Call after the engine accepted it,
    /// so a replayed journal can never contain a sample the engine
    /// rejected.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`], or if called before the first
    /// [`CheckpointStore::checkpoint`].
    pub fn journal_sample(&mut self, value: f64) -> Result<()> {
        let journal = self
            .journal
            .as_mut()
            .ok_or_else(|| corrupt("journal_sample before the first checkpoint"))?;
        journal.append(value)
    }

    /// Fsyncs the open journal (the batch boundary of the durability
    /// policy: everything journaled before a successful sync survives a
    /// crash).
    ///
    /// # Errors
    ///
    /// [`SeriesError::Io`].
    pub fn sync_journal(&mut self) -> Result<()> {
        match &mut self.journal {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Reconstructs the newest recoverable engine state: newest *valid*
    /// checkpoint (walking back over corrupt/truncated/unreadable
    /// generations), then every contiguous journal replayed through the
    /// per-point append path. Returns `None` when the directory holds no
    /// checkpoints at all.
    ///
    /// Call [`CheckpointStore::checkpoint`] immediately after a
    /// successful recovery: it seals the recovered state into a fresh
    /// generation instead of appending to a possibly-torn journal tail.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CheckpointMismatch`] when a checkpoint was written
    /// under an incompatible configuration (this is a caller error, not
    /// corruption — falling back would silently compute wrong answers);
    /// [`SeriesError::CheckpointCorrupt`] when every generation failed
    /// validation.
    pub fn recover(&mut self, config: &ValmodConfig) -> Result<Option<Recovery>> {
        let _recover_span = obs::span("recover", obs::Layer::Persist);
        let gens = self.checkpoint_gens();
        let Some(&newest) = gens.last() else { return Ok(None) };
        self.gen = Some(newest);
        let mut fell_back = 0u64;
        let mut last_err: Option<SeriesError> = None;
        for &gen in gens.iter().rev() {
            let restore_timer = obs::time!(ckpt_restore_seconds);
            let restored = faults::check("ckpt.read")
                .map_err(SeriesError::from)
                .and_then(|()| Ok(File::open(self.ckpt_path(gen))?))
                .and_then(|mut f| StreamingValmod::restore_from(&mut f, config));
            drop(restore_timer);
            let mut engine = match restored {
                Ok(engine) => engine,
                Err(e @ SeriesError::CheckpointMismatch { .. }) => return Err(e),
                Err(e) => {
                    fell_back += 1;
                    last_err = Some(e);
                    continue;
                }
            };
            // Replay journals gen, gen+1, ... while each picks up exactly
            // where the engine stands; a gap or torn journal ends replay.
            let mut replayed = 0u64;
            let mut at = gen;
            while let Some(journal) = read_journal(&self.journal_path(at)) {
                if journal.gen != at || journal.start > engine.len() as u64 {
                    break;
                }
                let skip = (engine.len() as u64 - journal.start) as usize;
                for &value in journal.values.iter().skip(skip) {
                    // The same per-point path the live session fed —
                    // never the batched extend, whose FFT-amortized
                    // arithmetic orders differently.
                    engine.try_append(value).map_err(|e| {
                        corrupt(format!("journal {at} replays a rejected sample: {e}"))
                    })?;
                    replayed += 1;
                }
                at += 1;
            }
            obs::count!(journal_replayed, replayed);
            return Ok(Some(Recovery { engine, generation: gen, replayed, fell_back }));
        }
        Err(last_err.unwrap_or_else(|| corrupt("no recoverable checkpoint generation")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    fn small_engine(n: usize) -> StreamingValmod {
        let series = gen::random_walk(n, 11);
        let config = ValmodConfig::new(8, 12).with_k(2).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..n - 10], config).unwrap();
        for &v in &series[n - 10..] {
            engine.append(v);
        }
        engine
    }

    fn image(engine: &StreamingValmod) -> Vec<u8> {
        let mut buf = Vec::new();
        engine.checkpoint_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn tenant_escaping_is_injective_and_filesystem_safe() {
        let names = ["alice", "a/b", "a%2Fb", "a%b", "..", ".", "ü", "a b", "A", "a", "-", "_x9"];
        let escaped: Vec<String> = names.iter().map(|n| escape_tenant(n)).collect();
        for (i, e) in escaped.iter().enumerate() {
            assert!(
                e.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "{:?} -> {e:?} has unsafe bytes",
                names[i]
            );
            for (k, other) in escaped.iter().enumerate() {
                assert!(i == k || e != other, "{:?} and {:?} collide", names[i], names[k]);
            }
        }
        assert_eq!(escape_tenant("a/b"), "a%2Fb");
        assert_eq!(escape_tenant(".."), "%2E%2E");
    }

    #[test]
    fn tenant_stores_are_isolated_directories() {
        let root = std::env::temp_dir().join(format!("valmod-tenant-store-{}", std::process::id()));
        let engine = small_engine(110);
        let mut a = CheckpointStore::open_tenant(&root, "a/b").unwrap();
        let b = CheckpointStore::open_tenant(&root, "a%2Fb").unwrap();
        assert_ne!(a.dir(), b.dir());
        a.checkpoint(&engine).unwrap();
        assert!(a.has_state());
        assert!(!b.has_state(), "one tenant's checkpoints must not leak into another's");
        let reopened = CheckpointStore::open_tenant(&root, "a/b").unwrap();
        assert!(reopened.has_state());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scheduler_staggers_slots_across_the_cadence_window() {
        let cadence = 16u64;
        // The van der Corput phases of the first four slots quarter the
        // window: 0, 1/2, 1/4, 3/4.
        let phases: Vec<u64> =
            (0..4).map(|s| CheckpointScheduler::new(cadence, s).phase()).collect();
        assert_eq!(phases, vec![0, 8, 4, 12]);
        for slot in 0..8 {
            let sched = CheckpointScheduler::new(cadence, slot);
            let due: Vec<u64> = (1..=64).filter(|&a| sched.due(a)).collect();
            assert_eq!(due.len(), 4, "every slot checkpoints once per cadence");
            assert!(due.windows(2).all(|w| w[1] - w[0] == cadence));
            assert!(!sched.due(0), "the bootstrap checkpoint is not the scheduler's job");
        }
        // Zero cadence disables periodic checkpoints outright.
        assert!((0..100).all(|a| !CheckpointScheduler::new(0, 3).due(a)));
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let mut engine = small_engine(120);
        let buf = image(&engine);
        let mut restored = StreamingValmod::restore_from_bytes(&buf, engine.config()).unwrap();
        assert_eq!(restored.len(), engine.len());
        assert_eq!(restored.version(), engine.version());
        let (a, b) = (engine.valmap().clone(), restored.valmap().clone());
        assert_eq!(a.ip, b.ip);
        assert_eq!(a.lp, b.lp);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.mpn), bits(&b.mpn));
        // And the images themselves are stable: re-checkpointing the
        // restored engine reproduces the same bytes.
        assert_eq!(buf, image(&restored));
    }

    #[test]
    fn envelope_violations_are_typed_corruption() {
        let engine = small_engine(110);
        let buf = image(&engine);
        let config = engine.config();
        // Truncated mid-header.
        for cut in [0, 7, 15, 23] {
            assert!(matches!(
                StreamingValmod::restore_from_bytes(&buf[..cut], config),
                Err(SeriesError::CheckpointCorrupt { .. })
            ));
        }
        // Truncated mid-body (length prefix disagrees).
        assert!(matches!(
            StreamingValmod::restore_from_bytes(&buf[..buf.len() - 9], config),
            Err(SeriesError::CheckpointCorrupt { .. })
        ));
        // One flipped bit anywhere fails the checksum.
        for at in [8, 24, buf.len() / 2, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(matches!(
                StreamingValmod::restore_from_bytes(&bad, config),
                Err(SeriesError::CheckpointCorrupt { .. })
            ));
        }
        // Wrong magic reports corruption, not a parse panic.
        let mut bad = buf;
        bad[0] = b'X';
        assert!(matches!(
            StreamingValmod::restore_from_bytes(&bad, config),
            Err(SeriesError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn config_fingerprint_mismatch_is_typed() {
        let engine = small_engine(110);
        let buf = image(&engine);
        let shifted = ValmodConfig::new(8, 13).with_k(2).with_threads(1);
        match StreamingValmod::restore_from_bytes(&buf, &shifted) {
            Err(SeriesError::CheckpointMismatch { detail }) => {
                assert!(detail.contains("l_max"), "{detail}");
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // Threads may differ: that is a runtime knob, not state.
        let threaded = ValmodConfig::new(8, 12).with_k(2).with_threads(8);
        assert!(StreamingValmod::restore_from_bytes(&buf, &threaded).is_ok());
    }

    #[test]
    fn journal_round_trips_and_tolerates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("valmod-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-00000003.log");
        let values = [1.5, -2.25, f64::MIN_POSITIVE, 1e150];
        {
            let mut w = JournalWriter::create(&path, 3, 412).unwrap();
            for &v in &values {
                w.append(v).unwrap();
            }
            w.sync().unwrap();
        }
        let full = read_journal(&path).unwrap();
        assert_eq!((full.gen, full.start), (3, 412));
        assert_eq!(full.values, values);

        // Tear the tail mid-record: the complete records survive.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let torn = read_journal(&path).unwrap();
        assert_eq!(torn.values, &values[..3]);

        // Flip a bit in the middle record: replay stops *before* it.
        let mut flipped = bytes.clone();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        flipped[header_len + 34 + 2] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert_eq!(read_journal(&path).unwrap().values, &values[..1]);

        // A torn header voids the whole journal.
        fs::write(&path, &bytes[..10]).unwrap();
        assert!(read_journal(&path).is_none());
        fs::remove_file(&path).unwrap();
    }
}
