//! The incremental multi-length engine.
//!
//! # How an append works
//!
//! Appending one point to a series of length `n` creates exactly one new
//! window per length `ℓ ∈ [ℓmin, ℓmax]` (the window ending at the new
//! point). For each length, the dot products of that window against every
//! older window follow from the previous append's in O(1) each — the
//! STAMPI recurrence of [`valmod_mp::streaming`], here generalized to all
//! `R = ℓmax − ℓmin + 1` lengths at once:
//!
//! ```text
//! QT_ℓ(new, j) = QT_ℓ(prev, j−1) − t[n−1−ℓ]·t[j−1] + v·t[j+ℓ−1]
//! ```
//!
//! Two pieces of per-append work are *shared* across lengths instead of
//! being recomputed `R` times:
//!
//! * the product row `c[x] = v·t[x]` (the `v·t[j+ℓ−1]` term of every
//!   length's recurrence is a lookup into it) — the streaming analogue of
//!   the MASS row a batch engine would compute per query;
//! * the running prefix sums of the centered values and their squares,
//!   from which any window's mean and standard deviation at any length
//!   costs O(1) (one push per append serves all lengths).
//!
//! Total per-append cost: O(n·R) — against O(n²·R/p) for re-running the
//! batch engine, the gap the `streaming_vs_batch` bench measures.
//!
//! # Batched appends
//!
//! [`StreamingValmod::extend`] processes a chunk per length (all of a
//! length's recurrence steps back to back, while its state is hot in
//! cache) and computes the chunk's first-column dot products
//! `QT_ℓ(new, 0)` — O(ℓ) each when done directly — with a single FFT
//! cross-correlation per length once the chunk is large enough for the
//! transform to win ([`valmod_fft::naive_is_faster`] decides).
//!
//! # Exactness and bit-identity
//!
//! The per-length profiles maintained here are *exact* in real
//! arithmetic — every pair of windows has been compared, as in STAMPI.
//! In floating point they can differ from a batch run in the last bits,
//! because the two orders the same mathematical sums differently (batch
//! centers by the final global mean and streams dot products along
//! diagonals from an FFT first row; streaming centers by the bootstrap
//! mean and chains the append recurrence). That is why
//! [`StreamingValmod::snapshot`] — the canonical, bit-identical-to-batch
//! answer — executes the batch pipeline over the buffered series rather
//! than re-ordering incremental state, exactly like an LSM tree serves
//! reads from memtables but compacts to the canonical on-disk form. The
//! live views answer monitoring queries from incremental state in O(n·R)
//! with no batch re-run.

use valmod_core::discord::{Discord, LengthDiscords};
use valmod_core::kernel;
use valmod_core::{run_valmod, Valmap, ValmodConfig, ValmodOutput};
use valmod_fft::sliding_dot_product;
use valmod_mp::motif::{top_k_discords, top_k_pairs};
use valmod_mp::stomp::stomp_parallel_in;
use valmod_mp::{MatrixProfile, MotifPair};
use valmod_obs as obs;
use valmod_series::znorm::zdist_from_dot;
use valmod_series::{Result, SeriesError};

use crate::delta::ValmapDelta;
use crate::ring::RingBuffer;
use crate::tree::TournamentTree;

/// Fast-path variances below this threshold are recomputed exactly from
/// the stored values — same guard, for the same reason, as
/// [`valmod_series::RollingStats`]: the `E[x²] − μ²` cancellation can
/// leave ~1e-14 of noise, which must not misclassify exactly-flat
/// windows.
const VAR_RECHECK: f64 = 1e-9;

/// Minimum recurrence cells (windows × lengths) per worker before an
/// append spawns another thread; below this the scoped-spawn overhead
/// rivals the O(n) walks themselves.
const MIN_CELLS_PER_WORKER: usize = 1 << 16;

/// Append-friendly prefix-sum statistics over the centered series:
/// one O(1) push per appended point serves every length's window
/// statistics (the streaming counterpart of [`valmod_series::RollingStats`],
/// which is build-once).
#[derive(Debug, Clone)]
pub(crate) struct StreamStats {
    /// The fixed centering offset (bootstrap mean — the future is
    /// unknown, so the *final* global mean the batch engine uses is
    /// unavailable; any fixed shift keeps the sums conditioned and
    /// z-normalized quantities are shift-invariant).
    pub(crate) center: f64,
    centered: Vec<f64>,
    /// `prefix[i]` = Σ of the first `i` centered values.
    prefix: Vec<f64>,
    /// `prefix_sq[i]` = Σ of the first `i` squared centered values.
    prefix_sq: Vec<f64>,
}

impl StreamStats {
    fn new(initial: &[f64], reserve: usize) -> Self {
        let center = initial.iter().sum::<f64>() / initial.len() as f64;
        let mut this = Self::empty(center, reserve);
        for &v in initial {
            this.push(v);
        }
        this
    }

    /// Rebuilds from a persisted centering offset and the raw series,
    /// replaying the exact push sequence the live engine executed.
    /// Bit-identical to the live accumulation: prefix entries are
    /// write-once, so re-pushing the same values in the same order
    /// reproduces every partial sum exactly.
    pub(crate) fn rebuild(center: f64, raw: &[f64], reserve: usize) -> Self {
        let mut this = Self::empty(center, reserve);
        for &v in raw {
            this.push(v);
        }
        this
    }

    fn empty(center: f64, reserve: usize) -> Self {
        let mut this = Self {
            center,
            centered: Vec::with_capacity(reserve),
            prefix: Vec::with_capacity(reserve + 1),
            prefix_sq: Vec::with_capacity(reserve + 1),
        };
        this.prefix.push(0.0);
        this.prefix_sq.push(0.0);
        this
    }

    #[inline]
    fn push(&mut self, value: f64) {
        let x = value - self.center;
        self.centered.push(x);
        self.prefix.push(self.prefix.last().expect("seeded") + x);
        self.prefix_sq.push(x.mul_add(x, *self.prefix_sq.last().expect("seeded")));
    }

    #[inline]
    fn values(&self) -> &[f64] {
        &self.centered
    }

    /// Centered mean of the window `[offset, offset+length)`.
    #[inline]
    pub(crate) fn mean(&self, offset: usize, length: usize) -> f64 {
        (self.prefix[offset + length] - self.prefix[offset]) / length as f64
    }

    /// Population standard deviation of the window, with the exact
    /// recheck for near-zero variances.
    pub(crate) fn std(&self, offset: usize, length: usize) -> f64 {
        let l = length as f64;
        let mean = self.mean(offset, length);
        let sq = self.prefix_sq[offset + length] - self.prefix_sq[offset];
        let fast = (sq / l - mean * mean).max(0.0);
        if fast >= VAR_RECHECK {
            return fast.sqrt();
        }
        let window = &self.centered[offset..offset + length];
        let exact_mean = window.iter().sum::<f64>() / l;
        (window.iter().map(|x| (x - exact_mean) * (x - exact_mean)).sum::<f64>() / l).sqrt()
    }
}

/// The motif total order of [`top_k_pairs`], as a strict "does entry `x`
/// beat entry `y`" predicate over live profile entries: candidates
/// (finite distance with a neighbor) ascending by `(distance, a, b)` with
/// the entry index as the stable-sort tie-break; non-candidates after
/// every candidate.
fn pair_better(profile: &MatrixProfile) -> impl Fn(u32, u32) -> bool + '_ {
    #[inline]
    fn key(profile: &MatrixProfile, i: u32) -> Option<(f64, usize, usize)> {
        let i = i as usize;
        let j = (*profile.indices.get(i)?)?;
        let d = profile.values[i];
        d.is_finite().then_some(if i <= j { (d, i, j) } else { (d, j, i) })
    }
    move |x, y| match (key(profile, x), key(profile, y)) {
        (Some((dx, ax, bx)), Some((dy, ay, by))) => {
            matches!((dx, ax, bx, x).partial_cmp(&(dy, ay, by, y)), Some(std::cmp::Ordering::Less))
        }
        (Some(_), None) => true,
        _ => false,
    }
}

/// The discord total order of [`top_k_discords`]: finite entries by
/// distance *descending*, entry index ascending as tie-break;
/// non-finite entries last.
fn discord_better(profile: &MatrixProfile) -> impl Fn(u32, u32) -> bool + '_ {
    move |x, y| {
        let (dx, dy) = (profile.values[x as usize], profile.values[y as usize]);
        match (dx.is_finite(), dy.is_finite()) {
            (true, true) => match dx.partial_cmp(&dy).expect("profile distances are never NaN") {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => x < y,
            },
            (true, false) => true,
            _ => false,
        }
    }
}

/// Incremental state of one subsequence length.
#[derive(Debug, Clone)]
pub(crate) struct LengthState {
    pub(crate) length: usize,
    pub(crate) exclusion: usize,
    /// Exact matrix profile at this length (STAMPI semantics: appends
    /// only ever improve entries).
    pub(crate) profile: MatrixProfile,
    /// Dot products of the newest window against every window.
    pub(crate) last_qt: Vec<f64>,
    /// Per-window statistics at this length (windows are immutable, so
    /// these are memoized once per window from the shared prefix sums).
    pub(crate) means: Vec<f64>,
    pub(crate) stds: Vec<f64>,
    /// Tournament tree over profile entries under the motif order;
    /// updated in O(log m) per changed entry as appends improve the
    /// profile, so top-k extraction never re-sorts all entries.
    pub(crate) pair_tree: TournamentTree,
    /// The same, under the discord order.
    pub(crate) discord_tree: TournamentTree,
}

impl LengthState {
    /// Builds both view trees from the current profile — the
    /// construction-time counterpart of the incremental updates in
    /// [`LengthState::offer_new_window`]. O(m) per tree.
    pub(crate) fn built_trees(profile: &MatrixProfile) -> (TournamentTree, TournamentTree) {
        let m = profile.len();
        (
            TournamentTree::build(m, &pair_better(profile)),
            TournamentTree::build(m, &discord_better(profile)),
        )
    }
    /// Offers the new window `new_i` against every admissible older
    /// window (symmetric updates — the shared tail of both append paths).
    ///
    /// Improvements are detected here (the [`MatrixProfile::offer`]
    /// condition, hoisted) so the view trees re-seat exactly the entries
    /// that changed: O(log m) per improved older window, plus one leaf
    /// push for the new window once its final value is known. This is
    /// the dirty set the O(changed·log m) refresh bound rests on.
    fn offer_new_window(&mut self, new_i: usize, mean: f64, std: f64) {
        let m = new_i + 1;
        self.profile.values.push(f64::INFINITY);
        self.profile.indices.push(None);
        let mut tree_updates = 0u64;
        for j in 0..m {
            if new_i.abs_diff(j) <= self.exclusion {
                continue;
            }
            let d = zdist_from_dot(
                self.last_qt[j],
                self.length,
                mean,
                std,
                self.means[j],
                self.stds[j],
            );
            self.profile.offer(new_i, d, j);
            if d < self.profile.values[j] {
                self.profile.offer(j, d, new_i);
                self.pair_tree.update(j, &pair_better(&self.profile));
                self.discord_tree.update(j, &discord_better(&self.profile));
                tree_updates += 2;
            }
        }
        // The new entry enters both trees once, with its final key.
        self.pair_tree.push(&pair_better(&self.profile));
        self.discord_tree.push(&discord_better(&self.profile));
        obs::count!(stream_tree_updates, tree_updates + 2);
    }

    /// The top-k motif pairs of this length, extracted best-first from
    /// the pair tree — identical output to
    /// [`top_k_pairs`]`(&self.profile, k)` (same total order, same
    /// overlap deduplication) in O((k + dups)·log m) instead of a full
    /// sort.
    pub(crate) fn top_pairs(&self, k: usize) -> Vec<MotifPair> {
        if k == 0 {
            return Vec::new();
        }
        let better = pair_better(&self.profile);
        let mut cursor = self.pair_tree.cursor();
        let mut selected: Vec<MotifPair> = Vec::with_capacity(k);
        let mut pops = 0u64;
        while selected.len() < k {
            let Some(i) = self.pair_tree.pop_best(&mut cursor, &better) else { break };
            pops += 1;
            let i = i as usize;
            // Non-candidates sort after every candidate: the first one
            // seen means the candidates are exhausted.
            let Some(j) = self.profile.indices[i] else { break };
            let d = self.profile.values[i];
            if !d.is_finite() {
                break;
            }
            let cand = MotifPair::new(i, j, d, self.length);
            if selected.iter().any(|s| cand.overlaps(s, self.profile.exclusion)) {
                continue;
            }
            selected.push(cand);
        }
        obs::count!(stream_view_tree_pops, pops);
        selected
    }

    /// The top-k discords of this length via the discord tree —
    /// identical output to [`top_k_discords`]`(&self.profile, k)`.
    pub(crate) fn top_discords(&self, k: usize) -> Vec<(usize, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let better = discord_better(&self.profile);
        let mut cursor = self.discord_tree.cursor();
        let mut selected: Vec<(usize, f64)> = Vec::with_capacity(k);
        let mut pops = 0u64;
        while selected.len() < k {
            let Some(i) = self.discord_tree.pop_best(&mut cursor, &better) else { break };
            pops += 1;
            let i = i as usize;
            let d = self.profile.values[i];
            if !d.is_finite() {
                break;
            }
            if selected.iter().any(|&(s, _)| s.abs_diff(i) <= self.profile.exclusion) {
                continue;
            }
            selected.push((i, d));
        }
        obs::count!(stream_view_tree_pops, pops);
        selected
    }

    /// One append at this length, reading the shared product row
    /// (`cross[x] = v·t[x]`). `n` is the series length *including* the
    /// new point.
    ///
    /// The in-place shift `QT(new, j) ← cross[j+ℓ−1] + (QT(prev, j−1) −
    /// t_drop·t[j−1])` runs through the shared SIMD advance lanes of
    /// [`valmod_core::kernel::advance_dots_append`] — byte-identical to
    /// the scalar reverse loop it replaces.
    fn advance(&mut self, stats: &StreamStats, cross: &[f64], n: usize) {
        let l = self.length;
        let t = stats.values();
        let new_i = n - l;
        let dropped = t[new_i - 1];
        let mean = stats.mean(new_i, l);
        let std = stats.std(new_i, l);
        self.means.push(mean);
        self.stds.push(std);
        self.last_qt.push(0.0);
        kernel::advance_dots_append(cross, dropped, t, l, &mut self.last_qt);
        self.last_qt[0] = (0..l).map(|k| t[new_i + k] * t[k]).sum();
        self.offer_new_window(new_i, mean, std);
    }

    /// A whole chunk of `count` appends at this length, back to back.
    /// `base_n` is the series length *before* the chunk (the points are
    /// already in `stats`). The chunk's first-column dots
    /// (`QT_ℓ(new, 0)`, O(ℓ) each when done one by one) are computed
    /// up front as one sliding dot product of the base window against
    /// the chunk's tail — which amortizes into a single FFT
    /// cross-correlation once the chunk is large enough for the
    /// transform to beat `count` direct dots
    /// ([`valmod_fft::sliding_dot_product`]'s cost model decides).
    fn extend(&mut self, stats: &StreamStats, base_n: usize, count: usize) {
        let l = self.length;
        let t = stats.values();
        let first_new = base_n - l + 1;
        let qt0s = sliding_dot_product(&t[..l], &t[first_new..]);
        debug_assert_eq!(qt0s.len(), count);
        for (step, &qt0) in qt0s.iter().enumerate() {
            let n = base_n + step + 1;
            let new_i = n - l;
            let v = t[n - 1];
            let dropped = t[new_i - 1];
            let mean = stats.mean(new_i, l);
            let std = stats.std(new_i, l);
            self.means.push(mean);
            self.stds.push(std);
            self.last_qt.push(0.0);
            // The fused-multiply-add shift form, on the same shared SIMD
            // advance lanes (`QT(new, j) ← v·t[j+ℓ−1] + (QT(prev, j−1) −
            // t_drop·t[j−1])`, one fused head product per element).
            kernel::advance_dots_extend(v, dropped, t, l, &mut self.last_qt);
            self.last_qt[0] = qt0;
            self.offer_new_window(new_i, mean, std);
        }
    }
}

/// The top-k motif pairs of one length, as maintained live.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthMotifs {
    /// Subsequence length.
    pub length: usize,
    /// Top-k pairs under the batch engine's total order (distance asc,
    /// then offsets asc, with overlap deduplication).
    pub pairs: Vec<MotifPair>,
}

/// The derived live views, rebuilt lazily when the engine has advanced.
#[derive(Debug, Clone)]
pub(crate) struct LiveViews {
    version: u64,
    valmap: Valmap,
    motifs: Vec<LengthMotifs>,
    discords: Vec<LengthDiscords>,
}

/// Previously-reported VALMAP state, diffed by [`StreamingValmod::poll_deltas`].
#[derive(Debug, Clone)]
pub(crate) struct EmittedValmap {
    pub(crate) mpn: Vec<f64>,
    pub(crate) ip: Vec<Option<usize>>,
    pub(crate) lp: Vec<usize>,
}

/// An incrementally maintained variable-length motif/discord engine.
///
/// Holds one exact matrix profile per length in `[ℓmin, ℓmax]`, advanced
/// under [`StreamingValmod::append`] / [`StreamingValmod::extend`] in
/// O(n·R) per point with per-append work shared across lengths (see the
/// module docs), plus live VALMAP, motif and discord views with the same
/// tie-break total orders as the batch engine.
///
/// # Example
///
/// ```
/// use valmod_core::ValmodConfig;
/// use valmod_series::gen;
/// use valmod_stream::StreamingValmod;
///
/// let series = gen::sine_mix(400, &[(40.0, 1.0)], 0.05, 3);
/// let config = ValmodConfig::new(16, 20).with_k(2);
/// let mut engine = StreamingValmod::new(&series[..200], config.clone()).unwrap();
/// for &v in &series[200..] {
///     engine.append(v);
/// }
/// // The live VALMAP answers without a batch re-run...
/// assert_eq!(engine.valmap().len(), series.len() - 16 + 1);
/// // ...and the canonical snapshot is bit-identical to a batch run.
/// let batch = valmod_core::run_valmod(&series, &config).unwrap();
/// assert_eq!(engine.snapshot().unwrap().valmap, batch.valmap);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingValmod {
    pub(crate) config: ValmodConfig,
    pub(crate) buffer: RingBuffer,
    pub(crate) stats: StreamStats,
    pub(crate) lengths: Vec<LengthState>,
    /// Shared per-append scratch: the product row `v·t[·]`.
    pub(crate) cross: Vec<f64>,
    /// Monotone state counter; bumps once per append/extend.
    pub(crate) version: u64,
    pub(crate) live: Option<LiveViews>,
    pub(crate) emitted: EmittedValmap,
}

impl StreamingValmod {
    /// Bootstraps from an initial batch with unbounded storage.
    ///
    /// The bootstrap computes each length's profile with the batch STOMP
    /// engine once (O(n²·R)); every subsequent append is O(n·R).
    ///
    /// # Errors
    ///
    /// Configuration errors as in [`valmod_core::run_valmod`]
    /// ([`ValmodConfig::validate`]), or [`SeriesError::NonFinite`] for a
    /// bad bootstrap point.
    pub fn new(initial: &[f64], config: ValmodConfig) -> Result<Self> {
        Self::bootstrap(initial, config, None)
    }

    /// Bootstraps with storage bounded to `capacity` points, allocated up
    /// front — the long-running-service mode: no reallocation after
    /// construction, and appends past capacity fail loudly instead of
    /// evicting history (see [`RingBuffer`]).
    ///
    /// # Errors
    ///
    /// As [`StreamingValmod::new`], plus
    /// [`SeriesError::CapacityExceeded`] when `initial` exceeds
    /// `capacity`.
    pub fn with_capacity(initial: &[f64], config: ValmodConfig, capacity: usize) -> Result<Self> {
        Self::bootstrap(initial, config, Some(capacity))
    }

    fn bootstrap(initial: &[f64], config: ValmodConfig, capacity: Option<usize>) -> Result<Self> {
        let _span = obs::span("stream_bootstrap", obs::Layer::Stream);
        config.validate(initial.len())?;
        if let Some(index) = initial.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index });
        }
        let buffer = match capacity {
            Some(cap) => RingBuffer::bounded(initial, cap)?,
            None => RingBuffer::unbounded(initial),
        };
        let n = initial.len();
        let reserve = capacity.unwrap_or(n);
        let stats = StreamStats::new(initial, reserve);
        let t = stats.values();
        let mut lengths = Vec::with_capacity(config.l_max - config.l_min + 1);
        for length in config.l_min..=config.l_max {
            let m = n - length + 1;
            let per_len_reserve = reserve - length + 1;
            let mut profile = stomp_parallel_in(
                initial,
                length,
                config.exclusion(length),
                config.threads,
                config.pool(),
            )?;
            reserve_extra(&mut profile.values, per_len_reserve);
            reserve_extra(&mut profile.indices, per_len_reserve);
            let mut last_qt = sliding_dot_product(&t[n - length..], t);
            debug_assert_eq!(last_qt.len(), m);
            reserve_extra(&mut last_qt, per_len_reserve);
            let mut means = Vec::with_capacity(per_len_reserve);
            let mut stds = Vec::with_capacity(per_len_reserve);
            for i in 0..m {
                means.push(stats.mean(i, length));
                stds.push(stats.std(i, length));
            }
            let (pair_tree, discord_tree) = LengthState::built_trees(&profile);
            lengths.push(LengthState {
                length,
                exclusion: config.exclusion(length),
                profile,
                last_qt,
                means,
                stds,
                pair_tree,
                discord_tree,
            });
        }
        let mut this = Self {
            config,
            buffer,
            stats,
            lengths,
            cross: Vec::with_capacity(reserve),
            version: 0,
            live: None,
            emitted: EmittedValmap { mpn: Vec::new(), ip: Vec::new(), lp: Vec::new() },
        };
        // Deltas report changes *since bootstrap*: seed the emitted state
        // with the initial VALMAP so the first poll is not a full dump.
        let live = this.refresh_live();
        this.emitted = EmittedValmap {
            mpn: live.valmap.mpn.clone(),
            ip: live.valmap.ip.clone(),
            lp: live.valmap.lp.clone(),
        };
        Ok(this)
    }

    /// The configuration the engine runs under.
    #[must_use]
    pub fn config(&self) -> &ValmodConfig {
        &self.config
    }

    /// The points consumed so far (the exact concatenated series).
    #[must_use]
    pub fn series(&self) -> &[f64] {
        self.buffer.as_slice()
    }

    /// Number of points consumed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the engine holds no points (never true: the bootstrap
    /// requires a valid batch).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The underlying storage (capacity introspection for back-pressure).
    #[must_use]
    pub fn buffer(&self) -> &RingBuffer {
        &self.buffer
    }

    /// Monotone state counter; bumps once per successful append/extend.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rough resident size of the engine's state in bytes, for
    /// multi-tenant memory budgeting: sample storage, the shared prefix
    /// sums, and every length's profile arrays, memoized statistics, dot
    /// row, and view trees. An estimate — allocator overhead and `Vec`
    /// spare capacity outside the dominant arrays are not modeled — but
    /// the O(n·R) terms that matter at budget scale are counted exactly.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        let f = std::mem::size_of::<f64>();
        let mut total = (self.buffer.capacity().unwrap_or_else(|| self.buffer.len())
            + self.cross.len()
            + self.stats.centered.len()
            + self.stats.prefix.len()
            + self.stats.prefix_sq.len())
            * f;
        for state in &self.lengths {
            total += state.profile.values.len() * f;
            total += state.profile.indices.len() * std::mem::size_of::<Option<usize>>();
            total += (state.last_qt.len() + state.means.len() + state.stds.len()) * f;
            total += state.pair_tree.mem_bytes() + state.discord_tree.mem_bytes();
        }
        total as u64
    }

    /// The live exact matrix profile at `length`, or `None` outside
    /// `[ℓmin, ℓmax]`.
    #[must_use]
    pub fn profile(&self, length: usize) -> Option<&MatrixProfile> {
        length
            .checked_sub(self.config.l_min)
            .and_then(|idx| self.lengths.get(idx))
            .map(|s| &s.profile)
    }

    /// Appends one point. O(n·R).
    ///
    /// Thin wrapper over [`StreamingValmod::try_append`] for callers that
    /// validate at the sensor boundary.
    ///
    /// # Panics
    ///
    /// Panics on non-finite input or on a full bounded buffer.
    pub fn append(&mut self, value: f64) {
        self.try_append(value).expect("streaming point must be finite and fit the buffer");
    }

    /// Appends one point and advances every length's profile exactly.
    /// O(n·R): one shared product row + one O(n) recurrence per length.
    ///
    /// # Errors
    ///
    /// [`SeriesError::NonFinite`] for a bad point or
    /// [`SeriesError::CapacityExceeded`] on a full bounded buffer; the
    /// engine state is untouched either way.
    pub fn try_append(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(SeriesError::NonFinite { index: self.buffer.len() });
        }
        let _append_timer = obs::time!(stream_append_seconds);
        self.buffer.try_push(value)?;
        self.stats.push(value);
        let n = self.buffer.len();
        let t = self.stats.values();
        // The shared product row: every length's recurrence reads its
        // `v·t[j+ℓ−1]` term from here instead of multiplying again.
        let v = t[n - 1];
        self.cross.clear();
        self.cross.extend(t.iter().map(|&x| v * x));
        let (stats, cross) = (&self.stats, &self.cross[..]);
        for_each_state(&mut self.lengths, &self.config, n, |state| {
            state.advance(stats, cross, n);
        });
        self.version += 1;
        obs::count!(stream_appends, 1);
        obs::metrics().stream_ring_occupancy.set(n as i64);
        Ok(())
    }

    /// Appends a batch of points. O(B·n·R), with per-length work chunked
    /// (cache-friendly) and first-column dots amortized into one FFT per
    /// length for large chunks.
    ///
    /// Thin wrapper over [`StreamingValmod::try_extend`].
    ///
    /// # Panics
    ///
    /// Panics on non-finite input or on a full bounded buffer.
    pub fn extend(&mut self, points: &[f64]) {
        self.try_extend(points).expect("streaming points must be finite and fit the buffer");
    }

    /// Appends a batch of points atomically: the input is validated and
    /// reserved before any state changes, so a bad point or a full buffer
    /// leaves the engine untouched.
    ///
    /// # Errors
    ///
    /// [`SeriesError::NonFinite`] (with the offending point's would-be
    /// index) or [`SeriesError::CapacityExceeded`].
    pub fn try_extend(&mut self, points: &[f64]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        if let Some(offset) = points.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index: self.buffer.len() + offset });
        }
        let _append_span = obs::span("stream_extend", obs::Layer::Stream);
        let base_n = self.buffer.len();
        self.buffer.try_extend(points)?;
        for &v in points {
            self.stats.push(v);
        }
        let count = points.len();
        let stats = &self.stats;
        for_each_state(&mut self.lengths, &self.config, base_n + count, |state| {
            state.extend(stats, base_n, count);
        });
        self.version += 1;
        obs::count!(stream_appends, count as u64);
        obs::metrics().stream_ring_occupancy.set((base_n + count) as i64);
        Ok(())
    }

    /// The live VALMAP `⟨MPn, IP, LP⟩`, maintained under appends with the
    /// batch engine's semantics (base profile at `ℓmin`, refined by the
    /// top-k pairs of every longer length under the same tie-break total
    /// orders). Rebuilt lazily in O(n·R·log n) after state advances;
    /// cached between appends.
    pub fn valmap(&mut self) -> &Valmap {
        &self.refresh_live().valmap
    }

    /// The live top-k motif pairs of every length, ascending length.
    pub fn motifs(&mut self) -> &[LengthMotifs] {
        &self.refresh_live().motifs
    }

    /// The live top-k discords of every length, ascending length.
    /// `resolved_rows` is 0 on every entry: the streaming engine holds
    /// full profiles, so no on-demand MASS resolution ever happens.
    pub fn discords(&mut self) -> &[LengthDiscords] {
        &self.refresh_live().discords
    }

    /// VALMAP entries that changed since the last poll (or since
    /// bootstrap for the first call), in ascending offset order — the
    /// feed behind the CLI's NDJSON delta stream.
    pub fn poll_deltas(&mut self) -> Vec<ValmapDelta> {
        // Bounded frequency (one per `--every` emission boundary), so a
        // span here gives point-by-point feeds — which never take the
        // `extend` path — a timeline without per-append span cost.
        let _span = obs::span("poll_deltas", obs::Layer::Stream);
        self.refresh_live();
        let live = self.live.as_ref().expect("just refreshed");
        let valmap = &live.valmap;
        let mut deltas = Vec::new();
        for i in 0..valmap.len() {
            let known = i < self.emitted.mpn.len();
            let changed = !known
                || valmap.mpn[i].to_bits() != self.emitted.mpn[i].to_bits()
                || valmap.ip[i] != self.emitted.ip[i]
                || valmap.lp[i] != self.emitted.lp[i];
            // A brand-new entry with no admissible match yet carries no
            // information; skip it until it becomes finite.
            if changed && (known || valmap.mpn[i].is_finite()) {
                deltas.push(ValmapDelta {
                    offset: i,
                    match_offset: valmap.ip[i],
                    length: valmap.lp[i],
                    normalized_distance: valmap.mpn[i],
                });
            }
        }
        self.emitted.mpn.clear();
        self.emitted.mpn.extend_from_slice(&valmap.mpn);
        self.emitted.ip.clear();
        self.emitted.ip.extend_from_slice(&valmap.ip);
        self.emitted.lp.clear();
        self.emitted.lp.extend_from_slice(&valmap.lp);
        obs::metrics().stream_delta_batch.observe(deltas.len() as u64);
        deltas
    }

    /// The canonical batch-grade answer: runs the full VALMOD pipeline
    /// over the buffered series, **bit-identical** to calling
    /// [`valmod_core::run_valmod`] on the concatenated series — see the
    /// module docs for why bit-identity demands re-executing the batch
    /// arithmetic rather than re-ordering incremental state. O(n²·R/p);
    /// call it at reconciliation points, not per append.
    ///
    /// # Errors
    ///
    /// As [`valmod_core::run_valmod`] (cannot fail for a buffer the
    /// bootstrap accepted, since the series only grows).
    pub fn snapshot(&self) -> Result<ValmodOutput> {
        run_valmod(self.buffer.as_slice(), &self.config)
    }

    /// [`StreamingValmod::snapshot`] with anytime previews: when the
    /// engine's configuration carries [`valmod_core::Quality::Anytime`],
    /// `on_preview` observes each improving stage-1 VALMAP (round,
    /// convergence, churn) before the exact output is returned. The final
    /// output is byte-identical to [`StreamingValmod::snapshot`] under
    /// [`valmod_core::Quality::Exact`] — the anytime walk settles to the
    /// same answer, it only reports along the way.
    ///
    /// # Errors
    ///
    /// As [`valmod_core::run_valmod`].
    pub fn snapshot_with_preview(
        &self,
        on_preview: &mut dyn FnMut(&valmod_core::AnytimePreview),
    ) -> Result<ValmodOutput> {
        valmod_core::run_valmod_observed(self.buffer.as_slice(), &self.config, on_preview)
    }

    /// [`StreamingValmod::snapshot_with_preview`] at an explicit anytime
    /// `budget`, overriding the configured quality tier for this call
    /// only. Used by the serve protocol's `preview` verb, where the
    /// client picks the budget per request.
    ///
    /// # Errors
    ///
    /// As [`valmod_core::run_valmod`]; additionally rejects `budget == 0`.
    pub fn snapshot_anytime(
        &self,
        budget: usize,
        on_preview: &mut dyn FnMut(&valmod_core::AnytimePreview),
    ) -> Result<ValmodOutput> {
        let config = self.config.clone().with_quality(valmod_core::Quality::Anytime { budget });
        valmod_core::run_valmod_observed(self.buffer.as_slice(), &config, on_preview)
    }

    /// Screening-tier answer over the buffered series: ranks candidate
    /// lengths and offsets by the admissible lower bound without exact
    /// stage-2 recomputation. See [`valmod_core::screen_series`].
    ///
    /// # Errors
    ///
    /// As [`valmod_core::screen_series`].
    pub fn screen(&self) -> Result<valmod_core::ScreenReport> {
        valmod_core::screen_series(self.buffer.as_slice(), &self.config)
    }

    /// Batch-grade discord answer over the buffered series,
    /// bit-identical to [`valmod_core::variable_length_discords`].
    ///
    /// # Errors
    ///
    /// As [`valmod_core::variable_length_discords`].
    pub fn snapshot_discords(&self) -> Result<Vec<LengthDiscords>> {
        valmod_core::variable_length_discords(self.buffer.as_slice(), &self.config)
    }

    /// Rebuilds the derived views if the engine advanced since the last
    /// rebuild.
    ///
    /// Top-k per length comes from the tournament trees the appends
    /// maintained — O((k + dups)·log m) per length instead of the
    /// O(m log m) per-length sort this used to pay, which is what makes
    /// a [`StreamingValmod::poll_deltas`] after a single append cheap
    /// (the `stream_view_tree_pops` counter against `stream_appends`
    /// documents the gap at runtime).
    fn refresh_live(&mut self) -> &LiveViews {
        if self.live.as_ref().is_none_or(|l| l.version != self.version) {
            obs::count!(stream_view_refreshes, 1);
            let k = self.config.k;
            let mut valmap = Valmap::from_base_profile(&self.lengths[0].profile);
            let mut motifs = Vec::with_capacity(self.lengths.len());
            let mut discords = Vec::with_capacity(self.lengths.len());
            for state in &self.lengths {
                let pairs = state.top_pairs(k);
                debug_assert_eq!(pairs, top_k_pairs(&state.profile, k));
                if state.length > self.config.l_min {
                    valmap.apply_length(state.length, &pairs);
                }
                motifs.push(LengthMotifs { length: state.length, pairs });
                let top = state.top_discords(k);
                debug_assert_eq!(top, top_k_discords(&state.profile, k));
                discords.push(LengthDiscords {
                    length: state.length,
                    discords: top
                        .into_iter()
                        .map(|(offset, nn_distance)| Discord {
                            offset,
                            nn_distance,
                            length: state.length,
                        })
                        .collect(),
                    resolved_rows: 0,
                });
            }
            self.live = Some(LiveViews { version: self.version, valmap, motifs, discords });
        }
        self.live.as_ref().expect("just rebuilt")
    }
}

/// Grows a vector's capacity toward the bounded-storage target without
/// touching its contents (no-op when already large enough).
pub(crate) fn reserve_extra<T>(v: &mut Vec<T>, target: usize) {
    if v.capacity() < target {
        v.reserve_exact(target - v.len());
    }
}

/// Runs `f` over every length state — inline, or chunked across the
/// configuration's persistent [`WorkerPool`] when the total recurrence
/// work justifies fanning out. States are fully independent, so results
/// are identical for every worker count and every pool.
fn for_each_state(
    states: &mut [LengthState],
    config: &ValmodConfig,
    n: usize,
    f: impl Fn(&mut LengthState) + Sync,
) {
    let cells = n.saturating_mul(states.len());
    let workers = config.threads.min(states.len()).min(cells / MIN_CELLS_PER_WORKER).max(1);
    config.pool().for_each_mut(states, workers, |_, state| f(state));
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    #[test]
    fn append_and_extend_agree_with_per_length_stamp_semantics() {
        // The per-length profiles must match per-length batch STOMP after
        // any mix of appends — the generalization of the single-length
        // StreamingProfile guarantee.
        let series = gen::ecg(360, &gen::EcgConfig::default(), 4);
        let config = ValmodConfig::new(16, 22).with_k(2).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..200], config.clone()).unwrap();
        let mut at = 200;
        for chunk in [1usize, 7, 1, 40, 3, 109] {
            let end = (at + chunk).min(series.len());
            engine.extend(&series[at..end]);
            at = end;
        }
        assert_eq!(engine.len(), series.len());
        for length in 16..=22 {
            let batch = valmod_mp::stomp::stomp(&series, length, config.exclusion(length)).unwrap();
            let live = engine.profile(length).unwrap();
            assert_eq!(live.len(), batch.len());
            for i in 0..batch.len() {
                assert!(
                    (live.values[i] - batch.values[i]).abs() < 1e-5,
                    "length {length} entry {i}: live {} vs batch {}",
                    live.values[i],
                    batch.values[i]
                );
            }
        }
    }

    #[test]
    fn thread_count_never_changes_append_results() {
        // n·R here crosses 2× MIN_CELLS_PER_WORKER, so the threads=8
        // engine really fans appends out across workers; per-length
        // states are independent, so results must be byte-identical.
        let series = gen::random_walk(6_800, 17);
        let make = |threads: usize| {
            let config = ValmodConfig::new(64, 83).with_k(1).with_threads(threads);
            let mut engine = StreamingValmod::new(&series[..6_700], config).unwrap();
            for &v in &series[6_700..6_750] {
                engine.append(v);
            }
            engine.extend(&series[6_750..]);
            engine
        };
        let mut serial = make(1);
        let mut parallel = make(8);
        for length in 64..=83 {
            let a = serial.profile(length).unwrap();
            let b = parallel.profile(length).unwrap();
            assert_eq!(a.indices, b.indices, "indices differ at length {length}");
            for i in 0..a.len() {
                assert_eq!(
                    a.values[i].to_bits(),
                    b.values[i].to_bits(),
                    "distance differs at length {length} entry {i}"
                );
            }
        }
        assert_eq!(serial.valmap().mpn, parallel.valmap().mpn);
    }

    #[test]
    fn rejected_points_leave_the_engine_untouched() {
        let series = gen::random_walk(200, 3);
        let config = ValmodConfig::new(8, 12).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..150], config).unwrap();
        let before = engine.clone();
        for bad in [f64::NAN, f64::INFINITY] {
            match engine.try_append(bad) {
                Err(SeriesError::NonFinite { index }) => assert_eq!(index, 150),
                other => panic!("expected NonFinite, got {other:?}"),
            }
            // A bad point mid-batch must not half-apply the batch.
            match engine.try_extend(&[series[150], bad, series[151]]) {
                Err(SeriesError::NonFinite { index }) => assert_eq!(index, 151),
                other => panic!("expected NonFinite, got {other:?}"),
            }
        }
        assert_eq!(engine.len(), before.len());
        assert_eq!(engine.version(), before.version());
        for length in 8..=12 {
            assert_eq!(engine.profile(length), before.profile(length));
        }
        engine.append(series[150]);
        assert_eq!(engine.len(), 151);
    }

    #[test]
    fn bounded_storage_applies_back_pressure() {
        let series = gen::random_walk(120, 9);
        let config = ValmodConfig::new(8, 10).with_threads(1);
        let mut engine = StreamingValmod::with_capacity(&series[..100], config, 110).unwrap();
        assert_eq!(engine.buffer().remaining(), Some(10));
        engine.extend(&series[100..110]);
        assert!(engine.buffer().is_full());
        assert!(matches!(
            engine.try_append(series[110]),
            Err(SeriesError::CapacityExceeded { capacity: 110 })
        ));
        // The engine stays fully queryable at capacity.
        assert!(engine.valmap().best_entry().is_some());
        assert_eq!(engine.snapshot().unwrap().valmap.len(), 110 - 8 + 1);
    }

    #[test]
    fn deltas_report_changes_since_the_last_poll() {
        let pattern: Vec<f64> =
            (0..24).map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin()).collect();
        let (series, _) = gen::planted_pair(420, &pattern, &[60, 330], 0.01, 8);
        let config = ValmodConfig::new(24, 28).with_k(2).with_threads(1);
        // Bootstrap before the second motif instance exists.
        let mut engine = StreamingValmod::new(&series[..240], config).unwrap();
        assert!(engine.poll_deltas().is_empty(), "nothing changed since bootstrap");
        engine.extend(&series[240..]);
        let deltas = engine.poll_deltas();
        assert!(!deltas.is_empty(), "the second motif instance must surface");
        assert!(deltas.iter().any(|d| d.offset.abs_diff(60) <= 28));
        for d in &deltas {
            assert!(d.normalized_distance.is_finite());
            assert!((24..=28).contains(&d.length));
        }
        // Polling again without an append reports nothing.
        assert!(engine.poll_deltas().is_empty());
    }

    #[test]
    fn tree_views_match_full_sorts_after_streaming() {
        // The O(changed·log m) extraction must reproduce the sort-based
        // top-k bit for bit — same total order, same dedup — after any
        // mix of appends, across k values.
        let series = gen::ecg(520, &gen::EcgConfig::default(), 21);
        let config = ValmodConfig::new(16, 24).with_k(3).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..300], config).unwrap();
        let mut at = 300;
        for chunk in [1usize, 13, 1, 1, 90, 114] {
            let end = (at + chunk).min(series.len());
            engine.extend(&series[at..end]);
            at = end;
            for state in &engine.lengths {
                for k in [1usize, 3, 8] {
                    assert_eq!(
                        state.top_pairs(k),
                        top_k_pairs(&state.profile, k),
                        "pairs diverge at length {} k {k}",
                        state.length
                    );
                    assert_eq!(
                        state.top_discords(k),
                        top_k_discords(&state.profile, k),
                        "discords diverge at length {} k {k}",
                        state.length
                    );
                }
            }
        }
    }

    #[test]
    fn version_tracks_advances_and_views_are_cached() {
        let series = gen::sine_mix(300, &[(30.0, 1.0)], 0.05, 2);
        let config = ValmodConfig::new(12, 14).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..260], config).unwrap();
        assert_eq!(engine.version(), 0);
        engine.append(series[260]);
        engine.extend(&series[261..280]);
        assert_eq!(engine.version(), 2);
        let best_before = engine.valmap().best_entry();
        assert_eq!(engine.valmap().best_entry(), best_before, "cached view is stable");
        assert_eq!(engine.motifs().len(), 3);
        assert_eq!(engine.discords().len(), 3);
        assert!(engine.profile(11).is_none());
        assert!(engine.profile(15).is_none());
    }
}
