//! Warmup, bootstrap, and skipped-sample accounting for one stream.
//!
//! Both the CLI's `valmod stream` and the crash-recovery tests need the
//! same small state machine in front of [`StreamingValmod`]: buffer
//! points until the warmup target, bootstrap the engine, then append —
//! while counting (and rate-limiting warnings for) non-finite samples
//! that sensors inevitably emit. [`SessionCore`] is that machine,
//! output-agnostic so library callers and the NDJSON-emitting CLI share
//! one implementation.

use valmod_core::ValmodConfig;
use valmod_series::{Result, SeriesError};

use crate::StreamingValmod;

/// What [`SessionCore::feed`] did with one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// Buffered toward the warmup target; no engine yet.
    Buffered,
    /// This sample completed the warmup: the engine now exists
    /// (bootstrapped over the whole warmup buffer).
    Bootstrapped,
    /// Appended to the live engine.
    Appended,
    /// Non-finite sample skipped. `warn` follows the rate-limit policy
    /// ([`skip_warns`]): emit a diagnostic only when set.
    Skipped {
        /// Whether this skip is one the rate limiter lets through.
        warn: bool,
    },
    /// Consumed by the resume fast-forward ([`SessionCore::set_fast_forward`]):
    /// the recovered engine already holds this sample (or, for a
    /// non-finite one, already skipped it — the skip is re-counted
    /// silently so the final summary matches an uninterrupted run's).
    Replayed,
}

/// Whether the `count`-th skipped sample (1-based) warrants a warning:
/// the first 10 all do, after that every 1000th — enough to notice a
/// persistently bad feed without drowning stderr at sensor rates.
#[must_use]
pub fn skip_warns(count: u64) -> bool {
    count <= 10 || count.is_multiple_of(1000)
}

/// The pre-engine / live-engine state machine of one stream session.
#[derive(Debug)]
pub struct SessionCore {
    config: ValmodConfig,
    capacity: Option<usize>,
    warmup: usize,
    bootstrap: Vec<f64>,
    engine: Option<StreamingValmod>,
    skipped: u64,
    fast_forward: u64,
}

impl SessionCore {
    /// A fresh session: buffers `warmup` finite points, then bootstraps
    /// with the given storage bound.
    #[must_use]
    pub fn new(config: ValmodConfig, warmup: usize, capacity: Option<usize>) -> Self {
        Self {
            config,
            capacity,
            warmup,
            bootstrap: Vec::with_capacity(warmup),
            engine: None,
            skipped: 0,
            fast_forward: 0,
        }
    }

    /// The smallest warmup the configuration can bootstrap from: room
    /// for two non-trivially-matching windows of every length
    /// (`ValmodConfig::validate`'s formula).
    #[must_use]
    pub fn min_warmup(config: &ValmodConfig) -> usize {
        config.l_max + config.exclusion(config.l_max) + 1
    }

    /// Applies the warmup policy front-ends share: the requested target
    /// (if any), raised to [`SessionCore::min_warmup`]'s floor.
    #[must_use]
    pub fn effective_warmup(config: &ValmodConfig, requested: Option<usize>) -> usize {
        requested.unwrap_or(0).max(Self::min_warmup(config))
    }

    /// The policy constructor front-ends (the CLI's `stream`, the serve
    /// daemon's tenants) share: computes the effective warmup and
    /// validates that a bounded capacity can hold it.
    ///
    /// # Errors
    ///
    /// [`SeriesError::CapacityTooSmall`] when `capacity` cannot hold the
    /// effective warmup — the session could never bootstrap.
    pub fn with_options(
        config: ValmodConfig,
        requested_warmup: Option<usize>,
        capacity: Option<usize>,
    ) -> Result<Self> {
        let warmup = Self::effective_warmup(&config, requested_warmup);
        if let Some(cap) = capacity {
            if cap < warmup {
                return Err(SeriesError::CapacityTooSmall { capacity: cap, warmup });
            }
        }
        Ok(Self::new(config, warmup, capacity))
    }

    /// A session resumed around an already-recovered engine (the warmup
    /// happened in a previous life).
    #[must_use]
    pub fn resumed(engine: StreamingValmod, warmup: usize) -> Self {
        let config = engine.config().clone();
        let capacity = engine.buffer().capacity();
        Self {
            config,
            capacity,
            warmup,
            bootstrap: Vec::new(),
            engine: Some(engine),
            skipped: 0,
            fast_forward: 0,
        }
    }

    /// Arms the resume fast-forward: the next `n` *finite* samples are
    /// consumed as [`FeedOutcome::Replayed`] (a re-read input prefix the
    /// recovered engine already holds); non-finite samples encountered
    /// while armed are re-counted as silent skips without consuming the
    /// budget, mirroring the original run's accounting.
    pub fn set_fast_forward(&mut self, n: u64) {
        self.fast_forward = n;
    }

    /// Feeds one sample: buffers, bootstraps, appends, or skips it.
    ///
    /// # Errors
    ///
    /// Bootstrap errors from [`StreamingValmod::new`] /
    /// [`StreamingValmod::with_capacity`], or
    /// [`SeriesError::CapacityExceeded`] from a full bounded buffer —
    /// back-pressure is the caller's decision, never a silent drop.
    /// Non-finite samples are *not* errors: they are counted and
    /// reported via [`FeedOutcome::Skipped`].
    pub fn feed(&mut self, value: f64) -> Result<FeedOutcome> {
        if self.fast_forward > 0 {
            if value.is_finite() {
                self.fast_forward -= 1;
            } else {
                self.skipped += 1;
            }
            return Ok(FeedOutcome::Replayed);
        }
        if !value.is_finite() {
            self.skipped += 1;
            return Ok(FeedOutcome::Skipped { warn: skip_warns(self.skipped) });
        }
        match &mut self.engine {
            None => {
                self.bootstrap.push(value);
                if self.bootstrap.len() < self.warmup {
                    return Ok(FeedOutcome::Buffered);
                }
                let engine = match self.capacity {
                    Some(cap) => {
                        StreamingValmod::with_capacity(&self.bootstrap, self.config.clone(), cap)?
                    }
                    None => StreamingValmod::new(&self.bootstrap, self.config.clone())?,
                };
                self.bootstrap = Vec::new();
                self.engine = Some(engine);
                Ok(FeedOutcome::Bootstrapped)
            }
            Some(engine) => match engine.try_append(value) {
                Ok(()) => Ok(FeedOutcome::Appended),
                Err(SeriesError::NonFinite { .. }) => unreachable!("finiteness checked above"),
                Err(e) => Err(e),
            },
        }
    }

    /// The live engine, once bootstrapped.
    #[must_use]
    pub fn engine(&self) -> Option<&StreamingValmod> {
        self.engine.as_ref()
    }

    /// Mutable access to the live engine (polling views advances caches).
    pub fn engine_mut(&mut self) -> Option<&mut StreamingValmod> {
        self.engine.as_mut()
    }

    /// Whether the engine has bootstrapped.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.engine.is_some()
    }

    /// Points buffered toward the warmup target (0 once live).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.bootstrap.len()
    }

    /// The warmup target.
    #[must_use]
    pub fn warmup(&self) -> usize {
        self.warmup
    }

    /// Non-finite samples skipped so far.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Accounts skips that happened outside [`SessionCore::feed`] — the
    /// resume fast-forward re-encounters (and silently re-skips) the
    /// non-finite samples of the already-recovered prefix, so the final
    /// summary's `skipped` matches an uninterrupted run's.
    pub fn add_skipped(&mut self, n: u64) {
        self.skipped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    fn config() -> ValmodConfig {
        ValmodConfig::new(8, 10).with_k(1).with_threads(1)
    }

    #[test]
    fn warmup_then_bootstrap_then_append() {
        let series = gen::random_walk(40, 5);
        let mut s = SessionCore::new(config(), 30, None);
        for &v in &series[..29] {
            assert_eq!(s.feed(v).unwrap(), FeedOutcome::Buffered);
        }
        assert!(!s.is_live());
        assert_eq!(s.buffered(), 29);
        assert_eq!(s.feed(series[29]).unwrap(), FeedOutcome::Bootstrapped);
        assert!(s.is_live());
        for &v in &series[30..] {
            assert_eq!(s.feed(v).unwrap(), FeedOutcome::Appended);
        }
        assert_eq!(s.engine().unwrap().len(), 40);
    }

    #[test]
    fn non_finite_samples_are_counted_and_rate_limited() {
        let series = gen::random_walk(35, 6);
        let mut s = SessionCore::new(config(), 30, None);
        for &v in &series[..32] {
            s.feed(v).unwrap();
        }
        let mut warned = 0u64;
        for i in 0..2500u64 {
            match s.feed(if i % 2 == 0 { f64::NAN } else { f64::INFINITY }).unwrap() {
                FeedOutcome::Skipped { warn } => {
                    if warn {
                        warned += 1;
                    }
                }
                other => panic!("expected skip, got {other:?}"),
            }
        }
        assert_eq!(s.skipped(), 2500);
        // First 10, then the 1000th and 2000th.
        assert_eq!(warned, 12);
        // Skips never advanced the engine.
        assert_eq!(s.engine().unwrap().len(), 32);
        s.add_skipped(7);
        assert_eq!(s.skipped(), 2507);
    }

    #[test]
    fn skips_during_warmup_do_not_count_toward_bootstrap() {
        let series = gen::random_walk(31, 7);
        let mut s = SessionCore::new(config(), 30, None);
        for &v in &series[..20] {
            s.feed(v).unwrap();
        }
        assert!(matches!(s.feed(f64::NAN).unwrap(), FeedOutcome::Skipped { warn: true }));
        assert_eq!(s.buffered(), 20, "a skipped sample must not pad the bootstrap");
        for &v in &series[20..29] {
            s.feed(v).unwrap();
        }
        assert_eq!(s.feed(series[29]).unwrap(), FeedOutcome::Bootstrapped);
    }

    #[test]
    fn capacity_back_pressure_propagates() {
        let series = gen::random_walk(33, 8);
        let mut s = SessionCore::new(config(), 30, Some(32));
        for &v in &series[..32] {
            s.feed(v).unwrap();
        }
        assert!(matches!(s.feed(series[32]), Err(SeriesError::CapacityExceeded { capacity: 32 })));
    }

    #[test]
    fn resumed_sessions_skip_the_warmup() {
        let series = gen::random_walk(40, 9);
        let engine = StreamingValmod::new(&series[..35], config()).unwrap();
        let mut s = SessionCore::resumed(engine, 30);
        assert!(s.is_live());
        assert_eq!(s.feed(series[35]).unwrap(), FeedOutcome::Appended);
        assert_eq!(s.engine().unwrap().len(), 36);
    }

    #[test]
    fn with_options_applies_the_warmup_floor_and_capacity_check() {
        let cfg = config(); // l_max 10, exclusion 3 → floor 14
        assert_eq!(SessionCore::min_warmup(&cfg), 14);
        assert_eq!(SessionCore::with_options(cfg.clone(), None, None).unwrap().warmup(), 14);
        assert_eq!(SessionCore::with_options(cfg.clone(), Some(5), None).unwrap().warmup(), 14);
        assert_eq!(SessionCore::with_options(cfg.clone(), Some(40), None).unwrap().warmup(), 40);
        assert!(matches!(
            SessionCore::with_options(cfg, Some(40), Some(20)),
            Err(SeriesError::CapacityTooSmall { capacity: 20, warmup: 40 })
        ));
    }

    #[test]
    fn fast_forward_replays_the_recovered_prefix() {
        let series = gen::random_walk(40, 9);
        let engine = StreamingValmod::new(&series[..35], config()).unwrap();
        let mut s = SessionCore::resumed(engine, 30);
        s.set_fast_forward(3);
        assert_eq!(s.feed(series[0]).unwrap(), FeedOutcome::Replayed);
        // A non-finite sample is silently re-counted, not consumed.
        assert_eq!(s.feed(f64::NAN).unwrap(), FeedOutcome::Replayed);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.feed(series[1]).unwrap(), FeedOutcome::Replayed);
        assert_eq!(s.feed(series[2]).unwrap(), FeedOutcome::Replayed);
        // Budget exhausted: the next sample appends for real.
        assert_eq!(s.feed(series[35]).unwrap(), FeedOutcome::Appended);
        assert_eq!(s.engine().unwrap().len(), 36);
    }

    #[test]
    fn warn_policy_matches_spec() {
        let warned: Vec<u64> = (1..=3000).filter(|&c| skip_warns(c)).collect();
        assert_eq!(warned[..10], [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(&warned[10..], &[1000, 2000, 3000]);
    }
}
