//! Many tenants, one pool: the multi-tenant session layer.
//!
//! A serving daemon hosts many independent streams — *tenants* — each
//! with its own [`SessionCore`] (warmup → bootstrap → append), its own
//! durability directory, and its own metrics, all sharing **one**
//! [`WorkerPool`]. [`TenantRegistry`] owns that mapping and enforces the
//! shared-resource policy:
//!
//! * **Fair scheduling** — every tenant gets its own bulk-priority
//!   submission lane ([`WorkerPool::lane`]); entering it around the
//!   engine's feed path routes all of the tenant's pool batches through
//!   the round-robin scheduler, so one firehose tenant cannot starve
//!   its neighbors.
//! * **Backpressure** — appends are admitted through the lane's
//!   bounded ticket queue; saturation surfaces as the typed
//!   [`TenantError::Saturated`], never a panic or a silent drop. A
//!   global memory budget over the tenants' estimated engine sizes
//!   ([`StreamingValmod::approx_mem_bytes`]) gates ingest the same way
//!   ([`TenantError::OverBudget`]).
//! * **Durability** — with a checkpoint root configured, each tenant
//!   persists into its own namespaced directory
//!   ([`CheckpointStore::open_tenant`]), with generations staggered
//!   across tenants by [`CheckpointScheduler`] so checkpoint write
//!   bursts never align.
//!
//! # Exactness under multi-tenancy
//!
//! The registry never touches engine math: a tenant's engine is fed
//! exactly the samples its clients append, in order, under a per-tenant
//! lock. Lanes decide only *when* pool jobs run, and every engine
//! computation is bit-identical across thread counts and pool layouts —
//! so each tenant's valmap, deltas, and snapshot are byte-identical to a
//! dedicated single-stream run, regardless of how many neighbors it has
//! (proptested in `tests/serve_tenants.rs`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use valmod_core::ValmodConfig;
use valmod_mp::{LaneHandle, LanePriority, LaneSaturated, WorkerPool};
use valmod_obs as obs;
use valmod_series::SeriesError;

use crate::persist::{CheckpointScheduler, CheckpointStore};
use crate::session::{FeedOutcome, SessionCore};

/// Shared-resource policy of a [`TenantRegistry`].
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Requested warmup target; `None` applies [`SessionCore::min_warmup`].
    pub warmup: Option<usize>,
    /// Per-tenant storage bound, in points (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Global memory budget across all tenants, in estimated bytes
    /// (`None` = unbounded). Enforced at batch granularity: a batch that
    /// starts under budget runs to completion.
    pub mem_budget: Option<u64>,
    /// Per-tenant lane depth: concurrent admitted operations before
    /// [`TenantError::Saturated`].
    pub lane_depth: usize,
    /// Durability root; each tenant persists under
    /// `<root>/tenants/<escaped name>/` (`None` = in-memory only).
    pub checkpoint_root: Option<PathBuf>,
    /// Accepted samples between periodic checkpoints, staggered across
    /// tenants (0 = checkpoint only at bootstrap, recovery seal, and
    /// [`TenantRegistry::checkpoint_all`]).
    pub checkpoint_every: u64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self {
            warmup: None,
            capacity: None,
            mem_budget: None,
            lane_depth: 64,
            checkpoint_root: None,
            checkpoint_every: 0,
        }
    }
}

/// Typed per-tenant failure of a registry operation — the serving
/// front-end maps these onto protocol errors.
#[derive(Debug)]
pub enum TenantError {
    /// The tenant's lane is at its depth limit (queue backpressure).
    Saturated(LaneSaturated),
    /// The global memory budget cannot admit more ingest.
    OverBudget {
        /// Estimated bytes currently used across all tenants.
        used: u64,
        /// The configured budget.
        budget: u64,
    },
    /// No tenant with this name is open.
    Unknown(String),
    /// An engine, session, or durability error.
    Series(SeriesError),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Saturated(s) => write!(f, "{s}"),
            Self::OverBudget { used, budget } => {
                write!(f, "memory budget exhausted: ~{used} of {budget} bytes in use")
            }
            Self::Unknown(name) => write!(f, "unknown tenant {name:?}"),
            Self::Series(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Saturated(s) => Some(s),
            Self::Series(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeriesError> for TenantError {
    fn from(e: SeriesError) -> Self {
        Self::Series(e)
    }
}

/// What [`TenantRegistry::append`] did with one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendReport {
    /// Finite samples consumed (buffered toward warmup or appended).
    pub accepted: u64,
    /// Non-finite samples skipped in this batch.
    pub skipped: u64,
    /// Whether this batch completed the warmup (the engine now exists).
    pub bootstrapped: bool,
    /// Checkpoint generations written during this batch.
    pub checkpoints: u64,
    /// Engine length after the batch (0 before bootstrap).
    pub len: usize,
    /// Whether the engine is live.
    pub live: bool,
}

/// What [`TenantRegistry::open`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenReport {
    /// The tenant already existed in this registry.
    Existing,
    /// A fresh tenant (no durable state).
    Created,
    /// Recovered from the tenant's checkpoint directory; carries the
    /// restored generation and the sample count.
    Recovered {
        /// Generation the recovery restored from.
        generation: u64,
        /// Engine length after recovery (checkpoint + journal replay).
        len: usize,
    },
}

/// One tenant's slot: the lane is lock-free to read, the session state
/// is behind its own mutex so tenants never contend with each other.
struct Slot {
    name: String,
    lane: LaneHandle,
    scheduler: CheckpointScheduler,
    state: Mutex<TenantState>,
}

struct TenantState {
    session: SessionCore,
    store: Option<CheckpointStore>,
    /// Accepted post-bootstrap appends — the checkpoint scheduler clock.
    appends: u64,
    /// Last published memory estimate (the share this tenant holds of
    /// the registry's global total).
    mem_bytes: i64,
}

/// The multi-tenant session registry (see module docs).
pub struct TenantRegistry {
    pool: Arc<WorkerPool>,
    base: ValmodConfig,
    policy: TenantPolicy,
    tenants: Mutex<HashMap<String, Arc<Slot>>>,
    /// Join-order counter feeding the checkpoint stagger (never reused,
    /// so a close/reopen cycle keeps phases spread).
    next_slot: Mutex<u64>,
    /// Sum of every tenant's published `mem_bytes` estimate.
    mem_total: AtomicI64,
}

impl TenantRegistry {
    /// A registry whose tenants all dispatch onto `pool` (the base
    /// configuration's own pool setting is overridden).
    #[must_use]
    pub fn new(pool: Arc<WorkerPool>, base: ValmodConfig, policy: TenantPolicy) -> Self {
        let base = base.with_pool(Arc::clone(&pool));
        Self {
            pool,
            base,
            policy,
            tenants: Mutex::new(HashMap::new()),
            next_slot: Mutex::new(0),
            mem_total: AtomicI64::new(0),
        }
    }

    /// The shared worker pool (for front-ends that need query lanes).
    #[must_use]
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The base configuration tenants are created from.
    #[must_use]
    pub fn config(&self) -> &ValmodConfig {
        &self.base
    }

    /// Opens (or re-attaches to) the named tenant. With a durability
    /// root configured, a tenant directory holding previous state is
    /// recovered — bit-identical to the uninterrupted engine — and
    /// immediately sealed into a fresh checkpoint generation, so the
    /// follow-on journal never appends to a possibly-torn tail.
    ///
    /// # Errors
    ///
    /// [`TenantError::Series`] for store, recovery, or configuration
    /// errors (including a capacity below the warmup floor).
    pub fn open(&self, name: &str) -> Result<OpenReport, TenantError> {
        self.open_with_priority(name, LanePriority::Bulk)
    }

    /// [`TenantRegistry::open`] with an explicit scheduling lane: the
    /// tenant's appends are admitted through a lane of the given
    /// [`LanePriority`], so interactive tenants can jump the pool's queue
    /// ahead of bulk backfills. The priority binds at creation; reopening
    /// an existing tenant returns [`OpenReport::Existing`] without
    /// changing its lane.
    ///
    /// # Errors
    ///
    /// As [`TenantRegistry::open`].
    pub fn open_with_priority(
        &self,
        name: &str,
        priority: LanePriority,
    ) -> Result<OpenReport, TenantError> {
        let mut map = self.tenants.lock().expect("tenant map poisoned");
        if map.contains_key(name) {
            return Ok(OpenReport::Existing);
        }
        let config = self.base.clone();
        let warmup = SessionCore::effective_warmup(&config, self.policy.warmup);
        let mut store = match &self.policy.checkpoint_root {
            Some(root) => Some(CheckpointStore::open_tenant(root, name)?),
            None => None,
        };
        let mut report = OpenReport::Created;
        let session = match store.as_mut().map(|s| s.recover(&config)).transpose()? {
            Some(Some(rec)) => {
                report =
                    OpenReport::Recovered { generation: rec.generation, len: rec.engine.len() };
                let session = SessionCore::resumed(rec.engine, warmup);
                // Seal the recovered state into a fresh generation.
                let store = store.as_mut().expect("recovery implies a store");
                store.checkpoint(session.engine().expect("recovered sessions are live"))?;
                session
            }
            _ => SessionCore::with_options(config, self.policy.warmup, self.policy.capacity)?,
        };
        let slot_ix = {
            let mut next = self.next_slot.lock().expect("slot counter poisoned");
            let ix = *next;
            *next += 1;
            ix
        };
        let mem = session.engine().map_or(0, |e| i64::try_from(e.approx_mem_bytes()).unwrap_or(0));
        self.mem_total.fetch_add(mem, Ordering::Relaxed);
        obs::tenant(name).mem_bytes.set(mem);
        let slot = Arc::new(Slot {
            name: name.to_string(),
            lane: self.pool.lane(priority, self.policy.lane_depth),
            scheduler: CheckpointScheduler::new(self.policy.checkpoint_every, slot_ix),
            state: Mutex::new(TenantState { session, store, appends: 0, mem_bytes: mem }),
        });
        map.insert(name.to_string(), slot);
        Ok(report)
    }

    /// Open tenant names, sorted (stable for rendering and shutdown).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let map = self.tenants.lock().expect("tenant map poisoned");
        let mut names: Vec<String> = map.keys().cloned().collect();
        names.sort();
        names
    }

    /// Estimated bytes in use across all tenants.
    #[must_use]
    pub fn mem_used(&self) -> u64 {
        u64::try_from(self.mem_total.load(Ordering::Relaxed)).unwrap_or(0)
    }

    fn slot(&self, name: &str) -> Result<Arc<Slot>, TenantError> {
        let map = self.tenants.lock().expect("tenant map poisoned");
        map.get(name).cloned().ok_or_else(|| TenantError::Unknown(name.to_string()))
    }

    /// Feeds a batch of samples to the named tenant through its fair
    /// lane: admission is gated by the lane's depth limit and the global
    /// memory budget, each sample runs the shared [`SessionCore`] feed
    /// path, journal/checkpoint durability rides the batch, and the
    /// tenant's memory share and metrics are republished at the end.
    ///
    /// # Errors
    ///
    /// [`TenantError::Saturated`] (queue depth), [`TenantError::OverBudget`]
    /// (memory), [`TenantError::Unknown`], or [`TenantError::Series`]
    /// (capacity overflow and durability I/O; the tenant stays open).
    pub fn append(&self, name: &str, samples: &[f64]) -> Result<AppendReport, TenantError> {
        let slot = self.slot(name)?;
        let metrics = obs::tenant(&slot.name);
        let _ticket = slot.lane.try_admit().map_err(|e| {
            metrics.backpressure.add(1);
            TenantError::Saturated(e)
        })?;
        if let Some(budget) = self.policy.mem_budget {
            let used = self.mem_used();
            if used > budget {
                metrics.backpressure.add(1);
                return Err(TenantError::OverBudget { used, budget });
            }
        }
        let mut guard = slot.state.lock().expect("tenant state poisoned");
        let TenantState { session, store, appends, mem_bytes } = &mut *guard;
        let mut report = AppendReport::default();
        let feed_result: Result<(), TenantError> = (|| {
            let _lane = slot.lane.enter();
            let mut journaled = false;
            for &value in samples {
                match session.feed(value)? {
                    FeedOutcome::Buffered => report.accepted += 1,
                    FeedOutcome::Skipped { .. } => report.skipped += 1,
                    FeedOutcome::Replayed => {}
                    FeedOutcome::Bootstrapped => {
                        report.accepted += 1;
                        report.bootstrapped = true;
                        // Generation 0 captures the bootstrap, so the
                        // journal always has a checkpoint to replay onto.
                        if let Some(store) = store.as_mut() {
                            store.checkpoint(session.engine().expect("just bootstrapped"))?;
                            report.checkpoints += 1;
                        }
                    }
                    FeedOutcome::Appended => {
                        report.accepted += 1;
                        *appends += 1;
                        if let Some(store) = store.as_mut() {
                            store.journal_sample(value)?;
                            journaled = true;
                            if slot.scheduler.due(*appends) {
                                store.checkpoint(session.engine().expect("live"))?;
                                report.checkpoints += 1;
                            }
                        }
                    }
                }
            }
            // Durability batch boundary: what this call accepted, a
            // restart can reconstruct.
            if journaled {
                if let Some(store) = store.as_mut() {
                    store.sync_journal()?;
                }
            }
            Ok(())
        })();
        report.live = session.is_live();
        report.len = session.engine().map_or(0, |e| e.len());
        // Republish the tenant's memory share even on error — partial
        // batches still grew the engine.
        let est = session.engine().map_or(0, |e| i64::try_from(e.approx_mem_bytes()).unwrap_or(0));
        self.mem_total.fetch_add(est - *mem_bytes, Ordering::Relaxed);
        *mem_bytes = est;
        metrics.appends.add(report.accepted);
        metrics.checkpoints.add(report.checkpoints);
        metrics.mem_bytes.set(est);
        feed_result?;
        Ok(report)
    }

    /// Runs `f` against the tenant's session with the tenant's lane
    /// entered, so any pool work the closure triggers (view refreshes,
    /// snapshots) routes through the fair scheduler. Queries are not
    /// ticket-gated: reads should stay answerable while ingest is
    /// saturated.
    ///
    /// # Errors
    ///
    /// [`TenantError::Unknown`] when no such tenant is open.
    pub fn with_session<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut SessionCore) -> T,
    ) -> Result<T, TenantError> {
        let slot = self.slot(name)?;
        obs::tenant(&slot.name).queries.add(1);
        let mut guard = slot.state.lock().expect("tenant state poisoned");
        let _lane = slot.lane.enter();
        Ok(f(&mut guard.session))
    }

    /// Syncs journals and writes a final checkpoint generation for every
    /// live tenant — the graceful-shutdown path. Returns `(name,
    /// generation)` per checkpointed tenant, sorted by name.
    ///
    /// # Errors
    ///
    /// The first [`TenantError::Series`] hit; earlier tenants' state is
    /// already durable at that point.
    pub fn checkpoint_all(&self) -> Result<Vec<(String, u64)>, TenantError> {
        let mut done = Vec::new();
        for name in self.names() {
            let slot = self.slot(&name)?;
            let mut guard = slot.state.lock().expect("tenant state poisoned");
            let TenantState { session, store, .. } = &mut *guard;
            if let (Some(store), Some(engine)) = (store.as_mut(), session.engine()) {
                store.sync_journal()?;
                let generation = store.checkpoint(engine)?;
                obs::tenant(&name).checkpoints.add(1);
                done.push((name.clone(), generation));
            }
        }
        Ok(done)
    }

    /// Closes the named tenant: syncs and checkpoints its durable state
    /// (if live), then drops the slot — its lane unregisters and any
    /// queued jobs spill to the pool's default queue. Returns whether
    /// the tenant existed.
    ///
    /// # Errors
    ///
    /// [`TenantError::Series`] from the final sync/checkpoint; the
    /// tenant stays open so the caller can retry.
    pub fn close(&self, name: &str) -> Result<bool, TenantError> {
        let Ok(slot) = self.slot(name) else { return Ok(false) };
        {
            let mut guard = slot.state.lock().expect("tenant state poisoned");
            let TenantState { session, store, mem_bytes, .. } = &mut *guard;
            if let (Some(store), Some(engine)) = (store.as_mut(), session.engine()) {
                store.sync_journal()?;
                store.checkpoint(engine)?;
            }
            self.mem_total.fetch_sub(*mem_bytes, Ordering::Relaxed);
            obs::tenant(name).mem_bytes.set(0);
        }
        let mut map = self.tenants.lock().expect("tenant map poisoned");
        Ok(map.remove(name).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    fn base() -> ValmodConfig {
        ValmodConfig::new(8, 12).with_k(2).with_threads(2)
    }

    fn registry(policy: TenantPolicy) -> TenantRegistry {
        TenantRegistry::new(Arc::new(WorkerPool::new()), base(), policy)
    }

    #[test]
    fn tenants_bootstrap_and_answer_independently() {
        let reg = registry(TenantPolicy::default());
        assert_eq!(reg.open("a").unwrap(), OpenReport::Created);
        assert_eq!(reg.open("b").unwrap(), OpenReport::Created);
        assert_eq!(reg.open("a").unwrap(), OpenReport::Existing);
        let series_a = gen::random_walk(60, 1);
        let series_b = gen::ecg(60, &gen::EcgConfig::default(), 2);
        let ra = reg.append("a", &series_a).unwrap();
        let rb = reg.append("b", &series_b).unwrap();
        assert!(ra.bootstrapped && rb.bootstrapped);
        assert_eq!((ra.len, rb.len), (60, 60));
        // Each tenant's answers are byte-identical to a dedicated
        // single-stream session fed the same samples.
        for (name, series) in [("a", &series_a), ("b", &series_b)] {
            let mut dedicated =
                SessionCore::with_options(base(), None, None).expect("valid options");
            for &v in series.iter() {
                dedicated.feed(v).unwrap();
            }
            let want = dedicated.engine_mut().unwrap().valmap().clone();
            let got = reg.with_session(name, |s| s.engine_mut().unwrap().valmap().clone()).unwrap();
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got.mpn), bits(&want.mpn), "tenant {name}");
        }
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(matches!(
            reg.append("nobody", &[1.0]),
            Err(TenantError::Unknown(n)) if n == "nobody"
        ));
    }

    #[test]
    fn the_memory_budget_gates_ingest_with_a_typed_error() {
        let reg = registry(TenantPolicy { mem_budget: Some(1), ..TenantPolicy::default() });
        reg.open("t").unwrap();
        let series = gen::random_walk(80, 3);
        // First batch bootstraps (the gate admits while under budget)...
        let first = reg.append("t", &series[..40]).unwrap();
        assert!(first.live);
        assert!(reg.mem_used() > 1);
        // ...after which the estimate exceeds the budget and ingest is
        // refused, typed, with the engine untouched.
        let err = reg.append("t", &series[40..]).unwrap_err();
        assert!(matches!(err, TenantError::OverBudget { budget: 1, .. }), "{err}");
        assert_eq!(reg.with_session("t", |s| s.engine().unwrap().len()).unwrap(), 40);
    }

    #[test]
    fn skipped_and_capacity_semantics_flow_through() {
        let reg = registry(TenantPolicy { capacity: Some(40), ..TenantPolicy::default() });
        reg.open("t").unwrap();
        let series = gen::random_walk(40, 4);
        let mut samples = series.clone();
        samples.insert(10, f64::NAN);
        let report = reg.append("t", &samples).unwrap();
        assert_eq!(report.accepted, 40);
        assert_eq!(report.skipped, 1);
        // The 41st finite point overflows the bounded buffer: typed, and
        // everything accepted so far stays queryable.
        let err = reg.append("t", &[0.5]).unwrap_err();
        assert!(matches!(err, TenantError::Series(SeriesError::CapacityExceeded { .. })), "{err}");
        assert_eq!(reg.with_session("t", |s| s.engine().unwrap().len()).unwrap(), 40);
    }

    #[test]
    fn a_new_registry_recovers_tenants_from_the_checkpoint_root() {
        let root =
            std::env::temp_dir().join(format!("valmod-registry-recover-{}", std::process::id()));
        let policy = || TenantPolicy {
            checkpoint_root: Some(root.clone()),
            checkpoint_every: 8,
            ..TenantPolicy::default()
        };
        let series = gen::random_walk(70, 6);
        {
            let reg = registry(policy());
            assert_eq!(reg.open("t").unwrap(), OpenReport::Created);
            let report = reg.append("t", &series).unwrap();
            // gen 0 at bootstrap plus staggered periodic generations.
            assert!(report.checkpoints >= 2, "{report:?}");
            let done = reg.checkpoint_all().unwrap();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].0, "t");
        }
        let reg = registry(policy());
        match reg.open("t").unwrap() {
            OpenReport::Recovered { len, .. } => assert_eq!(len, 70),
            other => panic!("expected recovery, got {other:?}"),
        }
        // The recovered tenant keeps appending exactly where it left off.
        let more = gen::random_walk(5, 7);
        let report = reg.append("t", &more).unwrap();
        assert_eq!(report.len, 75);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn closing_a_tenant_releases_its_memory_share() {
        let reg = registry(TenantPolicy::default());
        reg.open("t").unwrap();
        reg.append("t", &gen::random_walk(60, 5)).unwrap();
        assert!(reg.mem_used() > 0);
        assert!(reg.close("t").unwrap());
        assert_eq!(reg.mem_used(), 0);
        assert!(!reg.close("t").unwrap());
        assert!(reg.names().is_empty());
    }
}
