//! VALMAP delta events and their NDJSON wire format.
//!
//! A monitoring consumer does not want the whole VALMAP after every
//! append — it wants the entries that *changed*. The engine's
//! [`crate::StreamingValmod::poll_deltas`] produces [`ValmapDelta`]
//! records; this module renders them as NDJSON (one JSON object per
//! line), the format the `valmod stream` CLI subcommand emits:
//!
//! ```text
//! {"event":"bootstrap","points":256,"l_min":16,"l_max":24,"entries":241}
//! {"event":"update","n":257,"offset":12,"match_offset":180,"length":20,"mpn":0.4121932}
//! {"event":"summary","points":512,"offset":12,"match_offset":180,"length":20,"mpn":0.2218}
//! ```
//!
//! `mpn` is the paper's length-normalized distance `d/√ℓ` (the value
//! stored in VALMAP's `MPn` vector), `match_offset` mirrors `IP`, and
//! `length` mirrors `LP`. Numbers are emitted with shortest round-trip
//! precision, so piping the stream back in reproduces the exact floats.

/// One changed VALMAP entry: offset `offset` now has its best match at
/// `match_offset`, found at subsequence length `length`, with
/// length-normalized distance `normalized_distance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValmapDelta {
    /// Entry (subsequence offset) that changed.
    pub offset: usize,
    /// Offset of the new best match (`None` when no admissible match
    /// exists yet).
    pub match_offset: Option<usize>,
    /// Length at which the best match was found (VALMAP's `LP`).
    pub length: usize,
    /// The new length-normalized distance (VALMAP's `MPn`).
    pub normalized_distance: f64,
}

/// Renders a finite float with shortest round-trip precision, or `null`
/// for the non-finite placeholders JSON cannot carry.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".into(), |j| j.to_string())
}

/// The NDJSON line announcing a completed bootstrap.
#[must_use]
pub fn bootstrap_line(points: usize, l_min: usize, l_max: usize, entries: usize) -> String {
    format!(
        "{{\"event\":\"bootstrap\",\"points\":{points},\"l_min\":{l_min},\"l_max\":{l_max},\
         \"entries\":{entries}}}"
    )
}

/// The NDJSON line for one anytime preview round, where `n` is the
/// number of points the previewed snapshot covers. Rides the same
/// channel as [`update_line`]; `convergence` is the fraction of stage-1
/// cells retired and `churn` the fraction of VALMAP entries the round
/// changed.
#[must_use]
pub fn preview_line(n: usize, preview: &valmod_core::AnytimePreview) -> String {
    format!(
        "{{\"event\":\"preview\",\"n\":{n},\"round\":{},\"rounds\":{},\"cells_retired\":{},\
         \"cells_total\":{},\"convergence\":{},\"churn\":{},\"settled\":{}}}",
        preview.round,
        preview.rounds,
        preview.cells_retired,
        preview.cells_total,
        json_f64(preview.convergence()),
        json_f64(preview.churn),
        preview.settled(),
    )
}

/// The NDJSON line for one VALMAP update, where `n` is the number of
/// points consumed when the update was observed.
#[must_use]
pub fn update_line(n: usize, delta: &ValmapDelta) -> String {
    format!(
        "{{\"event\":\"update\",\"n\":{n},\"offset\":{},\"match_offset\":{},\"length\":{},\
         \"mpn\":{}}}",
        delta.offset,
        json_opt(delta.match_offset),
        delta.length,
        json_f64(delta.normalized_distance),
    )
}

/// Input-side health stats of a finished stream session, carried on the
/// summary line next to `skipped`: transient stdin read retries
/// attempted and the largest backoff delay one read needed. Sourced from
/// the session's `valmod_stream_read_retries_total` /
/// `valmod_stream_max_backoff_ms` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryIo {
    /// Transient stdin read errors retried over the whole session.
    pub read_retries: u64,
    /// Largest backoff delay (milliseconds) any single read climbed to.
    pub max_backoff_ms: u64,
}

/// The final NDJSON line: the best VALMAP entry after `points` points
/// (`best` as returned by [`valmod_core::Valmap::best_entry`]), plus the
/// count of non-finite samples the session skipped and the input-side
/// retry/backoff stats.
#[must_use]
pub fn summary_line(
    points: usize,
    skipped: u64,
    io: SummaryIo,
    best: Option<(usize, usize, usize, f64)>,
) -> String {
    let tail = format!(
        "\"skipped\":{skipped},\"read_retries\":{},\"max_backoff_ms\":{}",
        io.read_retries, io.max_backoff_ms
    );
    match best {
        Some((offset, match_offset, length, mpn)) => format!(
            "{{\"event\":\"summary\",\"points\":{points},\"offset\":{offset},\
             \"match_offset\":{match_offset},\"length\":{length},\"mpn\":{},{tail}}}",
            json_f64(mpn),
        ),
        None => format!(
            "{{\"event\":\"summary\",\"points\":{points},\"offset\":null,\
             \"match_offset\":null,\"length\":null,\"mpn\":null,{tail}}}"
        ),
    }
}

/// The NDJSON line announcing a durably published checkpoint: generation
/// `generation` captured the engine after `points` points.
#[must_use]
pub fn checkpoint_line(points: usize, generation: u64) -> String {
    format!("{{\"event\":\"checkpoint\",\"points\":{points},\"generation\":{generation}}}")
}

/// The NDJSON line announcing a successful crash recovery: checkpoint
/// generation `generation` restored, `replayed` journal samples replayed
/// on top, `fell_back` newer corrupt generations skipped, for a
/// recovered engine of `points` points.
#[must_use]
pub fn recovered_line(points: usize, generation: u64, replayed: u64, fell_back: u64) -> String {
    format!(
        "{{\"event\":\"recovered\",\"points\":{points},\"generation\":{generation},\
         \"replayed\":{replayed},\"fell_back\":{fell_back}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_line_is_valid_ndjson() {
        let d = ValmapDelta {
            offset: 12,
            match_offset: Some(180),
            length: 20,
            normalized_distance: 0.5,
        };
        let line = update_line(257, &d);
        assert_eq!(
            line,
            "{\"event\":\"update\",\"n\":257,\"offset\":12,\"match_offset\":180,\
             \"length\":20,\"mpn\":0.5}"
        );
        assert!(!line.contains('\n'), "NDJSON lines must be single-line");
    }

    #[test]
    fn missing_match_and_infinite_distance_render_as_null() {
        let d = ValmapDelta {
            offset: 3,
            match_offset: None,
            length: 16,
            normalized_distance: f64::INFINITY,
        };
        let line = update_line(10, &d);
        assert!(line.contains("\"match_offset\":null"));
        assert!(line.contains("\"mpn\":null"));
    }

    #[test]
    fn floats_round_trip_through_the_wire_format() {
        let v = 0.123_456_789_012_345_6_f64.sin();
        let d = ValmapDelta { offset: 0, match_offset: Some(1), length: 8, normalized_distance: v };
        let line = update_line(1, &d);
        let rendered = line.split("\"mpn\":").nth(1).unwrap().trim_end_matches('}');
        assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn bootstrap_and_summary_lines_are_well_formed() {
        let b = bootstrap_line(256, 16, 24, 241);
        assert!(b.starts_with("{\"event\":\"bootstrap\"") && b.ends_with('}'));
        assert!(b.contains("\"points\":256") && b.contains("\"entries\":241"));
        let io = SummaryIo { read_retries: 4, max_backoff_ms: 64 };
        let s = summary_line(512, 3, io, Some((12, 180, 20, 0.25)));
        assert!(s.contains("\"event\":\"summary\"") && s.contains("\"mpn\":0.25"));
        assert!(s.contains("\"skipped\":3"));
        assert!(s.contains("\"read_retries\":4") && s.contains("\"max_backoff_ms\":64"));
        let empty = summary_line(5, 0, SummaryIo::default(), None);
        assert!(empty.contains("\"offset\":null") && empty.contains("\"skipped\":0"));
        assert!(empty.contains("\"read_retries\":0") && empty.contains("\"max_backoff_ms\":0"));
    }

    #[test]
    fn durability_event_lines_are_well_formed() {
        let c = checkpoint_line(512, 7);
        assert_eq!(c, "{\"event\":\"checkpoint\",\"points\":512,\"generation\":7}");
        let r = recovered_line(480, 6, 68, 1);
        assert!(r.starts_with("{\"event\":\"recovered\"") && r.ends_with('}'));
        assert!(r.contains("\"points\":480") && r.contains("\"generation\":6"));
        assert!(r.contains("\"replayed\":68") && r.contains("\"fell_back\":1"));
        for line in [c, r] {
            assert!(!line.contains('\n'));
        }
    }
}
