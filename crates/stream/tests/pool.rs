//! Worker-pool reuse coverage: one persistent [`WorkerPool`] shared by
//! interleaved batch, streaming, and discord runs must be byte-identical
//! to cold runs (a fresh pool per call), for every thread count.
//!
//! This exercises the pool's *work-queue reuse* — jobs from stage 1,
//! stage 2, discord classification, and streaming appends all flowing
//! through the same parked threads, batch after batch — not merely its
//! first use. The pool only carries threads, never math, so any
//! divergence here would be a dispatch bug (lost job, wrong index, stale
//! slot), exactly the failure modes a queue-reuse bug would produce.
//!
//! The second property adds the stage-2 *pipeline* dimension: with the
//! software pipeline on, each batch run keeps a non-blockingly submitted
//! advance batch in flight while classification batches run on the same
//! (shared, reused) pool — so pipeline on/off × thread count must stay
//! byte-identical even when the pool's queue interleaves pipelined jobs
//! with streaming appends, and including runs whose MASS fallback forces
//! the pipeline's drain-and-sync path.

use proptest::prelude::*;
use std::sync::Arc;
use valmod_core::{run_valmod, variable_length_discords, ValmodConfig, ValmodOutput};
use valmod_mp::WorkerPool;
use valmod_series::gen;
use valmod_stream::StreamingValmod;

/// Byte-level digest of everything a batch run decides: per-length pairs
/// as (a, b, distance bits, length), plus the VALMAP `MPn` bits.
type BatchBits = (Vec<(usize, usize, u64, usize)>, Vec<u64>);

fn batch_bits(out: &ValmodOutput) -> BatchBits {
    let pairs = out
        .per_length
        .iter()
        .flat_map(|r| r.pairs.iter().map(|p| (p.a, p.b, p.distance.to_bits(), p.length)))
        .collect();
    let mpn = out.valmap.mpn.iter().map(|v| v.to_bits()).collect();
    (pairs, mpn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn reused_pool_is_byte_identical_to_cold_runs(seed in 0u64..100_000, kind in 0usize..3) {
        let series = match kind {
            0 => gen::random_walk(560, seed),
            1 => gen::ecg(560, &gen::EcgConfig::default(), seed),
            _ => gen::sine_mix(560, &[(40.0, 1.0), (90.0, 0.4)], 0.05, seed),
        };
        // ONE pool for every "shared" call below — reused across thread
        // counts and across engine kinds, interleaved.
        let shared = Arc::new(WorkerPool::new());
        let config = |pool: Arc<WorkerPool>, threads: usize| {
            ValmodConfig::new(16, 24)
                .with_k(2)
                .with_profile_size(4)
                .with_threads(threads)
                .with_pool(pool)
        };
        for threads in [1usize, 2, 3, 8] {
            let shared_cfg = config(Arc::clone(&shared), threads);
            // Interleave the three engines on the shared pool: batch,
            // then streaming (bootstrap + chunked extends + appends),
            // then discords, then the streaming live view.
            let batch_shared = run_valmod(&series, &shared_cfg).unwrap();
            let mut stream_shared =
                StreamingValmod::new(&series[..400], shared_cfg.clone()).unwrap();
            for chunk in series[400..].chunks(37) {
                stream_shared.extend(chunk);
            }
            let discords_shared = variable_length_discords(&series, &shared_cfg).unwrap();
            let live_shared: Vec<u64> =
                stream_shared.valmap().mpn.iter().map(|v| v.to_bits()).collect();

            // Cold: a fresh single-use pool per call.
            let batch_cold = run_valmod(&series, &config(Arc::new(WorkerPool::new()), threads))
                .unwrap();
            let mut stream_cold = StreamingValmod::new(
                &series[..400],
                config(Arc::new(WorkerPool::new()), threads),
            )
            .unwrap();
            for chunk in series[400..].chunks(37) {
                stream_cold.extend(chunk);
            }
            let discords_cold =
                variable_length_discords(&series, &config(Arc::new(WorkerPool::new()), threads))
                    .unwrap();
            let live_cold: Vec<u64> =
                stream_cold.valmap().mpn.iter().map(|v| v.to_bits()).collect();

            prop_assert_eq!(
                batch_bits(&batch_shared),
                batch_bits(&batch_cold),
                "batch diverged on the reused pool at {} threads",
                threads
            );
            prop_assert_eq!(
                live_shared,
                live_cold,
                "streaming live VALMAP diverged on the reused pool at {} threads",
                threads
            );
            for (a, b) in discords_shared.iter().zip(&discords_cold) {
                prop_assert_eq!(a.length, b.length);
                prop_assert_eq!(a.resolved_rows, b.resolved_rows);
                for (da, db) in a.discords.iter().zip(&b.discords) {
                    prop_assert_eq!(
                        (da.offset, da.nn_distance.to_bits()),
                        (db.offset, db.nn_distance.to_bits()),
                        "discord diverged on the reused pool at {} threads",
                        threads
                    );
                }
            }
            // Per-length streaming profiles, bit for bit.
            for length in 16..=24 {
                let a = stream_shared.profile(length).unwrap();
                let b = stream_cold.profile(length).unwrap();
                prop_assert_eq!(&a.indices, &b.indices);
                let av: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
                let bv: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(av, bv, "profile diverged at length {}", length);
            }
        }
    }

    #[test]
    fn pipelined_stage2_on_a_reused_pool_is_byte_identical(
        seed in 0u64..100_000,
        p in 1usize..4,
    ) {
        // ECG with a tiny partial-profile size: the lower bounds give out
        // within a few lengths, so most runs hit the MASS fallback — the
        // pipeline's drain-and-sync — while the shared pool's queue also
        // carries streaming-append jobs between the pipelined batches.
        let series = gen::ecg(640, &gen::EcgConfig::default(), seed);
        let shared = Arc::new(WorkerPool::new());
        let config = |pool: Arc<WorkerPool>, threads: usize, pipelined: bool| {
            let mut c = ValmodConfig::new(20, 32)
                .with_k(2)
                .with_profile_size(p)
                .with_threads(threads)
                .with_pool(pool);
            c.stage2_pipeline = pipelined;
            c
        };
        let base = run_valmod(&series, &config(Arc::new(WorkerPool::new()), 1, false)).unwrap();
        let recomputed: usize = base.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
        let mut stream = StreamingValmod::new(
            &series[..500],
            config(Arc::clone(&shared), 2, true),
        ).unwrap();
        for threads in [1usize, 2, 8] {
            for pipelined in [false, true] {
                let out =
                    run_valmod(&series, &config(Arc::clone(&shared), threads, pipelined)).unwrap();
                prop_assert_eq!(
                    batch_bits(&out),
                    batch_bits(&base),
                    "pipelined={} threads={} diverged (recomputed rows in base: {})",
                    pipelined, threads, recomputed
                );
                for (a, b) in out.per_length.iter().zip(&base.per_length) {
                    prop_assert_eq!(
                        (a.stats.valid_rows, a.stats.recomputed_rows),
                        (b.stats.valid_rows, b.stats.recomputed_rows),
                        "pruning stats diverged at length {} (pipelined={}, threads={})",
                        a.length, pipelined, threads
                    );
                }
                // Keep streaming jobs flowing through the same queue the
                // pipelined advance batches use.
                if stream.len() < series.len() {
                    let at = stream.len();
                    let end = (at + 23).min(series.len());
                    stream.extend(&series[at..end]);
                }
            }
        }
        // The streaming engine's canonical snapshot still matches a batch
        // run bit for bit after sharing its pool with pipelined stage 2.
        let snap = stream.snapshot().unwrap();
        let direct = run_valmod(
            stream.series(),
            &config(Arc::new(WorkerPool::new()), 2, true),
        ).unwrap();
        prop_assert_eq!(batch_bits(&snap), batch_bits(&direct));
    }
}
