//! Stream-layer leg of the cross-kernel differential harness: the
//! streaming engine's canonical snapshot must be byte-identical across
//! every lane variant the process can dispatch. This differences the
//! streaming-specific kernels (`advance_dots_extend` / `advance_dots_append`
//! blocked-backward shifts, plus the stage-1 re-walks they feed) that the
//! batch-only `kernel_differential` suite cannot reach through `run_valmod`.

use valmod_core::testkit::{force_level, test_levels};
use valmod_core::ValmodConfig;
use valmod_series::gen;
use valmod_stream::StreamingValmod;

/// Runs one warmup + interleaved append/extend schedule under a forced
/// lane level and returns the canonical snapshot, reduced to bit patterns.
#[allow(clippy::type_complexity)]
fn snapshot_bits(
    series: &[f64],
    config: &ValmodConfig,
    level: valmod_fft::simd::SimdLevel,
) -> (Vec<u64>, Vec<(usize, Vec<(u32, u32, u64)>)>) {
    let _g = force_level(level);
    let warmup = series.len() / 2;
    let mut engine = StreamingValmod::new(&series[..warmup], config.clone()).unwrap();
    let mut at = warmup;
    let mut state = 0x9e3779b97f4a7c15u64;
    while at < series.len() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if state.is_multiple_of(3) {
            engine.append(series[at]);
            at += 1;
        } else {
            let end = (at + 2 + (state >> 33) as usize % 11).min(series.len());
            engine.extend(&series[at..end]);
            at = end;
        }
    }
    let snap = engine.snapshot().unwrap();
    let profile = snap
        .base_profile
        .values
        .iter()
        .map(|d| d.to_bits())
        .chain(snap.base_profile.indices.iter().map(|i| i.map_or(u64::MAX, |j| j as u64)))
        .collect();
    let lengths = snap
        .per_length
        .iter()
        .map(|lm| {
            (
                lm.length,
                lm.pairs.iter().map(|p| (p.a as u32, p.b as u32, p.distance.to_bits())).collect(),
            )
        })
        .collect();
    (profile, lengths)
}

#[test]
fn streaming_snapshot_is_lane_invariant() {
    for (kind, seed) in [(0usize, 11u64), (1, 23), (2, 57)] {
        let n = 300 + (seed as usize % 60);
        let series = match kind {
            0 => gen::random_walk(n, seed),
            1 => gen::ecg(n, &gen::EcgConfig::default(), seed),
            _ => gen::sine_mix(n, &[(n as f64 / 6.0, 1.0), (n as f64 / 2.5, 0.3)], 0.05, seed),
        };
        let config = ValmodConfig::new(10, 14).with_k(3).with_profile_size(4).with_threads(2);

        let levels = test_levels();
        let reference = snapshot_bits(&series, &config, levels[0]);
        for level in &levels[1..] {
            let got = snapshot_bits(&series, &config, *level);
            assert_eq!(
                got, reference,
                "streaming snapshot diverged at level {level:?} (kind {kind}, seed {seed})"
            );
        }
    }
}
