//! Crash-recovery harness: kill the durable streaming pipeline at
//! *every* instrumented I/O operation and prove the recovered engine is
//! bit-identical to a reference engine that never crashed.
//!
//! The pipeline under test mirrors the CLI's `--checkpoint-dir` loop:
//! bootstrap → checkpoint generation 0 → per-point append + journal,
//! with VALMAP polls and journal fsyncs every [`POLL_EVERY`] appends and
//! a checkpoint every [`CKPT_EVERY`]. A [`valmod_series::faults`] plan
//! turns the k-th I/O operation (and everything after it) into an error
//! — observationally a SIGKILL at that point — and recovery must then
//! reconstruct a state whose VALMAP bits, forward `poll_deltas`, and
//! batch snapshot checksum all match the uninterrupted reference.
//!
//! `PROPTEST_CASES` scales the sweep like the proptest suites: the
//! default run strides the crash points across the lane-level × worker
//! combos (every operation is still killed under *some* combo); the
//! nightly roll (`PROPTEST_CASES > 1`) enumerates every crash point
//! under every combo, over that many distinct series.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use valmod_core::testkit::{force_level, output_checksum, test_levels};
use valmod_core::ValmodConfig;
use valmod_series::faults::{self, FaultKind, FaultPlan};
use valmod_series::{gen, Result, SeriesError};
use valmod_stream::{CheckpointStore, StreamingValmod, ValmapDelta};

const N: usize = 120;
const WARMUP: usize = 60;
const CKPT_EVERY: usize = 12;
const POLL_EVERY: usize = 6;

/// `PROPTEST_CASES` with a default, the same knob the proptest suites
/// honor — the nightly roll raises it for exhaustive sweeps.
fn cases(default: usize) -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("valmod-persist-{}-{tag}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config_with_threads(threads: usize) -> ValmodConfig {
    ValmodConfig::new(8, 12).with_k(2).with_threads(threads)
}

/// A deliberately hostile series: a planted motif pair, a flat
/// (zero-variance) window inside the bootstrap, and a huge-magnitude
/// spike in the appended tail — the inputs most likely to expose a
/// restore that is "close" but not bit-exact.
fn stressed_series(seed: u64) -> Vec<f64> {
    let pattern: Vec<f64> =
        (0..10).map(|i| (f64::from(i) / 10.0 * std::f64::consts::TAU).sin()).collect();
    let (mut series, _) = gen::planted_pair(N, &pattern, &[N / 5, 3 * N / 4], 0.02, seed);
    for v in &mut series[40..48] {
        *v = 2.5;
    }
    series[70] = 1e150;
    series
}

/// The durable pipeline under test — the same schedule the CLI runs:
/// checkpoint generation g lands after `WARMUP + g·CKPT_EVERY` points,
/// polls and journal fsyncs every `POLL_EVERY` appends.
fn durable_run(dir: &Path, series: &[f64], config: &ValmodConfig) -> Result<StreamingValmod> {
    let mut store = CheckpointStore::open(dir)?;
    let mut engine = StreamingValmod::new(&series[..WARMUP], config.clone())?;
    store.checkpoint(&engine)?;
    for (i, &v) in series[WARMUP..].iter().enumerate() {
        engine.try_append(v)?;
        store.journal_sample(v)?;
        if (i + 1) % POLL_EVERY == 0 {
            let _ = engine.poll_deltas();
            store.sync_journal()?;
        }
        if (i + 1) % CKPT_EVERY == 0 {
            store.checkpoint(&engine)?;
        }
    }
    store.sync_journal()?;
    Ok(engine)
}

/// A never-crashed engine at `upto` points whose emitted VALMAP matches
/// a session that polled on the pipeline's schedule up to `polled_upto`
/// (polls after the recovered checkpoint died with the crashed process).
fn reference_engine(
    series: &[f64],
    config: &ValmodConfig,
    upto: usize,
    polled_upto: usize,
) -> StreamingValmod {
    let mut engine = StreamingValmod::new(&series[..WARMUP], config.clone()).unwrap();
    for (i, &v) in series[WARMUP..upto].iter().enumerate() {
        engine.try_append(v).unwrap();
        if (i + 1).is_multiple_of(POLL_EVERY) && WARMUP + i < polled_upto {
            let _ = engine.poll_deltas();
        }
    }
    engine
}

fn valmap_bits(engine: &mut StreamingValmod) -> (Vec<u64>, Vec<Option<usize>>, Vec<usize>) {
    let v = engine.valmap();
    (v.mpn.iter().map(|x| x.to_bits()).collect(), v.ip.clone(), v.lp.clone())
}

fn delta_bits(deltas: &[ValmapDelta]) -> Vec<(usize, Option<usize>, usize, u64)> {
    deltas
        .iter()
        .map(|d| (d.offset, d.match_offset, d.length, d.normalized_distance.to_bits()))
        .collect()
}

/// What the reference predicts for a recovery at `(upto, generation)`:
/// the VALMAP bits at the recovery point, then — after feeding the rest
/// of the series — the forward deltas and the batch snapshot checksum.
type Prediction =
    ((Vec<u64>, Vec<Option<usize>>, Vec<usize>), Vec<(usize, Option<usize>, usize, u64)>, u64);

/// Recovers from `dir`, checks the recovery's own bookkeeping, and
/// proves the engine bit-identical to the cached reference — at the
/// recovery point *and* after racing both to the end of the series.
fn verify_recovery(
    dir: &Path,
    series: &[f64],
    config: &ValmodConfig,
    predictions: &mut HashMap<(usize, u64), Prediction>,
    context: &str,
) -> Option<(usize, u64)> {
    let mut store = CheckpointStore::open(dir).unwrap();
    let rec = store.recover(config).unwrap_or_else(|e| panic!("{context}: recover failed: {e}"))?;
    let mut engine = rec.engine;
    let upto = engine.len();
    let polled_upto = WARMUP + usize::try_from(rec.generation).unwrap() * CKPT_EVERY;
    assert!(
        (WARMUP..=N).contains(&upto),
        "{context}: recovered {upto} points outside [{WARMUP}, {N}]"
    );
    assert_eq!(
        upto,
        polled_upto + usize::try_from(rec.replayed).unwrap(),
        "{context}: checkpoint position + replay does not add up"
    );

    let key = (upto, rec.generation);
    let (at_recovery, forward_deltas, final_sum) = predictions.entry(key).or_insert_with(|| {
        let mut r = reference_engine(series, config, upto, polled_upto);
        let at_recovery = valmap_bits(&mut r);
        for &v in &series[upto..] {
            r.try_append(v).unwrap();
        }
        let deltas = delta_bits(&r.poll_deltas());
        let sum = output_checksum(&r.snapshot().unwrap());
        (at_recovery, deltas, sum)
    });
    assert_eq!(&valmap_bits(&mut engine), at_recovery, "{context}: VALMAP diverged at recovery");
    for &v in &series[upto..] {
        engine.try_append(v).unwrap();
    }
    assert_eq!(
        &delta_bits(&engine.poll_deltas()),
        forward_deltas,
        "{context}: forward deltas diverged after recovery"
    );
    assert_eq!(
        output_checksum(&engine.snapshot().unwrap()),
        *final_sum,
        "{context}: snapshot checksum diverged after recovery"
    );
    Some(key)
}

#[test]
fn kill_at_every_point_recovers_bit_identically() {
    let combos: Vec<(valmod_fft::simd::SimdLevel, usize)> =
        test_levels().into_iter().flat_map(|level| [(level, 1), (level, 8)]).collect();
    // Each extra round is a full kill-matrix over a fresh series (~6 s);
    // cap the PROPTEST_CASES scaling so the generic high-case CI rolls
    // stay bounded — 8 exhaustive rounds is already a deep sweep.
    let rounds = cases(1).min(8);
    for round in 0..rounds {
        let series = stressed_series(3 + round as u64);
        for (i, &(level, threads)) in combos.iter().enumerate() {
            let _simd = force_level(level);
            let config = config_with_threads(threads);
            let context = format!("round {round}, {level:?} x{threads} workers");

            // Enumerate the operation schedule with a counting plan.
            let total = {
                let dir = fresh_dir("count");
                let guard = faults::arm(FaultPlan::observe(None));
                durable_run(&dir, &series, &config).unwrap();
                let total = guard.hits();
                drop(guard);
                std::fs::remove_dir_all(&dir).unwrap();
                total
            };
            assert!(total > 60, "{context}: expected a rich op schedule, found {total} ops");

            // Default run: stride the crash points across combos so the
            // union still kills every operation. Nightly (rounds > 1):
            // every operation under every combo.
            let (stride, offset) = if rounds > 1 { (1, 0) } else { (combos.len(), i) };
            let mut predictions: HashMap<(usize, u64), Prediction> = HashMap::new();
            let mut recovered_none = 0u64;
            for k in ((offset as u64)..total).step_by(stride) {
                let dir = fresh_dir("kill");
                let crashed = {
                    let _fault = faults::arm(FaultPlan::crash_at(None, k));
                    durable_run(&dir, &series, &config)
                };
                assert!(crashed.is_err(), "{context}: crash at op {k} did not abort");
                let key = verify_recovery(
                    &dir,
                    &series,
                    &config,
                    &mut predictions,
                    &format!("{context}, crash at op {k}"),
                );
                if key.is_none() {
                    // Only crashes before generation 0 published may
                    // leave nothing to recover.
                    recovered_none += 1;
                    assert!(k < 8, "{context}: op {k} left no recoverable state");
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
            assert!(
                recovered_none <= 6,
                "{context}: {recovered_none} crash points lost the whole session"
            );
        }
    }
}

#[test]
fn torn_writes_recover_to_a_valid_prefix() {
    let series = stressed_series(11);
    let config = config_with_threads(2);
    // Tear journal records (header and mid-stream) and checkpoint images
    // at several widths: every torn write must leave a recoverable
    // prefix, never a hard failure.
    let plans = [
        ("journal.write", 0u64, 9usize), // gen-0 journal header, torn mid-line
        ("journal.write", 7, 0),         // a record that lands zero bytes
        ("journal.write", 13, 20),       // a record torn mid-checksum
        ("ckpt.write", 2, 4096),         // a checkpoint image torn mid-body
    ];
    for (site, after, width) in plans {
        let dir = fresh_dir("torn");
        let context = format!("torn {site} op {after} at {width} bytes");
        let crashed = {
            let _fault = faults::arm(FaultPlan {
                site: Some(site.into()),
                after,
                times: u64::MAX,
                kind: FaultKind::ShortWrite(width),
            });
            durable_run(&dir, &series, &config)
        };
        assert!(crashed.is_err(), "{context}: torn write did not abort");
        let mut predictions = HashMap::new();
        let recovered = verify_recovery(&dir, &series, &config, &mut predictions, &context);
        assert!(recovered.is_some(), "{context}: no recoverable state");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_one_generation() {
    let series = stressed_series(5);
    let config = config_with_threads(1);
    for damage in ["flip", "truncate"] {
        let dir = fresh_dir("fallback");
        let mut uninterrupted = durable_run(&dir, &series, &config).unwrap();

        let mut ckpts: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        ckpts.sort();
        assert_eq!(ckpts.len(), 2, "retention should keep exactly two generations");
        let newest = ckpts.last().unwrap();
        let bytes = std::fs::read(newest).unwrap();
        match damage {
            "flip" => {
                let mut bad = bytes;
                let mid = bad.len() / 2;
                bad[mid] ^= 0x20;
                std::fs::write(newest, bad).unwrap();
            }
            _ => std::fs::write(newest, &bytes[..bytes.len() / 3]).unwrap(),
        }

        let mut store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover(&config).unwrap().expect("previous generation must recover");
        assert_eq!(rec.fell_back, 1, "{damage}: newest generation should be skipped");
        let mut engine = rec.engine;
        assert_eq!(engine.len(), N, "{damage}: journal replay must reach the end");
        assert!(rec.replayed >= CKPT_EVERY as u64, "{damage}: the longer journal must replay");
        assert_eq!(
            valmap_bits(&mut engine),
            valmap_bits(&mut uninterrupted),
            "{damage}: fallback recovery diverged"
        );
        assert_eq!(
            output_checksum(&engine.snapshot().unwrap()),
            output_checksum(&uninterrupted.snapshot().unwrap()),
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn clean_recovery_reproduces_the_exact_checkpoint_image() {
    // After an uninterrupted run whose final checkpoint landed on the
    // final sample, recovery must reconstruct an engine whose own
    // checkpoint image is byte-equal — full-state bit-identity, not just
    // identical views.
    let series = stressed_series(7);
    let config = config_with_threads(3);
    let dir = fresh_dir("clean");
    let uninterrupted = durable_run(&dir, &series, &config).unwrap();
    let mut store = CheckpointStore::open(&dir).unwrap();
    let rec = store.recover(&config).unwrap().unwrap();
    assert_eq!(rec.engine.len(), uninterrupted.len());
    assert_eq!((rec.replayed, rec.fell_back), (0, 0));
    let image = |e: &StreamingValmod| {
        let mut buf = Vec::new();
        e.checkpoint_to(&mut buf).unwrap();
        buf
    };
    assert_eq!(image(&rec.engine), image(&uninterrupted), "recovered image differs");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovering_under_a_different_config_is_a_hard_error() {
    let series = stressed_series(9);
    let config = config_with_threads(1);
    let dir = fresh_dir("mismatch");
    durable_run(&dir, &series, &config).unwrap();

    // A state-affecting difference refuses loudly — falling back to an
    // older generation would silently compute wrong answers.
    let mut store = CheckpointStore::open(&dir).unwrap();
    let wider = ValmodConfig::new(8, 13).with_k(2).with_threads(1);
    assert!(matches!(store.recover(&wider), Err(SeriesError::CheckpointMismatch { .. })));

    // Worker count is a runtime knob, not state: recovery proceeds.
    let mut store = CheckpointStore::open(&dir).unwrap();
    let threaded = config_with_threads(6);
    let rec = store.recover(&threaded).unwrap().unwrap();
    assert_eq!(rec.engine.len(), N);
    std::fs::remove_dir_all(&dir).unwrap();
}
