//! Multi-tenant exactness: ≥8 tenants interleaved on ONE shared worker
//! pool through [`TenantRegistry`] must be byte-identical — live VALMAP,
//! delta stream, and batch-grade snapshot — to isolated reference
//! sessions each fed the same samples on a dedicated pool, across
//! SIMD lane levels and thread counts.
//!
//! The registry only decides *when* engine work runs (fair lanes over
//! one pool, per-tenant locks); the engines decide *what* is computed.
//! Any divergence here would mean tenancy leaked into math — a lane
//! routing bug, a cross-tenant state leak, or a pool-reuse bug.

use proptest::prelude::*;
use std::sync::Arc;
use valmod_core::testkit::{force_level, test_levels};
use valmod_core::ValmodConfig;
use valmod_mp::WorkerPool;
use valmod_series::gen;
use valmod_stream::{SessionCore, TenantPolicy, TenantRegistry, ValmapDelta};

const TENANTS: usize = 8;

fn config(threads: usize) -> ValmodConfig {
    ValmodConfig::new(8, 12).with_k(2).with_profile_size(4).with_threads(threads)
}

fn delta_bits(d: &ValmapDelta) -> (usize, Option<usize>, usize, u64) {
    (d.offset, d.match_offset, d.length, d.normalized_distance.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn interleaved_tenants_match_isolated_references(seed in 0u64..100_000) {
        // Per-tenant series of varying kinds and lengths (including one
        // with non-finite samples to exercise the skip path).
        let series: Vec<Vec<f64>> = (0..TENANTS)
            .map(|t| {
                let n = 70 + (seed as usize + t * 13) % 40;
                let mut s = match t % 3 {
                    0 => gen::random_walk(n, seed + t as u64),
                    1 => gen::ecg(n, &gen::EcgConfig::default(), seed + t as u64),
                    _ => gen::sine_mix(n, &[(20.0, 1.0), (45.0, 0.4)], 0.05, seed + t as u64),
                };
                if t == 2 {
                    s.insert(n / 2, f64::NAN);
                }
                s
            })
            .collect();

        for level in test_levels() {
        let _lanes = force_level(level);
        for threads in [1usize, 8] {
            let registry = TenantRegistry::new(
                Arc::new(WorkerPool::new()),
                config(threads),
                TenantPolicy::default(),
            );
            let mut refs: Vec<SessionCore> = (0..TENANTS)
                .map(|_| SessionCore::with_options(config(threads), None, None).unwrap())
                .collect();
            for t in 0..TENANTS {
                registry.open(&format!("t{t}")).unwrap();
            }

            // Interleave: rotate through tenants with chunk sizes that
            // drift per round, so batch boundaries land differently for
            // every tenant and lanes overlap in the shared pool.
            let mut cursors = [0usize; TENANTS];
            let mut round = 0usize;
            loop {
                let mut progressed = false;
                for t in 0..TENANTS {
                    let data = &series[t];
                    let at = cursors[t];
                    if at >= data.len() {
                        continue;
                    }
                    let step = 5 + (seed as usize + round * 7 + t * 3) % 23;
                    let end = (at + step).min(data.len());
                    registry.append(&format!("t{t}"), &data[at..end]).unwrap();
                    for &v in &data[at..end] {
                        refs[t].feed(v).unwrap();
                    }
                    // Delta streams must agree batch by batch, not just
                    // in aggregate.
                    let got: Vec<_> = registry
                        .with_session(&format!("t{t}"), |s| {
                            s.engine_mut().map_or_else(Vec::new, |e| e.poll_deltas())
                        })
                        .unwrap()
                        .iter()
                        .map(delta_bits)
                        .collect();
                    let want: Vec<_> = refs[t]
                        .engine_mut()
                        .map_or_else(Vec::new, |e| e.poll_deltas())
                        .iter()
                        .map(delta_bits)
                        .collect();
                    prop_assert_eq!(
                        got, want,
                        "delta stream diverged for tenant {} at {} threads ({:?})", t, threads, level
                    );
                    cursors[t] = end;
                    progressed = true;
                }
                round += 1;
                if !progressed {
                    break;
                }
            }

            for (t, reference) in refs.iter_mut().enumerate() {
                let name = format!("t{t}");
                let (live_mpn, snap_mpn) = registry
                    .with_session(&name, |s| {
                        let e = s.engine_mut().expect("live after full feed");
                        let live: Vec<u64> =
                            e.valmap().mpn.iter().map(|v| v.to_bits()).collect();
                        let snap: Vec<u64> = e
                            .snapshot()
                            .unwrap()
                            .valmap
                            .mpn
                            .iter()
                            .map(|v| v.to_bits())
                            .collect();
                        (live, snap)
                    })
                    .unwrap();
                let re = reference.engine_mut().expect("reference live");
                let ref_live: Vec<u64> = re.valmap().mpn.iter().map(|v| v.to_bits()).collect();
                let ref_snap: Vec<u64> =
                    re.snapshot().unwrap().valmap.mpn.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    live_mpn, ref_live,
                    "live VALMAP diverged for tenant {} at {} threads ({:?})", t, threads, level
                );
                prop_assert_eq!(
                    snap_mpn, ref_snap,
                    "snapshot diverged for tenant {} at {} threads ({:?})", t, threads, level
                );
            }
        }
        }
    }
}
