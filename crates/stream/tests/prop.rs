//! The streaming engine's acceptance property: after *any* sequence of
//! single appends and batched extends, `snapshot()` is **byte-identical**
//! to running the batch engine over the concatenated series — VALMAP
//! (including the checkpoint log), per-length motif pairs, base profile,
//! and the discord sets. The live views, which never re-run the batch
//! engine, must agree with batch within floating-point reassociation
//! noise on the same inputs.

use proptest::prelude::*;
use valmod_core::{run_valmod, variable_length_discords, ValmodConfig};
use valmod_series::gen;
use valmod_stream::StreamingValmod;

/// Splits `series[warmup..]` into an interleaved schedule of single
/// appends and batched extends, driven deterministically by `seed`.
fn feed_interleaved(engine: &mut StreamingValmod, series: &[f64], warmup: usize, seed: u64) {
    let mut state = seed | 1;
    let mut at = warmup;
    while at < series.len() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if state.is_multiple_of(3) {
            engine.append(series[at]);
            at += 1;
        } else {
            let chunk = 2 + (state >> 33) as usize % 15;
            let end = (at + chunk).min(series.len());
            engine.extend(&series[at..end]);
            at = end;
        }
    }
}

fn series_for(kind: usize, n: usize, seed: u64) -> Vec<f64> {
    match kind {
        0 => gen::random_walk(n, seed),
        1 => gen::ecg(n, &gen::EcgConfig::default(), seed),
        _ => {
            let pattern: Vec<f64> =
                (0..20).map(|i| (i as f64 / 20.0 * std::f64::consts::TAU * 2.0).sin()).collect();
            gen::planted_pair(n, &pattern, &[n / 6, 2 * n / 3], 0.02, seed).0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property, over random-walk / ECG / planted-motif
    /// inputs with interleaved single appends and batched extends.
    #[test]
    fn streaming_valmod_equals_batch(seed in 0u64..100_000, kind in 0usize..3) {
        let n = 260 + (seed % 80) as usize;
        let series = series_for(kind, n, seed);
        let l_min = 8 + (seed % 5) as usize;
        let width = 3 + (seed % 4) as usize;
        let config = ValmodConfig::new(l_min, l_min + width)
            .with_k(2 + (seed % 3) as usize)
            .with_profile_size(2 + (seed % 4) as usize)
            .with_threads(1 + (seed % 3) as usize);
        let warmup = n / 2;

        let mut engine = StreamingValmod::new(&series[..warmup], config.clone()).unwrap();
        feed_interleaved(&mut engine, &series, warmup, seed);
        prop_assert_eq!(engine.len(), series.len());
        prop_assert_eq!(engine.series(), &series[..]);

        // --- Byte-equality of the canonical snapshot against batch. ---
        let batch = run_valmod(&series, &config).unwrap();
        let snap = engine.snapshot().unwrap();
        prop_assert_eq!(&snap.valmap, &batch.valmap, "VALMAP differs from batch");
        prop_assert_eq!(&snap.base_profile, &batch.base_profile);
        prop_assert_eq!(snap.per_length.len(), batch.per_length.len());
        for (a, b) in snap.per_length.iter().zip(&batch.per_length) {
            prop_assert_eq!(a.length, b.length);
            prop_assert_eq!(&a.pairs, &b.pairs, "pairs differ at length {}", a.length);
        }
        let snap_discords = engine.snapshot_discords().unwrap();
        let batch_discords = variable_length_discords(&series, &config).unwrap();
        prop_assert_eq!(&snap_discords, &batch_discords, "discord sets differ from batch");

        // --- The live views agree with batch within FP reassociation. ---
        let live_valmap = engine.valmap().clone();
        prop_assert_eq!(live_valmap.len(), batch.valmap.len());
        for i in 0..live_valmap.len() {
            let (a, b) = (live_valmap.mpn[i], batch.valmap.mpn[i]);
            prop_assert_eq!(a.is_finite(), b.is_finite(), "finiteness differs at {}", i);
            if a.is_finite() {
                prop_assert!((a - b).abs() < 1e-5, "live mpn[{}] {} vs batch {}", i, a, b);
            }
        }
        for (lm, b) in engine.motifs().to_vec().iter().zip(&batch.per_length) {
            prop_assert_eq!(lm.length, b.length);
            match (lm.pairs.first(), b.pairs.first()) {
                (Some(x), Some(y)) => prop_assert!(
                    (x.distance - y.distance).abs() < 1e-5,
                    "top pair at length {}: live {} vs batch {}", b.length, x.distance, y.distance
                ),
                (None, None) => {}
                other => prop_assert!(false, "presence mismatch at {}: {:?}", b.length, other),
            }
        }
        for (ld, b) in engine.discords().to_vec().iter().zip(&batch_discords) {
            prop_assert_eq!(ld.length, b.length);
            match (ld.discords.first(), b.discords.first()) {
                (Some(x), Some(y)) => prop_assert!(
                    (x.nn_distance - y.nn_distance).abs() < 1e-5,
                    "top discord at length {}: live {} vs batch {}",
                    b.length, x.nn_distance, y.nn_distance
                ),
                (None, None) => {}
                other => prop_assert!(false, "presence mismatch at {}: {:?}", b.length, other),
            }
        }
    }

    /// Appending through a snapshot boundary keeps both guarantees: the
    /// engine is not consumed by snapshotting, and later appends remain
    /// exact.
    #[test]
    fn snapshot_is_repeatable_mid_stream(seed in 0u64..10_000) {
        let series = gen::random_walk(300, seed);
        let config = ValmodConfig::new(10, 14).with_k(2).with_threads(1);
        let mut engine = StreamingValmod::new(&series[..200], config.clone()).unwrap();
        engine.extend(&series[200..250]);
        let mid = engine.snapshot().unwrap();
        let mid_batch = run_valmod(&series[..250], &config).unwrap();
        prop_assert_eq!(&mid.valmap, &mid_batch.valmap);
        engine.extend(&series[250..]);
        let fin = engine.snapshot().unwrap();
        let fin_batch = run_valmod(&series, &config).unwrap();
        prop_assert_eq!(&fin.valmap, &fin_batch.valmap);
    }
}

/// Regression: a flat plateau arriving over the live feed (σ ≈ 0 windows
/// at every length) must neither poison the incremental state nor break
/// the snapshot guarantee. Flat windows take the zdist conventions
/// (flat–flat = 0, flat–shaped = √ℓ) on both engines.
#[test]
fn flat_region_appends_stay_exact() {
    let mut series = gen::white_noise(160, 8, 1.0);
    series.extend(std::iter::repeat_n(2.5, 60)); // plateau arrives mid-stream
    series.extend(gen::white_noise(60, 9, 1.0)); // and ends
    let config = ValmodConfig::new(8, 12).with_k(2).with_threads(1);
    let mut engine = StreamingValmod::new(&series[..150], config.clone()).unwrap();
    for (i, &v) in series[150..].iter().enumerate() {
        if i % 3 == 0 {
            engine.append(v);
        } else if i % 3 == 1 {
            engine.extend(&[v]);
        } else {
            engine.append(v);
        }
    }

    // Live per-length profiles stay exact against batch STOMP...
    for length in 8..=12 {
        let batch = valmod_mp::stomp::stomp(&series, length, config.exclusion(length)).unwrap();
        let live = engine.profile(length).unwrap();
        for i in 0..batch.len() {
            assert!(
                (live.values[i] - batch.values[i]).abs() < 1e-5,
                "length {length} entry {i}: live {} vs batch {}",
                live.values[i],
                batch.values[i]
            );
        }
        // Two distinct flat windows match each other at exactly 0.
        let inside = 170;
        assert!(live.values[inside] < 1e-9);
    }

    // ...and the snapshot is byte-identical to batch (which routes these
    // lengths through its degenerate-window STOMP fallback).
    let batch = run_valmod(&series, &config).unwrap();
    assert!(batch.per_length.iter().skip(1).all(|r| r.stats.stomp_fallback));
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.valmap, batch.valmap);
    assert_eq!(snap.base_profile, batch.base_profile);
    assert_eq!(
        engine.snapshot_discords().unwrap(),
        variable_length_discords(&series, &config).unwrap()
    );
}
