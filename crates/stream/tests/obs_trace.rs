//! The Chrome trace export must be real JSON with real spans: drive one
//! representative operation through every instrumented layer, then
//! round-trip `render_chrome_trace()` through a JSON parser and check
//! each layer shows up as a trace category.
//!
//! The parser below is hand-rolled like every other JSON producer and
//! consumer in the suite (vendored-only constraint) — it accepts the
//! full JSON grammar the exporter can emit, not just the happy path.

use std::collections::HashMap;

use valmod_core::ValmodConfig;
use valmod_obs as obs;
use valmod_series::gen;
use valmod_stream::{CheckpointStore, StreamingValmod};

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape {:?}", other as char)),
                    }
                }
                byte => {
                    // Multi-byte UTF-8 passes through untouched.
                    let len = if byte < 0x80 {
                        1
                    } else if byte < 0xE0 {
                        2
                    } else if byte < 0xF0 {
                        3
                    } else {
                        4
                    };
                    let chunk = self.bytes.get(self.pos..self.pos + len).ok_or("bad utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn document(text: &str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn obs_enabled() -> bool {
    let probe = obs::metrics().journal_replayed.get();
    obs::metrics().journal_replayed.add(1);
    obs::metrics().journal_replayed.get() == probe + 1
}

fn fresh_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("valmod-obs-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chrome_trace_round_trips_with_a_span_per_layer() {
    if !obs_enabled() {
        return;
    }
    // One operation through every instrumented layer.
    let series = gen::ecg(160, &gen::EcgConfig::default(), 23);
    let config = ValmodConfig::new(8, 12).with_k(2).with_threads(2);
    let mut engine = StreamingValmod::new(&series[..120], config.clone()).unwrap();
    engine.extend(&series[120..]); // stream: `stream_extend`
    let _ = engine.snapshot().unwrap(); // kernel + stage2 (batch re-run)
    let dir = fresh_dir();
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.checkpoint(&engine).unwrap(); // persist: `checkpoint`
    let _ = store.recover(&config).unwrap(); // persist: `recover`
                                             // The batch run demand-clamps its worker counts, so a small series
                                             // may bypass the pool; drive a 2-worker batch through it directly.
    valmod_mp::WorkerPool::new().run(2, |w| w); // pool: `pool_run`
    let _ = std::fs::remove_dir_all(&dir);

    let doc = obs::render_chrome_trace();
    let root = match Parser::document(&doc).expect("trace must parse as JSON") {
        Json::Obj(map) => map,
        other => panic!("trace root is not an object: {other:?}"),
    };
    assert_eq!(root.get("displayTimeUnit"), Some(&Json::Str("ms".into())));
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents is not an array: {other:?}"),
    };

    let mut per_layer: HashMap<String, usize> = HashMap::new();
    for event in events {
        let Json::Obj(e) = event else { panic!("event is not an object: {event:?}") };
        // Complete events with stable pid and non-negative times.
        assert_eq!(e.get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(e.get("pid"), Some(&Json::Num(1.0)));
        let (Some(Json::Num(ts)), Some(Json::Num(dur)), Some(Json::Num(tid))) =
            (e.get("ts"), e.get("dur"), e.get("tid"))
        else {
            panic!("event missing ts/dur/tid: {e:?}")
        };
        assert!(*ts >= 0.0 && *dur >= 0.0);
        assert!(*tid >= 0.0 && tid.fract() == 0.0, "tid {tid} is not a dense id");
        let (Some(Json::Str(name)), Some(Json::Str(cat))) = (e.get("name"), e.get("cat")) else {
            panic!("event missing name/cat: {e:?}")
        };
        assert!(!name.is_empty());
        *per_layer.entry(cat.clone()).or_default() += 1;
    }
    for layer in ["kernel", "stage2", "pool", "stream", "persist"] {
        assert!(
            per_layer.get(layer).copied().unwrap_or(0) >= 1,
            "no span recorded for layer {layer}: {per_layer:?}"
        );
    }
}
