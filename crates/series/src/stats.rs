//! O(1) rolling statistics from prefix sums.
//!
//! Every matrix-profile-family algorithm needs the mean and standard
//! deviation of *every* subsequence at *every* length in the query range.
//! Following the matrix-profile papers, we precompute prefix sums of the
//! values and their squares once (O(n)), after which any `(offset, length)`
//! window's mean and standard deviation cost O(1).
//!
//! To keep the `E[x²] − μ²` form numerically safe for long, drifting series
//! (e.g. random walks), the series is shifted by its global mean before the
//! prefix sums are built. The shift leaves z-normalized quantities unchanged
//! (z-normalization is shift-invariant) but keeps the squared sums small.

/// Standard deviations below this threshold are treated as zero: the window
/// is *flat* and has no meaningful z-normalized shape.
pub const FLAT_EPS: f64 = 1e-13;

/// Fast-path variances below this threshold are recomputed exactly from the
/// stored values: the `E[x²] − μ²` cancellation can leave ~1e-14 of noise,
/// which would otherwise misclassify exactly-flat windows against
/// [`FLAT_EPS`].
const VAR_RECHECK: f64 = 1e-9;

/// Prefix-sum engine giving O(1) mean/std of any subsequence.
///
/// # Example
///
/// ```
/// use valmod_series::RollingStats;
///
/// let stats = RollingStats::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((stats.mean(0, 4) - 2.5).abs() < 1e-12);
/// assert!((stats.mean(1, 2) - 2.5).abs() < 1e-12);
/// // Population std of [1,2]: 0.5
/// assert!((stats.std(0, 2) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RollingStats {
    /// `prefix[i]` = Σ of the first `i` shifted values.
    prefix: Vec<f64>,
    /// `prefix_sq[i]` = Σ of the first `i` squared shifted values.
    prefix_sq: Vec<f64>,
    /// The shifted values, kept for the exact small-variance recheck.
    shifted: Vec<f64>,
    /// The global mean subtracted from every value before summing.
    shift: f64,
    len: usize,
}

impl RollingStats {
    /// Builds the prefix sums in O(n).
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        let len = values.len();
        let shift = if len == 0 { 0.0 } else { values.iter().sum::<f64>() / len as f64 };
        let mut prefix = Vec::with_capacity(len + 1);
        let mut prefix_sq = Vec::with_capacity(len + 1);
        prefix.push(0.0);
        prefix_sq.push(0.0);
        let mut shifted = Vec::with_capacity(len);
        let (mut acc, mut acc_sq) = (0.0f64, 0.0f64);
        for &v in values {
            let x = v - shift;
            acc += x;
            acc_sq = x.mul_add(x, acc_sq);
            prefix.push(acc);
            prefix_sq.push(acc_sq);
            shifted.push(x);
        }
        Self { prefix, prefix_sq, shifted, shift, len }
    }

    /// Number of points covered by this engine.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine covers an empty series.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of the window `[offset, offset+length)` in original units.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if the window exceeds the series; all
    /// callers inside the suite iterate over validated window ranges.
    #[inline]
    #[must_use]
    pub fn sum(&self, offset: usize, length: usize) -> f64 {
        self.shifted_sum(offset, length) + self.shift * length as f64
    }

    /// Mean of the window `[offset, offset+length)`.
    #[inline]
    #[must_use]
    pub fn mean(&self, offset: usize, length: usize) -> f64 {
        debug_assert!(length > 0);
        self.shifted_sum(offset, length) / length as f64 + self.shift
    }

    /// Population variance of the window (never negative; tiny negative
    /// rounding artifacts are clamped to zero).
    #[inline]
    #[must_use]
    pub fn var(&self, offset: usize, length: usize) -> f64 {
        debug_assert!(length > 0);
        let l = length as f64;
        let s = self.shifted_sum(offset, length);
        let sq = self.prefix_sq[offset + length] - self.prefix_sq[offset];
        let mean = s / l;
        let fast = (sq / l - mean * mean).max(0.0);
        if fast >= VAR_RECHECK {
            return fast;
        }
        // Near-zero result: the prefix-sum cancellation noise can dominate,
        // so recompute exactly from the stored values (rare, O(length)).
        let window = &self.shifted[offset..offset + length];
        let exact_mean = window.iter().sum::<f64>() / l;
        window.iter().map(|x| (x - exact_mean) * (x - exact_mean)).sum::<f64>() / l
    }

    /// Population standard deviation of the window.
    #[inline]
    #[must_use]
    pub fn std(&self, offset: usize, length: usize) -> f64 {
        self.var(offset, length).sqrt()
    }

    /// Whether the window is flat (standard deviation below [`FLAT_EPS`]),
    /// i.e. has no z-normalizable shape.
    #[inline]
    #[must_use]
    pub fn is_flat(&self, offset: usize, length: usize) -> bool {
        self.std(offset, length) < FLAT_EPS
    }

    /// Means of every subsequence of length `l`, as a vector of length
    /// `n − l + 1` (empty if the series is shorter than `l`).
    #[must_use]
    pub fn means_for_length(&self, l: usize) -> Vec<f64> {
        if l == 0 || l > self.len {
            return Vec::new();
        }
        (0..=self.len - l).map(|i| self.mean(i, l)).collect()
    }

    /// Standard deviations of every subsequence of length `l`.
    #[must_use]
    pub fn stds_for_length(&self, l: usize) -> Vec<f64> {
        if l == 0 || l > self.len {
            return Vec::new();
        }
        (0..=self.len - l).map(|i| self.std(i, l)).collect()
    }

    /// Sum of the window after *global-mean centering* (`Σ (x − x̄)` where
    /// `x̄` is the whole series' mean).
    ///
    /// Z-normalized quantities are invariant to the global shift, so
    /// formulas mixing centered sums, centered means and standard
    /// deviations (e.g. VALMOD's lower bound) give the same results as
    /// with raw values — with far better conditioning.
    #[inline]
    #[must_use]
    pub fn centered_sum(&self, offset: usize, length: usize) -> f64 {
        self.shifted_sum(offset, length)
    }

    /// Sum of squares of the globally mean-centered window.
    #[inline]
    #[must_use]
    pub fn centered_sum_sq(&self, offset: usize, length: usize) -> f64 {
        self.prefix_sq[offset + length] - self.prefix_sq[offset]
    }

    /// Mean of the globally mean-centered window
    /// (= [`RollingStats::mean`] minus the global mean).
    #[inline]
    #[must_use]
    pub fn centered_mean(&self, offset: usize, length: usize) -> f64 {
        debug_assert!(length > 0);
        self.shifted_sum(offset, length) / length as f64
    }

    #[inline]
    fn shifted_sum(&self, offset: usize, length: usize) -> f64 {
        self.prefix[offset + length] - self.prefix[offset]
    }
}

#[cfg(test)]
mod tests {
    use super::{RollingStats, FLAT_EPS};

    fn brute_mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    fn brute_std(v: &[f64]) -> f64 {
        let m = brute_mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    }

    #[test]
    fn matches_brute_force_on_all_windows() {
        let v: Vec<f64> = (0..50).map(|i| ((i * 13 % 7) as f64).mul_add(1.5, -3.0)).collect();
        let stats = RollingStats::new(&v);
        for l in 1..=v.len() {
            for i in 0..=v.len() - l {
                let w = &v[i..i + l];
                assert!((stats.mean(i, l) - brute_mean(w)).abs() < 1e-10, "mean at ({i},{l})");
                // The prefix-sum variance carries ~1e-14 absolute error and
                // sqrt amplifies it near zero, hence the looser std bound.
                let bs = brute_std(w);
                assert!(
                    (stats.var(i, l) - bs * bs).abs() < 1e-10,
                    "var at ({i},{l}): {} vs {}",
                    stats.var(i, l),
                    bs * bs
                );
                assert!((stats.std(i, l) - bs).abs() < 1e-6, "std at ({i},{l})");
                assert!((stats.sum(i, l) - w.iter().sum::<f64>()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flat_windows_are_detected() {
        let v = [3.0, 3.0, 3.0, 1.0, 2.0];
        let stats = RollingStats::new(&v);
        assert!(stats.is_flat(0, 3));
        assert!(!stats.is_flat(2, 3));
        assert!(stats.var(0, 3) < FLAT_EPS);
    }

    #[test]
    fn variance_never_negative_under_large_offsets() {
        // A large constant offset makes E[x²] − μ² catastrophically cancel
        // without the internal shift.
        let v: Vec<f64> = (0..100).map(|i| 1.0e9 + (i as f64 * 0.37).sin()).collect();
        let stats = RollingStats::new(&v);
        for l in 2..30 {
            for i in 0..=v.len() - l {
                let var = stats.var(i, l);
                assert!(var >= 0.0);
                let brute = brute_std(&v[i..i + l]);
                assert!(
                    (stats.std(i, l) - brute).abs() < 1e-5,
                    "large-offset std mismatch at ({i},{l}): {} vs {brute}",
                    stats.std(i, l)
                );
            }
        }
    }

    #[test]
    fn per_length_vectors_have_expected_shape() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let stats = RollingStats::new(&v);
        assert_eq!(stats.means_for_length(4).len(), 7);
        assert_eq!(stats.stds_for_length(10).len(), 1);
        assert!(stats.means_for_length(11).is_empty());
        assert!(stats.means_for_length(0).is_empty());
        // Mean of a ramp window [i, i+3] is i + 1.5.
        for (i, m) in stats.means_for_length(4).iter().enumerate() {
            assert!((m - (i as f64 + 1.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn centered_sums_are_shift_consistent() {
        let v: Vec<f64> = (0..40).map(|i| 100.0 + (i as f64 * 0.7).sin() * 3.0).collect();
        let stats = RollingStats::new(&v);
        let global_mean = v.iter().sum::<f64>() / v.len() as f64;
        for &(o, l) in &[(0usize, 5usize), (10, 20), (35, 5)] {
            let centered: f64 = v[o..o + l].iter().map(|x| x - global_mean).sum();
            assert!((stats.centered_sum(o, l) - centered).abs() < 1e-9);
            let centered_sq: f64 =
                v[o..o + l].iter().map(|x| (x - global_mean) * (x - global_mean)).sum();
            assert!((stats.centered_sum_sq(o, l) - centered_sq).abs() < 1e-8);
            assert!((stats.centered_mean(o, l) - (stats.mean(o, l) - global_mean)).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_series_is_handled() {
        let stats = RollingStats::new(&[]);
        assert!(stats.is_empty());
        assert_eq!(stats.len(), 0);
        assert!(stats.means_for_length(1).is_empty());
    }

    #[test]
    fn single_point_window() {
        let stats = RollingStats::new(&[42.0]);
        assert_eq!(stats.len(), 1);
        assert!((stats.mean(0, 1) - 42.0).abs() < 1e-12);
        assert_eq!(stats.std(0, 1), 0.0);
        assert!(stats.is_flat(0, 1));
    }
}
