//! The validated data-series container.

use crate::{Result, SeriesError};

/// An immutable data series of finite `f64` values.
///
/// Validation happens once at construction; every algorithm downstream can
/// then assume finite values and index arithmetic that stays in bounds.
///
/// # Example
///
/// ```
/// use valmod_series::DataSeries;
///
/// let s = DataSeries::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.num_subsequences(2), 3);
/// assert_eq!(s.subsequence(1, 2).unwrap(), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataSeries {
    values: Vec<f64>,
}

impl DataSeries {
    /// Wraps a vector of values, validating that it is non-empty and fully
    /// finite.
    ///
    /// # Errors
    ///
    /// [`SeriesError::Empty`] for an empty vector,
    /// [`SeriesError::NonFinite`] if any value is NaN or infinite.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(SeriesError::Empty);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index });
        }
        Ok(Self { values })
    }

    /// Builds a series by evaluating `f` at `0..n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DataSeries::new`].
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Result<Self> {
        Self::new((0..n).map(f).collect())
    }

    /// Number of points in the series.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no points (never true for a constructed
    /// series, but required by convention alongside `len`).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of subsequences of length `l`, i.e. `len − l + 1`, or zero if
    /// the series is shorter than `l`.
    #[inline]
    #[must_use]
    pub fn num_subsequences(&self, l: usize) -> usize {
        if l == 0 || l > self.values.len() {
            0
        } else {
            self.values.len() - l + 1
        }
    }

    /// Borrow the subsequence starting at `offset` with length `length`
    /// (the paper's `D_{offset,length}` notation).
    ///
    /// # Errors
    ///
    /// [`SeriesError::InvalidSubsequence`] when the window does not fit.
    pub fn subsequence(&self, offset: usize, length: usize) -> Result<&[f64]> {
        if length == 0 || offset.checked_add(length).is_none_or(|end| end > self.values.len()) {
            return Err(SeriesError::InvalidSubsequence {
                offset,
                length,
                series_len: self.values.len(),
            });
        }
        Ok(&self.values[offset..offset + length])
    }

    /// Consumes the series, returning the underlying vector.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl AsRef<[f64]> for DataSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl std::ops::Index<usize> for DataSeries {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::DataSeries;
    use crate::SeriesError;

    #[test]
    fn rejects_empty() {
        assert!(matches!(DataSeries::new(vec![]), Err(SeriesError::Empty)));
    }

    #[test]
    fn rejects_nan_and_infinity_with_index() {
        match DataSeries::new(vec![1.0, f64::NAN, 2.0]) {
            Err(SeriesError::NonFinite { index }) => assert_eq!(index, 1),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        match DataSeries::new(vec![1.0, 2.0, f64::INFINITY]) {
            Err(SeriesError::NonFinite { index }) => assert_eq!(index, 2),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn from_fn_builds_expected_values() {
        let s = DataSeries::from_fn(4, |i| i as f64 * 2.0).unwrap();
        assert_eq!(s.values(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn num_subsequences_edge_cases() {
        let s = DataSeries::new(vec![0.0; 10]).unwrap();
        assert_eq!(s.num_subsequences(1), 10);
        assert_eq!(s.num_subsequences(10), 1);
        assert_eq!(s.num_subsequences(11), 0);
        assert_eq!(s.num_subsequences(0), 0);
    }

    #[test]
    fn subsequence_bounds_are_enforced() {
        let s = DataSeries::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.subsequence(0, 3).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.subsequence(2, 1).unwrap(), &[3.0]);
        assert!(s.subsequence(2, 2).is_err());
        assert!(s.subsequence(0, 0).is_err());
        assert!(s.subsequence(usize::MAX, 2).is_err());
    }

    #[test]
    fn indexing_and_as_ref() {
        let s = DataSeries::new(vec![5.0, 6.0]).unwrap();
        assert_eq!(s[1], 6.0);
        assert_eq!(s.as_ref().len(), 2);
        assert_eq!(s.clone().into_values(), vec![5.0, 6.0]);
    }
}
