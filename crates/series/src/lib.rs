#![warn(missing_docs)]

//! Data-series substrate for the VALMOD suite.
//!
//! Everything in the suite — matrix profiles, VALMOD itself, the baselines —
//! is built on four primitives provided here:
//!
//! * [`DataSeries`] — a validated, immutable series of finite `f64` values;
//! * [`RollingStats`] — O(1) mean / standard deviation of any subsequence,
//!   backed by prefix sums (the paper's "meta data computed once" step);
//! * [`znorm`] — z-normalized Euclidean distance, in both the direct form
//!   and the dot-product form `d² = 2ℓ(1 − ρ)` every engine uses;
//! * [`gen`] — synthetic workload generators standing in for the paper's
//!   ECG and ASTRO recordings (see DESIGN.md §4 for the substitution
//!   rationale).
//!
//! # Example
//!
//! ```
//! use valmod_series::{DataSeries, RollingStats, znorm};
//!
//! let series = DataSeries::new(vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0]).unwrap();
//! let stats = RollingStats::new(series.values());
//! // The two ramps are identical after z-normalization.
//! let d = znorm::zdist(series.subsequence(0, 4).unwrap(),
//!                      series.subsequence(4, 4).unwrap());
//! assert!(d < 1e-9);
//! assert!((stats.mean(0, 4) - 1.0).abs() < 1e-12);
//! ```

mod error;
pub mod faults;
pub mod gen;
pub mod io;
mod series;
pub mod stats;
pub mod znorm;

pub use error::SeriesError;
pub use series::DataSeries;
pub use stats::RollingStats;

/// Convenience alias used across the suite.
pub type Result<T> = std::result::Result<T, SeriesError>;
