//! Deterministic fault injection for the persistence I/O sites.
//!
//! The crash-safety tests need to fail *exactly one chosen* I/O
//! operation — the 3rd checkpoint write, the fsync of a journal batch,
//! the rename that publishes a generation — and then prove recovery is
//! byte-exact. This module is that switchboard: every persistence I/O
//! site calls [`check`] (or routes writes through [`write_all`]) with a
//! stable site name, and an armed [`FaultPlan`] decides which operation
//! fails, with what error, and whether a write is torn short first.
//!
//! Arming follows the same precedence style as `valmod_fft`'s
//! `override_simd`: an in-process RAII guard ([`arm`], serialized across
//! threads by holding a lock for the guard's lifetime), or the
//! `VALMOD_FAULT` environment variable (`site:after:times:kind`, parsed
//! once per process — the cross-process knob for CLI integration tests).
//! With neither armed, every site is a single relaxed atomic load.
//!
//! The same guard doubles as the *enumerator* for kill-at-every-point
//! tests: arm a plan whose `after` is `u64::MAX` (it never fires), run
//! the pipeline once, and [`FaultGuard::hits`] reports how many matching
//! operations exist — the loop bound for "crash at operation k, for
//! every k".
//!
//! Not a public API — no stability guarantees.

#![doc(hidden)]

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// What happens when the planned operation count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an error of this kind (nothing is
    /// written / read). With `times: u64::MAX` this models a crash: the
    /// triggering operation and every later one fail, so no further
    /// bytes can reach disk — observationally a SIGKILL at that point.
    Err(io::ErrorKind),
    /// The first triggered *write* is torn: only this many bytes of the
    /// buffer land before the error — a short/torn write. Later
    /// triggered operations fail like [`FaultKind::Err`].
    ShortWrite(usize),
}

/// A deterministic fault: the `after`-th matching operation (0-based,
/// counting only operations whose site starts with `site`) and the
/// `times - 1` matching operations after it fail with `kind`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Site-name prefix filter (`None` matches every site).
    pub site: Option<String>,
    /// 0-based index of the first matching operation that fails.
    pub after: u64,
    /// How many consecutive matching operations fail (`u64::MAX` =
    /// every one from `after` on — the crash model).
    pub times: u64,
    /// The failure behavior.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A crash at matching operation `k`: it and everything after fail.
    #[must_use]
    pub fn crash_at(site: Option<&str>, k: u64) -> Self {
        Self {
            site: site.map(str::to_owned),
            after: k,
            times: u64::MAX,
            kind: FaultKind::Err(io::ErrorKind::Other),
        }
    }

    /// A counting-only plan: never fires, but [`FaultGuard::hits`]
    /// reports how many matching operations ran — the enumerator for
    /// kill-at-every-point loops.
    #[must_use]
    pub fn observe(site: Option<&str>) -> Self {
        Self {
            site: site.map(str::to_owned),
            after: u64::MAX,
            times: 0,
            kind: FaultKind::Err(io::ErrorKind::Other),
        }
    }
}

/// Whether any plan (guard or env) may be active — the fast-path gate
/// every instrumented site reads first.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The active plan and its match counter.
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// Serializes armed sections across test threads, like
/// `SimdOverrideGuard` does for dispatch overrides.
static ARM_LOCK: Mutex<()> = Mutex::new(());

#[derive(Debug)]
struct PlanState {
    plan: FaultPlan,
    seen: u64,
}

/// Keeps the installed plan alive; restores the previous state (usually
/// "nothing armed") on drop. [`FaultGuard::hits`] reads the number of
/// matching operations observed so far.
#[derive(Debug)]
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Matching operations observed since arming.
    #[must_use]
    pub fn hits(&self) -> u64 {
        lock_state().as_ref().map_or(0, |s| s.seen)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *lock_state() = env_plan().clone().map(|plan| PlanState { plan, seen: 0 });
        ARMED.store(env_plan().is_some(), Ordering::SeqCst);
    }
}

fn lock_state() -> MutexGuard<'static, Option<PlanState>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` for the guard's lifetime. Guards are exclusive: a
/// second `arm` on another thread blocks until the first is dropped.
#[must_use]
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let lock = ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_state() = Some(PlanState { plan, seen: 0 });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _lock: lock }
}

/// The `VALMOD_FAULT` plan, parsed once per process.
///
/// Format: `site:after:times:kind` where `site` is a site-name prefix
/// (`*` = any), `times` may be `inf`, and `kind` is `err-<name>`
/// (`interrupted`, `wouldblock`, `timedout`, `notfound`, `other`) or
/// `short-<bytes>`. Example: `VALMOD_FAULT=ckpt.write:2:inf:err-other`.
fn env_plan() -> &'static Option<FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let raw = std::env::var("VALMOD_FAULT").ok()?;
        let mut parts = raw.splitn(4, ':');
        let site = match parts.next()? {
            "*" | "" => None,
            s => Some(s.to_owned()),
        };
        let after = parts.next()?.parse().ok()?;
        let times = match parts.next()? {
            "inf" => u64::MAX,
            t => t.parse().ok()?,
        };
        let kind = match parts.next()? {
            "err-interrupted" => FaultKind::Err(io::ErrorKind::Interrupted),
            "err-wouldblock" => FaultKind::Err(io::ErrorKind::WouldBlock),
            "err-timedout" => FaultKind::Err(io::ErrorKind::TimedOut),
            "err-notfound" => FaultKind::Err(io::ErrorKind::NotFound),
            "err-other" => FaultKind::Err(io::ErrorKind::Other),
            s => {
                let n = s.strip_prefix("short-")?.parse().ok()?;
                FaultKind::ShortWrite(n)
            }
        };
        Some(FaultPlan { site, after, times, kind })
    })
}

/// Lazily installs the env plan (first instrumented operation of the
/// process) so `VALMOD_FAULT` works without any in-process arming.
fn ensure_env_installed() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        if let Some(plan) = env_plan().clone() {
            *lock_state() = Some(PlanState { plan, seen: 0 });
            ARMED.store(true, Ordering::SeqCst);
        }
    });
}

/// What the active plan decided for one operation at `site`.
enum Decision {
    Pass,
    Fail(io::ErrorKind),
    Clip(usize),
}

fn decide(site: &str) -> Decision {
    ensure_env_installed();
    if !ARMED.load(Ordering::Relaxed) {
        return Decision::Pass;
    }
    let mut state = lock_state();
    let Some(s) = state.as_mut() else { return Decision::Pass };
    if let Some(prefix) = &s.plan.site {
        if !site.starts_with(prefix.as_str()) {
            return Decision::Pass;
        }
    }
    let index = s.seen;
    s.seen += 1;
    let fired = index >= s.plan.after && index - s.plan.after < s.plan.times;
    if !fired {
        return Decision::Pass;
    }
    match s.plan.kind {
        FaultKind::Err(kind) => Decision::Fail(kind),
        // Only the first triggered operation is torn; everything later
        // is dead (the crash that followed the torn write).
        FaultKind::ShortWrite(n) if index == s.plan.after => Decision::Clip(n),
        FaultKind::ShortWrite(_) => Decision::Fail(io::ErrorKind::Other),
    }
}

/// One instrumented non-write operation (open, sync, rename, read, …).
///
/// # Errors
///
/// The planned injected error when this operation is the planned one.
pub fn check(site: &str) -> io::Result<()> {
    match decide(site) {
        Decision::Pass => Ok(()),
        Decision::Fail(kind) => Err(injected(kind, site)),
        Decision::Clip(_) => Err(injected(io::ErrorKind::WriteZero, site)),
    }
}

/// One instrumented write: passes `buf` through unless the plan tears or
/// fails it. A torn write really puts the byte prefix in `w` before
/// erroring — the on-disk state a power cut mid-write leaves behind.
///
/// # Errors
///
/// `w`'s own error, or the planned injected error.
pub fn write_all(w: &mut impl io::Write, site: &str, buf: &[u8]) -> io::Result<()> {
    match decide(site) {
        Decision::Pass => w.write_all(buf),
        Decision::Fail(kind) => Err(injected(kind, site)),
        Decision::Clip(n) => {
            w.write_all(&buf[..n.min(buf.len())])?;
            Err(injected(io::ErrorKind::WriteZero, site))
        }
    }
}

fn injected(kind: io::ErrorKind, site: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault at {site}"))
}

/// A reader whose every `read` consults the failpoint switchboard first —
/// wraps live input sources so transient/persistent read errors can be
/// injected into a running session.
#[derive(Debug)]
pub struct ChaosRead<R> {
    site: &'static str,
    inner: R,
}

impl<R> ChaosRead<R> {
    /// Wraps `inner`, reporting operations under `site`.
    pub fn new(site: &'static str, inner: R) -> Self {
        Self { site, inner }
    }
}

impl<R: io::Read> io::Read for ChaosRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        check(self.site)?;
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn unarmed_sites_pass() {
        assert!(check("ckpt.write").is_ok());
        let mut out = Vec::new();
        write_all(&mut out, "ckpt.write", b"abc").unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn nth_matching_operation_fails_and_counting_observes() {
        let g = arm(FaultPlan {
            site: Some("ckpt".into()),
            after: 1,
            times: 1,
            kind: FaultKind::Err(io::ErrorKind::Other),
        });
        assert!(check("journal.sync").is_ok(), "non-matching site is never counted");
        assert!(check("ckpt.sync").is_ok()); // op 0
        assert!(check("ckpt.rename").is_err()); // op 1: planned
        assert!(check("ckpt.sync").is_ok()); // op 2: window passed
        assert_eq!(g.hits(), 3);
    }

    #[test]
    fn crash_plans_kill_everything_after_the_trigger() {
        let _g = arm(FaultPlan::crash_at(None, 2));
        let mut out = Vec::new();
        assert!(write_all(&mut out, "a", b"x").is_ok());
        assert!(check("b").is_ok());
        assert!(check("c").is_err());
        assert!(write_all(&mut out, "d", b"y").is_err());
        assert_eq!(out, b"x", "nothing lands after the crash point");
    }

    #[test]
    fn short_writes_tear_the_buffer_then_die() {
        let _g = arm(FaultPlan {
            site: None,
            after: 0,
            times: u64::MAX,
            kind: FaultKind::ShortWrite(2),
        });
        let mut out = Vec::new();
        let err = write_all(&mut out, "w", b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(out, b"he", "exactly the torn prefix landed");
        assert!(write_all(&mut out, "w", b"more").is_err());
        assert_eq!(out, b"he");
    }

    #[test]
    fn observe_counts_without_firing() {
        let g = arm(FaultPlan::observe(Some("journal")));
        for _ in 0..5 {
            assert!(check("journal.write").is_ok());
        }
        assert!(check("ckpt.write").is_ok());
        assert_eq!(g.hits(), 5);
    }

    #[test]
    fn chaos_reader_injects_then_recovers() {
        let data = b"12\n34\n";
        let mut r = ChaosRead::new("stream.read", &data[..]);
        {
            let _g = arm(FaultPlan {
                site: Some("stream.read".into()),
                after: 0,
                times: 2,
                kind: FaultKind::Err(io::ErrorKind::WouldBlock),
            });
            let mut buf = [0u8; 3];
            assert_eq!(r.read(&mut buf).unwrap_err().kind(), io::ErrorKind::WouldBlock);
            assert_eq!(r.read(&mut buf).unwrap_err().kind(), io::ErrorKind::WouldBlock);
            assert_eq!(r.read(&mut buf).unwrap(), 3);
        }
        let mut rest = String::new();
        r.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "34\n");
    }
}
