//! Field-science generators for the demo's remaining scenarios:
//! seismology and entomology (paper §4, "Need for Variable Length
//! Motifs ... as well as datasets coming from the domains of Entomology
//! and Seismology").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::noise::gaussian;

/// Parameters of the synthetic seismogram.
#[derive(Debug, Clone)]
pub struct SeismicConfig {
    /// Expected events per 10 000 samples.
    pub event_rate: f64,
    /// Mean duration of an event's coda (exponentially decaying ringing).
    pub event_len: usize,
    /// Uniform jitter on the duration (fraction of `event_len`).
    pub event_jitter: f64,
    /// Microseismic background noise level.
    pub noise_std: f64,
}

impl Default for SeismicConfig {
    fn default() -> Self {
        Self { event_rate: 6.0, event_len: 220, event_jitter: 0.35, noise_std: 0.05 }
    }
}

/// Synthetic seismogram: quiet microseismic background with repeating
/// earthquake-like events — a sharp P-arrival, a stronger S-arrival, and
/// an exponentially decaying oscillatory coda. Events recur with similar
/// waveforms (repeating earthquakes from the same fault patch) but their
/// durations vary strongly, which is why seismology needs variable-length
/// motif search.
#[must_use]
pub fn seismic(n: usize, config: &SeismicConfig, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e15_0123_dead_bee5);
    let mut out = vec![0.0f64; n];
    for v in &mut out {
        *v = gaussian(&mut rng) * config.noise_std;
    }
    let p_event = config.event_rate / 10_000.0;
    let mut t = 0usize;
    while t < n {
        if rng.gen::<f64>() < p_event {
            let jitter = 1.0 + config.event_jitter * (2.0 * rng.gen::<f64>() - 1.0);
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let len = ((config.event_len as f64 * jitter) as usize).max(24);
            let s_arrival = len / 4;
            let freq = 0.35 + 0.05 * (rng.gen::<f64>() - 0.5);
            let phase = rng.gen::<f64>() * std::f64::consts::TAU;
            for k in 0..len {
                if t + k >= n {
                    break;
                }
                let x = k as f64;
                // P wave: weak, fast-decaying; S wave: strong, slower decay.
                let p = 0.6 * (-x / (len as f64 * 0.08)).exp();
                let s = if k >= s_arrival {
                    let y = (k - s_arrival) as f64;
                    1.8 * (-y / (len as f64 * 0.3)).exp()
                } else {
                    0.0
                };
                out[t + k] += (p + s) * (freq * x + phase).sin();
            }
            t += len; // refractory period: events do not overlap
        } else {
            t += 1;
        }
    }
    out
}

/// Parameters of the synthetic insect EPG (electrical penetration graph).
#[derive(Debug, Clone)]
pub struct EpgConfig {
    /// Mean duration of a probing bout.
    pub bout_len: usize,
    /// Jitter on the bout duration (fraction of `bout_len`).
    pub bout_jitter: f64,
    /// Fraction of time spent in the non-probing (resting) state.
    pub rest_fraction: f64,
    /// Sensor noise level.
    pub noise_std: f64,
}

impl Default for EpgConfig {
    fn default() -> Self {
        Self { bout_len: 150, bout_jitter: 0.3, rest_fraction: 0.4, noise_std: 0.04 }
    }
}

/// Synthetic insect feeding signal (EPG): alternating resting baselines
/// and stereotyped probing bouts — a voltage drop followed by rhythmic
/// stylet waves whose repetition count (hence bout duration) varies.
/// This is the entomology use case of the demo: the *pattern* is fixed,
/// its *length* is not.
#[must_use]
pub fn epg(n: usize, config: &EpgConfig, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xe9_6bf1_77aa_c0de);
    let mut out = Vec::with_capacity(n);
    let bout_len = config.bout_len.max(16);
    while out.len() < n {
        if rng.gen::<f64>() < config.rest_fraction {
            // Resting: slowly drifting baseline.
            let rest = bout_len / 2 + (rng.gen::<f64>() * bout_len as f64 * 0.5) as usize;
            let level = 0.8 + 0.1 * gaussian(&mut rng);
            for k in 0..rest {
                if out.len() >= n {
                    break;
                }
                let drift = 0.02 * (k as f64 / rest as f64);
                out.push(level + drift + gaussian(&mut rng) * config.noise_std);
            }
        } else {
            // Probing bout: drop, rhythmic waves, recovery.
            let jitter = 1.0 + config.bout_jitter * (2.0 * rng.gen::<f64>() - 1.0);
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let len = ((bout_len as f64 * jitter) as usize).max(16);
            let wave_period = 18.0 + 2.0 * (rng.gen::<f64>() - 0.5);
            for k in 0..len {
                if out.len() >= n {
                    break;
                }
                let x = k as f64 / len as f64;
                let envelope = (x * std::f64::consts::PI).sin();
                let wave = 0.35 * (k as f64 / wave_period * std::f64::consts::TAU).sin();
                out.push(
                    0.2 - 0.6 * envelope + envelope * wave + gaussian(&mut rng) * config.noise_std,
                );
            }
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seismic_has_quiet_background_and_loud_events() {
        let cfg = SeismicConfig::default();
        let s = seismic(30_000, &cfg, 5);
        assert_eq!(s.len(), 30_000);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 6.0 * cfg.noise_std, "no events visible: max {max}");
        // The background (median magnitude) stays near the noise floor.
        let mut mags: Vec<f64> = s.iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = mags[mags.len() / 2];
        assert!(median < 3.0 * cfg.noise_std, "background too loud: {median}");
    }

    #[test]
    fn seismic_is_deterministic_and_finite() {
        let cfg = SeismicConfig::default();
        assert_eq!(seismic(2000, &cfg, 1), seismic(2000, &cfg, 1));
        assert!(seismic(2000, &cfg, 2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn epg_alternates_rest_and_bouts() {
        let cfg = EpgConfig::default();
        let s = epg(20_000, &cfg, 9);
        assert_eq!(s.len(), 20_000);
        // Resting sits near +0.8; bouts dive below 0; both must occur.
        let lows = s.iter().filter(|&&v| v < -0.1).count();
        let highs = s.iter().filter(|&&v| v > 0.6).count();
        assert!(lows > 500, "no probing bouts: {lows}");
        assert!(highs > 500, "no resting baseline: {highs}");
    }

    #[test]
    fn epg_zero_length_and_determinism() {
        let cfg = EpgConfig::default();
        assert!(epg(0, &cfg, 1).is_empty());
        assert_eq!(epg(512, &cfg, 3), epg(512, &cfg, 3));
    }
}
