//! Synthetic workload generators.
//!
//! The paper evaluates on real ECG recordings and astronomical light curves
//! (ASTRO). Those recordings are not redistributable, so this module
//! synthesizes series with the same structural properties the experiments
//! exercise:
//!
//! * [`ecg`] — quasi-periodic heartbeats whose components (P wave, QRS
//!   complex, T wave) have *different natural durations*, which is exactly
//!   why Figure 1 needs variable-length motifs;
//! * [`astro`] — superimposed stellar pulsations with drifting periods;
//! * [`random_walk`] / [`white_noise`] / [`sine_mix`] — neutral backgrounds;
//! * [`planted_pair`] — series with known motifs embedded at known offsets, used
//!   as ground truth in tests.
//!
//! All generators are deterministic given a seed.

mod astro;
mod ecg;
mod field;
mod noise;
mod planted;

pub use astro::{astro, AstroConfig};
pub use ecg::{ecg, EcgConfig};
pub use field::{epg, seismic, EpgConfig, SeismicConfig};
pub use noise::{gaussian, random_walk, sine_mix, white_noise};
pub use planted::{planted_pair, PlantedMotif};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RollingStats;

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(random_walk(200, 7), random_walk(200, 7));
        assert_ne!(random_walk(200, 7), random_walk(200, 8));
        assert_eq!(ecg(500, &EcgConfig::default(), 3), ecg(500, &EcgConfig::default(), 3));
        assert_eq!(astro(500, &AstroConfig::default(), 3), astro(500, &AstroConfig::default(), 3));
    }

    #[test]
    fn generators_emit_requested_lengths_and_finite_values() {
        for n in [1usize, 2, 63, 1000] {
            for series in [
                random_walk(n, 1),
                white_noise(n, 1, 1.0),
                ecg(n, &EcgConfig::default(), 1),
                astro(n, &AstroConfig::default(), 1),
            ] {
                assert_eq!(series.len(), n);
                assert!(series.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn generated_series_are_not_flat() {
        for series in [
            random_walk(512, 2),
            ecg(512, &EcgConfig::default(), 2),
            astro(512, &AstroConfig::default(), 2),
        ] {
            let stats = RollingStats::new(&series);
            assert!(stats.std(0, series.len()) > 1e-3);
        }
    }
}
