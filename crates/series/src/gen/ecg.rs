//! Synthetic electrocardiogram generator.
//!
//! Each heartbeat is modelled as a sum of Gaussian bumps — the standard
//! PQRST morphology (McSharry et al., IEEE TBME 2003, simplified to a
//! time-domain sum). Beat durations are jittered per beat, so the series
//! contains recurring patterns at *multiple natural lengths*: the QRS
//! complex alone is a short motif, a full P-QRS-T cycle a long one. This is
//! precisely the structure the paper's Figure 1 exploits (fixed length 50
//! finds "the second half of a ventricular contraction"; length 400 finds
//! the full beat).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::noise::gaussian;

/// Parameters of the synthetic ECG.
#[derive(Debug, Clone)]
pub struct EcgConfig {
    /// Mean beat duration in samples.
    pub beat_len: usize,
    /// Uniform jitter applied to each beat's duration, as a fraction of
    /// `beat_len` (0.1 = ±10%).
    pub beat_jitter: f64,
    /// Standard deviation of additive measurement noise.
    pub noise_std: f64,
    /// Slow baseline-wander amplitude (respiration artifact).
    pub wander_amp: f64,
}

impl Default for EcgConfig {
    fn default() -> Self {
        Self { beat_len: 280, beat_jitter: 0.08, noise_std: 0.03, wander_amp: 0.15 }
    }
}

/// The PQRST wave template: (phase center in [0,1], width fraction,
/// amplitude). Values chosen to mimic lead-II morphology.
const WAVES: [(f64, f64, f64); 5] = [
    (0.18, 0.060, 0.18),   // P wave (atrial contraction)
    (0.345, 0.018, -0.12), // Q dip
    (0.375, 0.022, 1.25),  // R spike
    (0.405, 0.020, -0.28), // S dip
    (0.62, 0.090, 0.38),   // T wave (ventricular repolarization)
];

/// Generates `n` samples of a synthetic ECG.
#[must_use]
pub fn ecg(n: usize, config: &EcgConfig, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ ECG_SEED_MIX);
    let mut out = Vec::with_capacity(n);
    let beat_len = config.beat_len.max(8);
    let mut wander_phase = rng.gen::<f64>() * std::f64::consts::TAU;

    while out.len() < n {
        let jitter = 1.0 + config.beat_jitter * (2.0 * rng.gen::<f64>() - 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let this_beat = ((beat_len as f64 * jitter).round() as usize).max(8);
        let amp_scale = 1.0 + 0.05 * (2.0 * rng.gen::<f64>() - 1.0);
        for k in 0..this_beat {
            if out.len() >= n {
                break;
            }
            let phase = k as f64 / this_beat as f64;
            let mut v = 0.0;
            for &(center, width, amp) in &WAVES {
                let d = (phase - center) / width;
                v += amp * amp_scale * (-0.5 * d * d).exp();
            }
            let t = out.len() as f64;
            let wander = config.wander_amp * (wander_phase + t / (beat_len as f64 * 4.3)).sin();
            out.push(v + wander + gaussian(&mut rng) * config.noise_std);
        }
        wander_phase += 1e-3 * (rng.gen::<f64>() - 0.5);
    }
    out.truncate(n);
    out
}

/// Domain-separation constant so `ecg(n, cfg, s)` and other generators with
/// the same seed produce unrelated streams.
const ECG_SEED_MIX: u64 = 0xec97_11fe_55aa_33cc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_spikes_repeat_at_roughly_beat_length() {
        let cfg = EcgConfig { noise_std: 0.0, wander_amp: 0.0, beat_jitter: 0.0, beat_len: 100 };
        let s = ecg(1000, &cfg, 1);
        // Find the argmax in each beat-sized window; spacing should equal
        // the beat length exactly when jitter is zero.
        let mut peaks = Vec::new();
        for b in 0..9 {
            let w = &s[b * 100..(b + 1) * 100];
            let (argmax, _) =
                w.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
            peaks.push(b * 100 + argmax);
        }
        for pair in peaks.windows(2) {
            assert_eq!(pair[1] - pair[0], 100);
        }
    }

    #[test]
    fn jitter_produces_variable_beat_lengths() {
        let cfg = EcgConfig { beat_len: 100, beat_jitter: 0.2, noise_std: 0.0, wander_amp: 0.0 };
        let s = ecg(4000, &cfg, 42);
        // Detect R peaks by thresholding; spacing should vary.
        let mut peaks = Vec::new();
        for i in 1..s.len() - 1 {
            if s[i] > 0.9 && s[i] >= s[i - 1] && s[i] >= s[i + 1] {
                peaks.push(i);
            }
        }
        assert!(peaks.len() > 10, "expected many beats, got {}", peaks.len());
        let gaps: Vec<usize> = peaks.windows(2).map(|p| p[1] - p[0]).collect();
        let min = *gaps.iter().min().unwrap();
        let max = *gaps.iter().max().unwrap();
        assert!(max > min, "beat lengths should vary: {gaps:?}");
        assert!(min >= 80 && max <= 121, "gaps out of jitter bounds: {gaps:?}");
    }

    #[test]
    fn amplitude_range_is_physiological() {
        let s = ecg(5000, &EcgConfig::default(), 7);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.8 && max < 2.0, "R peak {max}");
        assert!(min > -1.0 && min < 0.0, "trough {min}");
    }
}
