//! Background-process generators: Gaussian noise, random walks, sine mixes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws one standard-normal sample using the Box-Muller transform.
///
/// `rand` (without `rand_distr`) only offers uniform samples, so the normal
/// transform is implemented here.
#[must_use]
pub fn gaussian(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gaussian white noise of length `n` with the given standard deviation.
#[must_use]
pub fn white_noise(n: usize, seed: u64, std: f64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..n).map(|_| gaussian(&mut rng) * std).collect()
}

/// A standard Gaussian random walk of length `n` (the classic
/// matrix-profile benchmark background).
#[must_use]
pub fn random_walk(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let mut acc = 0.0;
    (0..n)
        .map(|_| {
            acc += gaussian(&mut rng);
            acc
        })
        .collect()
}

/// A sum of sinusoids plus Gaussian noise.
///
/// `components` is a list of `(period, amplitude)` pairs in sample units.
#[must_use]
pub fn sine_mix(n: usize, components: &[(f64, f64)], noise_std: f64, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let signal: f64 = components
                .iter()
                .map(|&(period, amp)| amp * (2.0 * std::f64::consts::PI * t / period).sin())
                .sum();
            signal + gaussian(&mut rng) * noise_std
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(99);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn white_noise_scales_with_std() {
        let a = white_noise(5000, 1, 1.0);
        let b = white_noise(5000, 1, 3.0);
        let va = a.iter().map(|x| x * x).sum::<f64>() / a.len() as f64;
        let vb = b.iter().map(|x| x * x).sum::<f64>() / b.len() as f64;
        assert!((vb / va - 9.0).abs() < 1.0, "ratio {}", vb / va);
    }

    #[test]
    fn random_walk_is_cumulative() {
        let w = random_walk(10, 5);
        assert_eq!(w.len(), 10);
        // Steps between consecutive points should be O(1), not O(position).
        for pair in w.windows(2) {
            assert!((pair[1] - pair[0]).abs() < 10.0);
        }
    }

    #[test]
    fn sine_mix_without_noise_is_periodic() {
        let s = sine_mix(400, &[(100.0, 2.0)], 0.0, 0);
        for i in 0..300 {
            assert!((s[i] - s[i + 100]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_length_requests_yield_empty() {
        assert!(white_noise(0, 1, 1.0).is_empty());
        assert!(random_walk(0, 1).is_empty());
        assert!(sine_mix(0, &[(10.0, 1.0)], 0.0, 1).is_empty());
    }
}
