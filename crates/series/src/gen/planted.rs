//! Ground-truth workloads: series with motifs planted at known offsets.
//!
//! Tests across the suite use these to assert that each motif-discovery
//! algorithm recovers exactly the planted pair.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::noise::gaussian;

/// Description of a planted motif instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedMotif {
    /// Offsets at which the pattern was embedded.
    pub offsets: Vec<usize>,
    /// Length of the pattern.
    pub length: usize,
}

/// Builds a random-walk background of length `n` and embeds `pattern`
/// (scaled to have a large signal-to-noise ratio against the background)
/// at each of the given offsets, perturbing each instance with Gaussian
/// noise of standard deviation `instance_noise`.
///
/// Returns the series and the [`PlantedMotif`] ground truth.
///
/// # Panics
///
/// Panics if any instance would not fit in the series or if two instances
/// overlap — the ground truth would be ambiguous otherwise.
#[must_use]
pub fn planted_pair(
    n: usize,
    pattern: &[f64],
    offsets: &[usize],
    instance_noise: f64,
    seed: u64,
) -> (Vec<f64>, PlantedMotif) {
    let m = pattern.len();
    assert!(m >= 2, "pattern must have at least 2 points");
    let mut sorted = offsets.to_vec();
    sorted.sort_unstable();
    for pair in sorted.windows(2) {
        assert!(pair[1] - pair[0] >= m, "planted instances must not overlap");
    }
    for &o in offsets {
        assert!(o + m <= n, "instance at {o} (length {m}) exceeds series length {n}");
    }

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x91ac_83fe_0246_8bdf);
    // Smooth low-variance background so the planted pattern dominates.
    let mut series = Vec::with_capacity(n);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += 0.08 * gaussian(&mut rng);
        series.push(acc);
    }

    // Normalize the pattern to unit std so the SNR is controlled.
    let mean = pattern.iter().sum::<f64>() / m as f64;
    let std =
        (pattern.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m as f64).sqrt().max(1e-9);
    for &o in offsets {
        let base = series[o];
        for (k, &p) in pattern.iter().enumerate() {
            let shaped = (p - mean) / std * 3.0;
            series[o + k] = base + shaped + gaussian(&mut rng) * instance_noise;
        }
        // Stitch the background back to the end of the instance so later
        // points continue from a sane level.
        if o + m < n {
            let jump = series[o + m - 1] - series[o + m];
            for v in &mut series[o + m..] {
                *v += jump;
            }
        }
    }

    (series, PlantedMotif { offsets: offsets.to_vec(), length: m })
}

#[cfg(test)]
mod tests {
    use super::planted_pair;
    use crate::znorm::zdist;

    fn wave(len: usize) -> Vec<f64> {
        (0..len).map(|i| (i as f64 / len as f64 * std::f64::consts::TAU * 2.0).sin()).collect()
    }

    #[test]
    fn planted_instances_are_mutually_close() {
        let pattern = wave(50);
        let (series, truth) = planted_pair(2000, &pattern, &[300, 1200], 0.01, 9);
        assert_eq!(series.len(), 2000);
        let a = &series[300..350];
        let b = &series[1200..1250];
        let d_pair = zdist(a, b);
        // The two instances must be far closer to each other than to an
        // arbitrary background window.
        let c = &series[700..750];
        let d_background = zdist(a, c);
        assert!(d_pair < 0.3 * d_background, "pair {d_pair} vs background {d_background}");
        assert_eq!(truth.offsets, vec![300, 1200]);
        assert_eq!(truth.length, 50);
    }

    #[test]
    fn multiple_instances_supported() {
        let pattern = wave(30);
        let (series, truth) = planted_pair(1500, &pattern, &[100, 600, 1100], 0.0, 4);
        assert_eq!(truth.offsets.len(), 3);
        for w in truth.offsets.windows(2) {
            let d = zdist(&series[w[0]..w[0] + 30], &series[w[1]..w[1] + 30]);
            assert!(d < 0.5, "instances {w:?} differ by {d}");
        }
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_offsets_are_rejected() {
        let pattern = wave(40);
        let _ = planted_pair(500, &pattern, &[100, 120], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds series length")]
    fn out_of_bounds_offset_is_rejected() {
        let pattern = wave(40);
        let _ = planted_pair(100, &pattern, &[80], 0.0, 1);
    }
}
