//! Synthetic astronomical light-curve generator (the paper's ASTRO
//! dataset stand-in).
//!
//! Variable stars exhibit superimposed pulsation modes whose periods drift
//! slowly; photometric pipelines additionally record noise and occasional
//! flares. The generator reproduces those traits: repeated patterns exist
//! at several scales, with enough drift that motifs of nearby lengths
//! genuinely differ — the regime in which VALMOD's variable-length search
//! pays off.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::noise::gaussian;

/// Parameters of the synthetic light curve.
#[derive(Debug, Clone)]
pub struct AstroConfig {
    /// Base periods (in samples) of the pulsation modes.
    pub periods: Vec<f64>,
    /// Amplitudes matching `periods` (shorter of the two lists wins).
    pub amplitudes: Vec<f64>,
    /// Fractional period drift per full cycle (0.002 = 0.2%).
    pub period_drift: f64,
    /// Standard deviation of photometric noise.
    pub noise_std: f64,
    /// Expected number of flares per 10 000 samples.
    pub flare_rate: f64,
}

impl Default for AstroConfig {
    fn default() -> Self {
        Self {
            periods: vec![190.0, 67.0, 23.0],
            amplitudes: vec![1.0, 0.45, 0.18],
            period_drift: 0.004,
            noise_std: 0.05,
            flare_rate: 2.0,
        }
    }
}

/// Generates `n` samples of a synthetic stellar light curve.
#[must_use]
pub fn astro(n: usize, config: &AstroConfig, seed: u64) -> Vec<f64> {
    const ASTRO_SEED_MIX: u64 = 0xa57_0bea_c0ff_ee11;
    let mut rng = SmallRng::seed_from_u64(seed ^ ASTRO_SEED_MIX);

    let modes: Vec<(f64, f64)> =
        config.periods.iter().zip(&config.amplitudes).map(|(&p, &a)| (p.max(2.0), a)).collect();
    // Per-mode running phase, advanced by a slowly drifting instantaneous
    // frequency.
    let mut phases: Vec<f64> =
        modes.iter().map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
    let mut drifts: Vec<f64> = modes.iter().map(|_| 0.0).collect();

    let mut out = Vec::with_capacity(n);
    let mut flare = 0.0f64;
    let flare_prob = config.flare_rate / 10_000.0;

    for _ in 0..n {
        let mut v = 0.0;
        for (m, &(period, amp)) in modes.iter().enumerate() {
            let freq = std::f64::consts::TAU / (period * (1.0 + drifts[m]));
            phases[m] += freq;
            drifts[m] += config.period_drift * (rng.gen::<f64>() - 0.5) / period;
            drifts[m] = drifts[m].clamp(-0.2, 0.2);
            v += amp * phases[m].sin();
        }
        if rng.gen::<f64>() < flare_prob {
            flare += 1.5 + rng.gen::<f64>();
        }
        flare *= 0.97; // exponential flare decay
        out.push(v + flare + gaussian(&mut rng) * config.noise_std);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_period_is_visible_in_autocorrelation() {
        let cfg = AstroConfig {
            periods: vec![50.0],
            amplitudes: vec![1.0],
            period_drift: 0.0,
            noise_std: 0.0,
            flare_rate: 0.0,
        };
        let s = astro(2000, &cfg, 3);
        // Autocorrelation at lag 50 should be near its maximum.
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let auto = |lag: usize| -> f64 {
            (0..s.len() - lag).map(|i| (s[i] - mean) * (s[i + lag] - mean)).sum::<f64>()
        };
        let at_period = auto(50);
        let at_half = auto(25);
        assert!(at_period > 0.0);
        assert!(at_half < at_period, "half-period {at_half} vs period {at_period}");
    }

    #[test]
    fn flares_increase_maximum() {
        let calm = AstroConfig { flare_rate: 0.0, ..AstroConfig::default() };
        let stormy = AstroConfig { flare_rate: 60.0, ..AstroConfig::default() };
        let a = astro(20_000, &calm, 5);
        let b = astro(20_000, &stormy, 5);
        let max_a = a.iter().cloned().fold(f64::MIN, f64::max);
        let max_b = b.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_b > max_a + 0.5, "flares should raise peaks: {max_a} vs {max_b}");
    }

    #[test]
    fn mismatched_period_amplitude_lists_use_shorter() {
        let cfg = AstroConfig {
            periods: vec![40.0, 80.0, 120.0],
            amplitudes: vec![1.0],
            ..AstroConfig::default()
        };
        let s = astro(100, &cfg, 1);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| v.is_finite()));
    }
}
