//! Z-normalized Euclidean distance, in every form the suite needs.
//!
//! The matrix-profile family never materializes z-normalized subsequences;
//! instead it uses the identity
//!
//! ```text
//! d²(A, B) = 2ℓ · (1 − ρ),    ρ = (QT − ℓ·μ_A·μ_B) / (ℓ·σ_A·σ_B)
//! ```
//!
//! where `QT` is the plain dot product of the two windows and `ρ` their
//! Pearson correlation. This module provides the direct (reference) distance,
//! the dot-product form, conversions between distance and correlation, and
//! the paper's *length-normalized distance* `d/√ℓ` used to rank motifs of
//! different lengths.
//!
//! **Flat windows.** A window with zero standard deviation has no
//! z-normalizable shape. Following the convention used by mature matrix
//! profile implementations, its z-normalized form is the zero vector, so the
//! distance between two flat windows is `0` and between a flat and a
//! non-flat window is `√ℓ`.

use crate::stats::FLAT_EPS;

/// Z-normalizes a window: subtracts its mean and divides by its population
/// standard deviation. A flat window maps to the zero vector.
#[must_use]
pub fn znormalize(window: &[f64]) -> Vec<f64> {
    let l = window.len();
    if l == 0 {
        return Vec::new();
    }
    let mean = window.iter().sum::<f64>() / l as f64;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / l as f64;
    let std = var.sqrt();
    if std < FLAT_EPS {
        return vec![0.0; l];
    }
    window.iter().map(|x| (x - mean) / std).collect()
}

/// Reference z-normalized Euclidean distance between two equal-length
/// windows, computed directly from the definition. O(ℓ); used by tests and
/// brute-force baselines.
///
/// # Panics
///
/// Panics if the windows have different lengths.
#[must_use]
pub fn zdist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "zdist requires equal-length windows");
    let za = znormalize(a);
    let zb = znormalize(b);
    za.iter().zip(&zb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Pearson correlation of two windows from their dot product and
/// statistics. Returns `None` if either window is flat.
#[inline]
#[must_use]
pub fn pearson_from_dot(
    qt: f64,
    l: usize,
    mean_a: f64,
    std_a: f64,
    mean_b: f64,
    std_b: f64,
) -> Option<f64> {
    if std_a < FLAT_EPS || std_b < FLAT_EPS {
        return None;
    }
    let lf = l as f64;
    let rho = (qt - lf * mean_a * mean_b) / (lf * std_a * std_b);
    Some(rho.clamp(-1.0, 1.0))
}

/// Z-normalized Euclidean distance from the dot-product identity, with the
/// flat-window convention described in the module docs.
#[inline]
#[must_use]
pub fn zdist_from_dot(qt: f64, l: usize, mean_a: f64, std_a: f64, mean_b: f64, std_b: f64) -> f64 {
    match pearson_from_dot(qt, l, mean_a, std_a, mean_b, std_b) {
        Some(rho) => dist_from_pearson(rho, l),
        None => {
            if std_a < FLAT_EPS && std_b < FLAT_EPS {
                0.0
            } else {
                (l as f64).sqrt()
            }
        }
    }
}

/// `d = √(2ℓ(1 − ρ))`, clamping rounding noise at `ρ ≈ 1`.
#[inline]
#[must_use]
pub fn dist_from_pearson(rho: f64, l: usize) -> f64 {
    (2.0 * l as f64 * (1.0 - rho.clamp(-1.0, 1.0))).max(0.0).sqrt()
}

/// Inverse of [`dist_from_pearson`]: `ρ = 1 − d²/(2ℓ)`.
#[inline]
#[must_use]
pub fn pearson_from_dist(d: f64, l: usize) -> f64 {
    (1.0 - d * d / (2.0 * l as f64)).clamp(-1.0, 1.0)
}

/// The paper's length-normalized distance `d·√(1/ℓ)`, which makes motif
/// pairs of different lengths comparable (§"Rank Motif Pairs of Variable
/// Lengths").
#[inline]
#[must_use]
pub fn length_normalized(d: f64, l: usize) -> f64 {
    debug_assert!(l > 0);
    d / (l as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn mean_std(v: &[f64]) -> (f64, f64) {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64;
        (m, var.sqrt())
    }

    #[test]
    fn znormalize_has_zero_mean_unit_variance() {
        let w = [1.0, 5.0, 2.0, 8.0, -1.0];
        let z = znormalize(&w);
        let (m, s) = mean_std(&z);
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_flat_gives_zero_vector() {
        assert_eq!(znormalize(&[2.0, 2.0, 2.0]), vec![0.0, 0.0, 0.0]);
        assert!(znormalize(&[]).is_empty());
    }

    #[test]
    fn zdist_is_shift_and_scale_invariant() {
        let a = [0.0, 1.0, 0.0, -1.0];
        let b: Vec<f64> = a.iter().map(|x| 100.0 + 7.0 * x).collect();
        assert!(zdist(&a, &b) < 1e-9);
    }

    #[test]
    fn zdist_of_identical_windows_is_zero() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!(zdist(&a, &a) < 1e-12);
    }

    #[test]
    fn zdist_of_negated_window_is_maximal() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        // d = √(2ℓ(1−(−1))) = 2√ℓ
        assert!((zdist(&a, &b) - 2.0 * (a.len() as f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn dot_form_matches_direct_form() {
        let a = [1.0, 3.0, -2.0, 0.5, 4.0, -1.0];
        let b = [2.0, -1.0, 0.0, 3.5, 1.0, 2.0];
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        let d1 = zdist(&a, &b);
        let d2 = zdist_from_dot(dot(&a, &b), a.len(), ma, sa, mb, sb);
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }

    #[test]
    fn flat_window_conventions() {
        let flat = [5.0; 4];
        let wavy = [1.0, 2.0, 3.0, 0.0];
        let (mf, sf) = mean_std(&flat);
        let (mw, sw) = mean_std(&wavy);
        assert_eq!(zdist_from_dot(dot(&flat, &flat), 4, mf, sf, mf, sf), 0.0);
        let d = zdist_from_dot(dot(&flat, &wavy), 4, mf, sf, mw, sw);
        // √ℓ = 2
        assert!((d - 2.0).abs() < 1e-12);
        // Direct form follows the same convention.
        assert!((zdist(&flat, &wavy) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_distance_roundtrip() {
        for &rho in &[-1.0, -0.5, 0.0, 0.3, 0.99, 1.0] {
            let d = dist_from_pearson(rho, 64);
            let back = pearson_from_dist(d, 64);
            assert!((rho - back).abs() < 1e-12, "rho {rho} -> {back}");
        }
    }

    #[test]
    fn pearson_is_clamped() {
        // Rounding can push |ρ| slightly beyond 1; the helpers must clamp.
        let rho = pearson_from_dot(1e9, 4, 0.0, 1.0, 0.0, 1.0).unwrap();
        assert_eq!(rho, 1.0);
        assert_eq!(dist_from_pearson(1.0 + 1e-9, 8), 0.0);
    }

    #[test]
    fn length_normalized_scales_correctly() {
        assert!((length_normalized(4.0, 16) - 1.0).abs() < 1e-12);
        assert!((length_normalized(0.0, 100)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn zdist_rejects_mismatched_lengths() {
        let _ = zdist(&[1.0], &[1.0, 2.0]);
    }
}
