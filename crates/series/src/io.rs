//! Plain-text series I/O.
//!
//! The format matches what the original VALMOD C implementation consumed:
//! one value per line (comma- or whitespace-separated values on a line are
//! also accepted), `#`-prefixed comment lines skipped.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{DataSeries, Result, SeriesError};

/// Reads a data series from a text file.
///
/// # Errors
///
/// I/O failures, unparsable tokens (with line numbers), or an empty /
/// non-finite series are reported as [`SeriesError`]s.
pub fn read_series(path: impl AsRef<Path>) -> Result<DataSeries> {
    let file = File::open(path)?;
    read_series_from(BufReader::new(file))
}

/// Reads a data series from any buffered reader (used directly by tests and
/// by the CLI when reading stdin).
///
/// # Errors
///
/// Same conditions as [`read_series`].
pub fn read_series_from(reader: impl BufRead) -> Result<DataSeries> {
    let mut values = Vec::new();
    for (line_idx, line) in reader.lines().enumerate() {
        parse_series_line(&line?, line_idx + 1, &mut values)?;
    }
    DataSeries::new(values)
}

/// Parses one line of the series text format (comment lines skipped,
/// comma- or whitespace-separated values) and appends the values to
/// `out`. The single tokenizer behind [`read_series_from`] and the CLI's
/// line-at-a-time streaming reader, so every consumer accepts the exact
/// same format.
///
/// # Errors
///
/// [`SeriesError::Parse`] with `line_no` and the offending token.
pub fn parse_series_line(line: &str, line_no: usize, out: &mut Vec<f64>) -> Result<()> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    for token in trimmed.split(|c: char| c == ',' || c.is_whitespace()) {
        if token.is_empty() {
            continue;
        }
        let value: f64 = token
            .parse()
            .map_err(|_| SeriesError::Parse { line: line_no, token: token.to_string() })?;
        out.push(value);
    }
    Ok(())
}

/// Writes a series to a text file, one value per line, full round-trip
/// precision.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_series(path: impl AsRef<Path>, values: &[f64]) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in values {
        // `{:?}` on f64 prints the shortest representation that round-trips.
        writeln!(w, "{v:?}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_one_value_per_line() {
        let s = read_series_from(Cursor::new("1.5\n-2\n3e2\n")).unwrap();
        assert_eq!(s.values(), &[1.5, -2.0, 300.0]);
    }

    #[test]
    fn final_line_without_trailing_newline_is_kept() {
        // Audit result for the "last line has no trailing newline" case:
        // `BufRead::lines` yields the final partial line, so neither the
        // file path (`read_series`) nor the stdin path (`read_series_from`)
        // ever dropped the last sample. These tests pin that behavior —
        // and the CLI's follow-capable reader has its own equivalent
        // smoke test (`stream_final_line_without_newline_is_not_dropped`).
        let s = read_series_from(Cursor::new("1.5\n-2\n3e2")).unwrap();
        assert_eq!(s.values(), &[1.5, -2.0, 300.0]);
        // Same for CSV rows and CRLF endings.
        let s = read_series_from(Cursor::new("1, 2\r\n3,4")).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
        // And for a single unterminated line.
        let s = read_series_from(Cursor::new("42.5")).unwrap();
        assert_eq!(s.values(), &[42.5]);
    }

    #[test]
    fn final_line_without_trailing_newline_roundtrips_from_disk() {
        let dir = std::env::temp_dir().join("valmod_series_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no_trailing_newline.txt");
        std::fs::write(&path, "0.25\n-1\n7.5").unwrap();
        let s = read_series(&path).unwrap();
        assert_eq!(s.values(), &[0.25, -1.0, 7.5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_csv_and_whitespace_mixes() {
        let s = read_series_from(Cursor::new("1, 2,3\n 4\t5 \n")).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let s = read_series_from(Cursor::new("# header\n\n1\n# trailing\n2\n")).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        match read_series_from(Cursor::new("1\n2\nnot_a_number\n")) {
            Err(SeriesError::Parse { line, token }) => {
                assert_eq!(line, 3);
                assert_eq!(token, "not_a_number");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            read_series_from(Cursor::new("# only comments\n")),
            Err(SeriesError::Empty)
        ));
    }

    #[test]
    fn handles_crlf_and_mixed_delimiters() {
        let s = read_series_from(Cursor::new("1\r\n2, 3\r\n\t4 ,5\r\n")).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn parses_scientific_notation_and_signs() {
        let s = read_series_from(Cursor::new("+1.5e3\n-2.25E-2\n0.0\n")).unwrap();
        assert_eq!(s.values(), &[1500.0, -0.0225, 0.0]);
    }

    #[test]
    fn rejects_textual_infinities_as_non_finite() {
        // "inf" parses as f64::INFINITY, which the series constructor
        // rejects: files cannot smuggle non-finite values in.
        match read_series_from(Cursor::new("1\ninf\n2\n")) {
            Err(SeriesError::NonFinite { index }) => assert_eq!(index, 1),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(matches!(
            read_series_from(Cursor::new("NaN\n")),
            Err(SeriesError::NonFinite { .. })
        ));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let dir = std::env::temp_dir().join("valmod_series_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        let values = vec![0.1, -2.5, 1e-12, 123_456.789, f64::MIN_POSITIVE];
        write_series(&path, &values).unwrap();
        let back = read_series(&path).unwrap();
        assert_eq!(back.values(), values.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_series("/definitely/not/a/real/path.txt").unwrap_err();
        assert!(matches!(err, SeriesError::Io(_)));
    }
}
