//! Error types shared by the whole suite.

use std::fmt;

/// Errors produced while constructing or processing data series.
#[derive(Debug)]
pub enum SeriesError {
    /// The series contains no points.
    Empty,
    /// A value is NaN or infinite.
    NonFinite {
        /// Index of the offending value.
        index: usize,
    },
    /// The series is shorter than an operation requires.
    TooShort {
        /// Actual series length.
        len: usize,
        /// Minimum length the operation needs.
        needed: usize,
    },
    /// A subsequence request falls outside the series.
    InvalidSubsequence {
        /// Requested start offset.
        offset: usize,
        /// Requested subsequence length.
        length: usize,
        /// Length of the series.
        series_len: usize,
    },
    /// A motif length range is malformed (`l_min` must satisfy
    /// `4 ≤ l_min ≤ l_max`).
    InvalidRange {
        /// Requested minimum subsequence length.
        l_min: usize,
        /// Requested maximum subsequence length.
        l_max: usize,
    },
    /// An append would exceed a bounded buffer's fixed capacity (the
    /// streaming engine's eviction-free storage never silently drops
    /// points).
    CapacityExceeded {
        /// The buffer's fixed capacity, in points.
        capacity: usize,
    },
    /// A bounded capacity cannot even hold the warmup prefix a session
    /// needs before its engine can bootstrap.
    CapacityTooSmall {
        /// The requested storage bound, in points.
        capacity: usize,
        /// The warmup (bootstrap) target the capacity must hold.
        warmup: usize,
    },
    /// A checkpoint file is unreadable: truncated, bit-flipped (checksum
    /// mismatch), wrong magic, or structurally inconsistent. Recovery
    /// treats this as "fall back to the previous generation", never as a
    /// panic.
    CheckpointCorrupt {
        /// What failed to validate.
        detail: String,
    },
    /// A checkpoint was written under an incompatible configuration
    /// (different length range, `k`, `p`, or exclusion zone — thread
    /// counts and pools are allowed to differ, they never affect state).
    CheckpointMismatch {
        /// Which configuration field disagrees, with both values.
        detail: String,
    },
    /// An I/O failure while reading or writing a series file.
    Io(std::io::Error),
    /// A line of a series file could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "series is empty"),
            Self::NonFinite { index } => {
                write!(f, "series value at index {index} is not finite")
            }
            Self::TooShort { len, needed } => {
                write!(f, "series of length {len} is too short (need at least {needed})")
            }
            Self::InvalidSubsequence { offset, length, series_len } => write!(
                f,
                "subsequence (offset={offset}, length={length}) exceeds series of length {series_len}"
            ),
            Self::InvalidRange { l_min, l_max } => {
                write!(f, "invalid subsequence length range [{l_min}, {l_max}]")
            }
            Self::CapacityExceeded { capacity } => {
                write!(f, "append exceeds the buffer's fixed capacity of {capacity} points")
            }
            Self::CapacityTooSmall { capacity, warmup } => {
                write!(f, "capacity {capacity} cannot hold the {warmup}-point bootstrap")
            }
            Self::CheckpointCorrupt { detail } => {
                write!(f, "checkpoint is corrupt: {detail}")
            }
            Self::CheckpointMismatch { detail } => {
                write!(f, "checkpoint configuration mismatch: {detail}")
            }
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, token } => {
                write!(f, "cannot parse {token:?} as a number on line {line}")
            }
        }
    }
}

impl std::error::Error for SeriesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SeriesError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::SeriesError;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SeriesError, &str)> = vec![
            (SeriesError::Empty, "empty"),
            (SeriesError::NonFinite { index: 3 }, "index 3"),
            (SeriesError::TooShort { len: 5, needed: 10 }, "length 5"),
            (SeriesError::InvalidSubsequence { offset: 9, length: 4, series_len: 10 }, "offset=9"),
            (SeriesError::InvalidRange { l_min: 10, l_max: 5 }, "[10, 5]"),
            (SeriesError::CapacityExceeded { capacity: 1024 }, "capacity of 1024"),
            (SeriesError::CapacityTooSmall { capacity: 20, warmup: 64 }, "64-point bootstrap"),
            (SeriesError::CheckpointCorrupt { detail: "short header".into() }, "short header"),
            (SeriesError::CheckpointMismatch { detail: "l_min 8 vs 16".into() }, "l_min 8 vs 16"),
            (SeriesError::Parse { line: 7, token: "abc".into() }, "line 7"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: SeriesError = io.into();
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("missing"));
    }
}
