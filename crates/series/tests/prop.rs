//! Property tests for the data-series substrate.

use proptest::prelude::*;
use valmod_series::znorm::{
    dist_from_pearson, length_normalized, pearson_from_dist, zdist, zdist_from_dot, znormalize,
};
use valmod_series::{DataSeries, RollingStats};

fn signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, min_len..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rolling stats equal the definition on arbitrary windows.
    #[test]
    fn rolling_stats_match_definition(values in signal(2, 120), seed in 0usize..1000) {
        let stats = RollingStats::new(&values);
        let l = seed % values.len() + 1;
        let i = seed % (values.len() - l + 1);
        let w = &values[i..i + l];
        let mean = w.iter().sum::<f64>() / l as f64;
        let var = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / l as f64;
        prop_assert!((stats.mean(i, l) - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.var(i, l) - var).abs() < 1e-5 * (1.0 + var));
    }

    /// z-normalization always yields zero mean and unit (or zero) variance.
    #[test]
    fn znormalize_is_normalized(w in signal(1, 64)) {
        let z = znormalize(&w);
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-9);
        prop_assert!(var.abs() < 1e-9 || (var - 1.0).abs() < 1e-9);
    }

    /// The z-normalized distance is a pseudometric: symmetric, zero on
    /// identical inputs, triangle inequality.
    #[test]
    fn zdist_is_a_pseudometric(
        a in signal(4, 32),
        b in signal(4, 32),
        c in signal(4, 32),
    ) {
        let l = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..l], &b[..l], &c[..l]);
        prop_assert!(zdist(a, a) < 1e-9);
        prop_assert!((zdist(a, b) - zdist(b, a)).abs() < 1e-9);
        prop_assert!(zdist(a, c) <= zdist(a, b) + zdist(b, c) + 1e-9);
    }

    /// Shift/scale invariance: zdist(x, αx + β) = 0 for α > 0.
    #[test]
    fn zdist_shift_scale_invariant(a in signal(4, 64), alpha in 0.01f64..100.0, beta in -50.0f64..50.0) {
        let b: Vec<f64> = a.iter().map(|x| alpha * x + beta).collect();
        prop_assert!(zdist(&a, &b) < 1e-6);
    }

    /// The dot-product form agrees with the direct form.
    #[test]
    fn dot_form_matches_direct(a in signal(4, 48), b in signal(4, 48)) {
        let l = a.len().min(b.len());
        let (a, b) = (&a[..l], &b[..l]);
        let qt: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let std = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let d1 = zdist(a, b);
        let d2 = zdist_from_dot(qt, l, mean(a), std(a), mean(b), std(b));
        // Both paths clamp differently near rho = ±1; allow generous slack.
        prop_assert!((d1 - d2).abs() < 1e-4 * (1.0 + d1), "{} vs {}", d1, d2);
    }

    /// distance <-> correlation conversions are mutually inverse.
    #[test]
    fn pearson_distance_roundtrip(rho in -1.0f64..=1.0, l in 4usize..512) {
        let d = dist_from_pearson(rho, l);
        prop_assert!((pearson_from_dist(d, l) - rho).abs() < 1e-9);
        prop_assert!(d >= 0.0 && d <= 2.0 * (l as f64).sqrt() + 1e-9);
    }

    /// Length normalization is monotone in d and inverse-monotone in ℓ.
    #[test]
    fn length_normalization_is_monotone(d in 0.0f64..100.0, l in 4usize..1000) {
        prop_assert!(length_normalized(d, l) >= length_normalized(d, l + 1) - 1e-12);
        prop_assert!(length_normalized(d + 1.0, l) > length_normalized(d, l));
    }

    /// DataSeries validation: construction succeeds iff all finite & non-empty.
    #[test]
    fn data_series_validation(values in prop::collection::vec(prop::num::f64::ANY, 0..32)) {
        let ok = !values.is_empty() && values.iter().all(|v| v.is_finite());
        prop_assert_eq!(DataSeries::new(values).is_ok(), ok);
    }
}
