//! Property tests: every baseline is exact on arbitrary inputs.

use proptest::prelude::*;
use valmod_baselines::{
    brute_best_pair, moen_range, quickmotif_best_pair, MoenConfig, QuickMotifConfig,
};

fn series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-30.0f64..30.0, 50..130)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// QUICKMOTIF equals brute force for random series and random sketch
    /// configurations.
    #[test]
    fn quickmotif_is_exact(values in series(), seed in 0usize..10_000) {
        let l = 6 + seed % 10;
        if valmod_mp::validate_window(values.len(), l).is_err() {
            return Ok(());
        }
        let config = QuickMotifConfig {
            paa_dims: 1 + seed % 12,
            group_size: 1 + (seed / 12) % 40,
            exclusion_den: 4,
        };
        let got = quickmotif_best_pair(&values, l, &config).unwrap();
        let want = brute_best_pair(&values, l, config_exclusion(l)).unwrap();
        match (got, want) {
            (Some(g), Some(w)) => prop_assert!(
                (g.distance - w.distance).abs() < 1e-6,
                "{:?} vs {:?}", g, w
            ),
            (None, None) => {}
            other => prop_assert!(false, "presence mismatch: {:?}", other),
        }
    }

    /// MOEN equals brute force at every length of a random range.
    #[test]
    fn moen_is_exact(values in series(), seed in 0usize..10_000) {
        let l_min = 6 + seed % 6;
        let l_max = l_min + seed % 4;
        if valmod_mp::validate_window(values.len(), l_max).is_err() {
            return Ok(());
        }
        let config = MoenConfig { exclusion_den: 4, num_references: 1 + seed % 6 };
        let results = moen_range(&values, l_min, l_max, &config).unwrap();
        for (offset, got) in results.iter().enumerate() {
            let l = l_min + offset;
            let want = brute_best_pair(&values, l, config_exclusion(l)).unwrap();
            match (got, want) {
                (Some(g), Some(w)) => prop_assert!(
                    (g.distance - w.distance).abs() < 1e-6,
                    "length {}: {:?} vs {:?}", l, g, w
                ),
                (None, None) => {}
                other => prop_assert!(false, "length {}: {:?}", l, other),
            }
        }
    }
}

/// The shared exclusion rule (`⌈ℓ/4⌉`), spelled out so the reference uses
/// the same zone as the configs above.
fn config_exclusion(l: usize) -> usize {
    l.div_ceil(4).max(1)
}
