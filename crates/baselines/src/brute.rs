//! All-pairs brute-force motif discovery — the suite's ground truth.
//!
//! Deliberately written from the definition (z-normalize both windows,
//! accumulate the squared differences) with no shared machinery, so it
//! cross-checks the optimized engines rather than repeating their
//! potential mistakes. O(n²·ℓ) per length.

use valmod_mp::{validate_window, MotifPair};
use valmod_series::znorm::zdist;
use valmod_series::Result;

/// The single best motif pair at a fixed length, or `None` when no
/// admissible pair exists.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn brute_best_pair(series: &[f64], l: usize, exclusion: usize) -> Result<Option<MotifPair>> {
    validate_window(series.len(), l)?;
    let m = series.len() - l + 1;
    let mut best: Option<MotifPair> = None;
    for i in 0..m {
        for j in i + exclusion + 1..m {
            let d = zdist(&series[i..i + l], &series[j..j + l]);
            if best.as_ref().is_none_or(|b| d < b.distance) {
                best = Some(MotifPair::new(i, j, d, l));
            }
        }
    }
    Ok(best)
}

/// The exact top-k motif pairs at a fixed length, using the same
/// per-row-minimum + overlap-deduplication semantics as the rest of the
/// suite (`valmod_mp::motif::top_k_pairs`).
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn brute_top_k(series: &[f64], l: usize, exclusion: usize, k: usize) -> Result<Vec<MotifPair>> {
    validate_window(series.len(), l)?;
    let m = series.len() - l + 1;

    // Row minima, straight from the definition.
    let mut row_min: Vec<Option<MotifPair>> = vec![None; m];
    for i in 0..m {
        for j in 0..m {
            if i.abs_diff(j) <= exclusion {
                continue;
            }
            let d = zdist(&series[i..i + l], &series[j..j + l]);
            if row_min[i].as_ref().is_none_or(|b| d < b.distance) {
                row_min[i] = Some(MotifPair::new(i, j, d, l));
            }
        }
    }

    let mut candidates: Vec<MotifPair> = row_min.into_iter().flatten().collect();
    candidates.sort_by(|x, y| {
        x.distance
            .partial_cmp(&y.distance)
            .expect("distances are never NaN")
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    let mut selected: Vec<MotifPair> = Vec::with_capacity(k);
    for cand in candidates {
        if selected.len() == k {
            break;
        }
        if selected.iter().any(|s| cand.overlaps(s, exclusion)) {
            continue;
        }
        selected.push(cand);
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_mp::stomp::stomp;
    use valmod_mp::{default_exclusion, motif::top_k_pairs};
    use valmod_series::gen;

    #[test]
    fn best_pair_agrees_with_stomp() {
        let series = gen::ecg(250, &gen::EcgConfig::default(), 19);
        let l = 24;
        let excl = default_exclusion(l);
        let brute = brute_best_pair(&series, l, excl).unwrap().unwrap();
        let (i, j, d) = stomp(&series, l, excl).unwrap().min_entry().unwrap();
        assert!((brute.distance - d).abs() < 1e-6);
        assert_eq!((brute.a, brute.b), (i.min(j), i.max(j)));
    }

    #[test]
    fn top_k_agrees_with_profile_extraction() {
        let series = gen::random_walk(200, 23);
        let l = 16;
        let excl = default_exclusion(l);
        let brute = brute_top_k(&series, l, excl, 4).unwrap();
        let via_profile = top_k_pairs(&stomp(&series, l, excl).unwrap(), 4);
        assert_eq!(brute.len(), via_profile.len());
        for (b, p) in brute.iter().zip(&via_profile) {
            assert!((b.distance - p.distance).abs() < 1e-6, "{b:?} vs {p:?}");
        }
    }

    #[test]
    fn no_admissible_pair_returns_none() {
        let series = gen::random_walk(40, 2);
        assert!(brute_best_pair(&series, 8, 100).unwrap().is_none());
        assert!(brute_top_k(&series, 8, 100, 3).unwrap().is_empty());
    }

    #[test]
    fn validates_window() {
        let series = gen::random_walk(40, 2);
        assert!(brute_best_pair(&series, 3, 1).is_err());
        assert!(brute_best_pair(&series, 39, 1).is_err());
    }
}
