//! Early-abandoning z-normalized distance — the verification primitive
//! shared by MOEN (MK-style search) and QUICKMOTIF.

/// Computes the z-normalized Euclidean distance between the windows at
/// offsets `i` and `j` (length `l`), abandoning as soon as the running sum
/// of squared differences exceeds `cutoff²`.
///
/// Returns `None` when abandoned (distance is certainly `> cutoff`), the
/// exact distance otherwise. `means`/`stds` are per-offset window
/// statistics for length `l`; flat windows (σ = 0) are the caller's
/// responsibility — this fast path assumes non-degenerate inputs.
#[must_use]
pub fn early_abandon_zdist(
    values: &[f64],
    means: &[f64],
    stds: &[f64],
    i: usize,
    j: usize,
    l: usize,
    cutoff: f64,
) -> Option<f64> {
    let cutoff_sq = cutoff * cutoff;
    let (mu_i, sig_i) = (means[i], stds[i]);
    let (mu_j, sig_j) = (means[j], stds[j]);
    let inv_i = 1.0 / sig_i;
    let inv_j = 1.0 / sig_j;
    let mut acc = 0.0f64;
    // Check the abandonment condition in blocks: per-element checks cost
    // more than they save for the short windows this suite processes.
    const BLOCK: usize = 16;
    let mut t = 0;
    while t < l {
        let end = (t + BLOCK).min(l);
        for k in t..end {
            let a = (values[i + k] - mu_i) * inv_i;
            let b = (values[j + k] - mu_j) * inv_j;
            let d = a - b;
            acc = d.mul_add(d, acc);
        }
        if acc > cutoff_sq {
            return None;
        }
        t = end;
    }
    Some(acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::early_abandon_zdist;
    use valmod_series::znorm::zdist;
    use valmod_series::{gen, RollingStats};

    fn stats_for(series: &[f64], l: usize) -> (Vec<f64>, Vec<f64>) {
        let stats = RollingStats::new(series);
        (stats.means_for_length(l), stats.stds_for_length(l))
    }

    #[test]
    fn matches_reference_distance_when_not_abandoned() {
        let series = gen::random_walk(200, 5);
        let l = 24;
        let (means, stds) = stats_for(&series, l);
        for &(i, j) in &[(0usize, 50usize), (10, 130), (100, 170)] {
            let d = early_abandon_zdist(&series, &means, &stds, i, j, l, f64::INFINITY)
                .expect("infinite cutoff never abandons");
            let expect = zdist(&series[i..i + l], &series[j..j + l]);
            assert!((d - expect).abs() < 1e-9, "({i},{j}): {d} vs {expect}");
        }
    }

    #[test]
    fn abandons_below_true_distance() {
        let series = gen::white_noise(100, 9, 1.0);
        let l = 32;
        let (means, stds) = stats_for(&series, l);
        let true_d = zdist(&series[0..l], &series[40..40 + l]);
        assert!(early_abandon_zdist(&series, &means, &stds, 0, 40, l, true_d * 0.5).is_none());
        assert!(early_abandon_zdist(&series, &means, &stds, 0, 40, l, true_d * 2.0).is_some());
    }

    #[test]
    fn cutoff_exactly_at_distance_is_kept() {
        let series = gen::sine_mix(120, &[(30.0, 1.0)], 0.0, 1);
        let l = 16;
        let (means, stds) = stats_for(&series, l);
        // Identical windows one period apart: distance ~0, never abandoned.
        let d = early_abandon_zdist(&series, &means, &stds, 0, 30, l, 1e-6).unwrap();
        assert!(d < 1e-6);
    }
}
