#![warn(missing_docs)]

//! Competitor algorithms from the VALMOD paper's evaluation (Figure 3).
//!
//! The paper compares VALMOD against two families of algorithms:
//!
//! * fixed-length exact motif discovery run once per length in the range —
//!   STOMP (provided by `valmod-mp`) and **QUICKMOTIF** ([`quickmotif`]),
//!   the MBR/best-first algorithm of Li et al. (ICDE 2015);
//! * **MOEN** ([`moen`]), Mueen's enumeration of motifs of all lengths
//!   (ICDM 2013), which takes the range natively and reports the best
//!   pair per length using MK-style reference-point pruning;
//! * plus the all-pairs **brute force** ([`brute`]), used throughout the
//!   suite as ground truth.
//!
//! All implementations are exact; tests cross-check every one of them
//! against the brute force.

pub mod brute;
pub mod moen;
pub mod quickmotif;
pub mod verify;

pub use brute::{brute_best_pair, brute_top_k};
pub use moen::{moen_range, MoenConfig};
pub use quickmotif::{quickmotif_best_pair, quickmotif_range, QuickMotifConfig};
