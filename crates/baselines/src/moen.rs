//! MOEN — enumeration of the best motif pair of every length in a range
//! (Mueen, ICDM 2013).
//!
//! MOEN extends the MK best-pair algorithm across a length range: for each
//! length it finds the exact closest pair using reference-point pruning
//! (the triangle inequality on a handful of precomputed distance
//! profiles), warm-starting each length's best-so-far from the previous
//! length's motif. Asymptotically it does O(n²) *worst-case work per
//! length* — which is exactly why the paper's Figure 3 shows it scaling
//! worst among the competitors as ranges widen.
//!
//! Our implementation follows the MK skeleton:
//!
//! 1. pick `r` spread-out reference subsequences and compute their full
//!    distance profiles (MASS, O(n log n) each);
//! 2. order all subsequences by distance to the first reference;
//! 3. scan pairs in increasing order-gap; the triangle bound
//!    `|d(x, ref) − d(y, ref)|` prunes pairs and terminates whole scans;
//! 4. verify survivors with an early-abandoning distance.

use valmod_mp::mass::DistanceProfiler;
use valmod_mp::{validate_window, MotifPair};
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::zdist;
use valmod_series::{Result, RollingStats};

use crate::verify::early_abandon_zdist;

/// MOEN parameters.
#[derive(Debug, Clone)]
pub struct MoenConfig {
    /// Trivial-match exclusion denominator (zone = `⌈ℓ/den⌉`).
    pub exclusion_den: usize,
    /// Number of reference subsequences for the triangle bound.
    pub num_references: usize,
}

impl Default for MoenConfig {
    fn default() -> Self {
        Self { exclusion_den: 4, num_references: 8 }
    }
}

impl MoenConfig {
    fn exclusion(&self, l: usize) -> usize {
        l.div_ceil(self.exclusion_den.max(1)).max(1)
    }
}

/// The exact best motif pair for **every** length in `[l_min, l_max]`.
///
/// Lengths with no admissible pair yield `None` at their position.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] when even `l_max` cannot host a
/// pair, or for `l_min` below the minimal window.
pub fn moen_range(
    series: &[f64],
    l_min: usize,
    l_max: usize,
    config: &MoenConfig,
) -> Result<Vec<Option<MotifPair>>> {
    if l_min > l_max {
        return Err(valmod_series::SeriesError::InvalidRange { l_min, l_max });
    }
    validate_window(series.len(), l_min)?;
    validate_window(series.len(), l_max)?;

    let stats = RollingStats::new(series);
    let profiler = DistanceProfiler::new(series)?;
    let mut results = Vec::with_capacity(l_max - l_min + 1);
    let mut warm: Option<MotifPair> = None;

    for l in l_min..=l_max {
        let best = best_pair_mk(series, &stats, &profiler, l, config, warm)?;
        warm = best;
        results.push(best);
    }
    Ok(results)
}

/// MK-style exact best pair at one length.
fn best_pair_mk(
    series: &[f64],
    stats: &RollingStats,
    profiler: &DistanceProfiler,
    l: usize,
    config: &MoenConfig,
    warm: Option<MotifPair>,
) -> Result<Option<MotifPair>> {
    let n = series.len();
    let m = n - l + 1;
    let excl = config.exclusion(l);
    let means = stats.means_for_length(l);
    let stds = stats.stds_for_length(l);

    if stds.iter().any(|&s| s < FLAT_EPS) {
        // Degenerate windows break the metric machinery (their
        // "distance" is a convention, not a Euclidean distance, so the
        // triangle inequality no longer holds). Fall back to the exact
        // profile-based engine for this length.
        let mp = valmod_mp::stomp::stomp(series, l, excl)?;
        return Ok(mp.min_entry().map(|(i, j, d)| MotifPair::new(i, j, d, l)));
    }

    // Best-so-far: warm start from the previous length's motif.
    let mut best: Option<MotifPair> = None;
    if let Some(w) = warm {
        if w.b + l <= n && w.b - w.a > excl {
            let d = zdist(&series[w.a..w.a + l], &series[w.b..w.b + l]);
            best = Some(MotifPair::new(w.a, w.b, d, l));
        }
    }

    // Reference subsequences, spread evenly; their profiles both seed the
    // best-so-far and power the triangle bound.
    let r = config.num_references.max(1).min(m);
    let mut ref_profiles: Vec<Vec<f64>> = Vec::with_capacity(r);
    for t in 0..r {
        let ref_offset = t * (m - 1) / r.max(1);
        let profile = profiler.self_profile(ref_offset, l)?;
        for (x, &d) in profile.iter().enumerate() {
            if x.abs_diff(ref_offset) > excl && best.as_ref().is_none_or(|b| d < b.distance) {
                best = Some(MotifPair::new(ref_offset, x, d, l));
            }
        }
        ref_profiles.push(profile);
    }

    // Order by distance to the first reference.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&x, &y| {
        ref_profiles[0][x]
            .partial_cmp(&ref_profiles[0][y])
            .expect("distances are never NaN")
            .then(x.cmp(&y))
    });

    // Scan pairs by increasing order-gap; |d(x,ref0) − d(y,ref0)| grows
    // with the gap, so a gap whose *minimum* bound beats best-so-far ends
    // the search.
    if best.is_some() {
        // Best-so-far as a plain float, kept in sync with `best`, so the
        // pruning cutoff tightens as the scan improves it.
        let mut bsf = best.as_ref().map_or(f64::INFINITY, |b| b.distance);
        for gap in 1..m {
            let mut min_gap_bound = f64::INFINITY;
            for idx in 0..m - gap {
                let (x, y) = (order[idx], order[idx + gap]);
                let bound0 = (ref_profiles[0][x] - ref_profiles[0][y]).abs();
                min_gap_bound = min_gap_bound.min(bound0);
                if bound0 >= bsf || x.abs_diff(y) <= excl {
                    continue;
                }
                // Tighten with the remaining references before verifying.
                let bound =
                    ref_profiles.iter().skip(1).map(|p| (p[x] - p[y]).abs()).fold(bound0, f64::max);
                if bound >= bsf {
                    continue;
                }
                if let Some(d) = early_abandon_zdist(series, &means, &stds, x, y, l, bsf) {
                    if d < bsf {
                        bsf = d;
                        best = Some(MotifPair::new(x, y, d, l));
                    }
                }
            }
            // All pairs at this gap were bounded away; pairs at any larger
            // gap have pointwise larger bounds, so the search is complete.
            if min_gap_bound >= bsf {
                break;
            }
        }
    }

    // Pathological case: exclusion so large that references saw nothing —
    // do the honest quadratic scan.
    if best.is_none() {
        for i in 0..m {
            for j in i + excl + 1..m {
                let d = zdist(&series[i..i + l], &series[j..j + l]);
                if best.as_ref().is_none_or(|b| d < b.distance) {
                    best = Some(MotifPair::new(i, j, d, l));
                }
            }
        }
    }

    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_best_pair;
    use valmod_series::gen;

    fn assert_matches_brute(series: &[f64], l_min: usize, l_max: usize) {
        let config = MoenConfig::default();
        let results = moen_range(series, l_min, l_max, &config).unwrap();
        assert_eq!(results.len(), l_max - l_min + 1);
        for (offset, got) in results.iter().enumerate() {
            let l = l_min + offset;
            let expect = brute_best_pair(series, l, config.exclusion(l)).unwrap();
            match (got, expect) {
                (Some(g), Some(e)) => {
                    assert!((g.distance - e.distance).abs() < 1e-6, "length {l}: {g:?} vs {e:?}")
                }
                (None, None) => {}
                other => panic!("length {l}: presence mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn matches_brute_on_random_walk() {
        let series = gen::random_walk(220, 31);
        assert_matches_brute(&series, 8, 20);
    }

    #[test]
    fn matches_brute_on_ecg() {
        let series = gen::ecg(260, &gen::EcgConfig::default(), 15);
        assert_matches_brute(&series, 16, 28);
    }

    #[test]
    fn matches_brute_on_noise() {
        // White noise defeats the triangle bound (everything equidistant),
        // exercising the verification-heavy path.
        let series = gen::white_noise(160, 44, 1.0);
        assert_matches_brute(&series, 8, 14);
    }

    #[test]
    fn matches_brute_with_flat_plateau() {
        let mut series = gen::white_noise(180, 4, 1.0);
        for v in &mut series[60..100] {
            *v = 0.5;
        }
        assert_matches_brute(&series, 8, 12);
    }

    #[test]
    fn rejects_inverted_range() {
        let series = gen::random_walk(100, 1);
        assert!(moen_range(&series, 20, 10, &MoenConfig::default()).is_err());
    }

    #[test]
    fn single_length_range_works() {
        let series = gen::random_walk(150, 9);
        let results = moen_range(&series, 16, 16, &MoenConfig::default()).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_some());
    }
}
