//! QUICKMOTIF — MBR-based exact fixed-length motif discovery
//! (Li, U, Yiu, Gong — ICDE 2015).
//!
//! QUICKMOTIF sketches every z-normalized subsequence with PAA (piecewise
//! aggregate approximation), groups consecutive subsequences into minimum
//! bounding rectangles (MBRs) in sketch space, and searches MBR *pairs*
//! best-first by their lower-bounded distance, verifying candidates with
//! an early-abandoning distance until the bound exceeds the best pair
//! found. Like STOMP it answers one length per run; the paper's Figure 3
//! loops it over the length range.
//!
//! The PAA bound is the classic one: for z-normalized windows `â`, `b̂`
//! summarized by segment averages, `Σ_s len_s·(paa_a[s] − paa_b[s])² ≤
//! ‖â − b̂‖²` by Cauchy-Schwarz per segment, and the MBR form replaces the
//! per-segment difference by the gap between the rectangles' intervals.

use valmod_mp::{validate_window, MotifPair};
use valmod_series::stats::FLAT_EPS;
use valmod_series::{Result, RollingStats};

use crate::verify::early_abandon_zdist;

/// QUICKMOTIF parameters.
#[derive(Debug, Clone)]
pub struct QuickMotifConfig {
    /// PAA sketch dimensionality (segments per window).
    pub paa_dims: usize,
    /// Subsequences per MBR group.
    pub group_size: usize,
    /// Trivial-match exclusion denominator (zone = `⌈ℓ/den⌉`).
    pub exclusion_den: usize,
}

impl Default for QuickMotifConfig {
    fn default() -> Self {
        Self { paa_dims: 8, group_size: 32, exclusion_den: 4 }
    }
}

impl QuickMotifConfig {
    fn exclusion(&self, l: usize) -> usize {
        l.div_ceil(self.exclusion_den.max(1)).max(1)
    }
}

/// The exact best motif pair at one length, or `None` when no admissible
/// pair exists.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn quickmotif_best_pair(
    series: &[f64],
    l: usize,
    config: &QuickMotifConfig,
) -> Result<Option<MotifPair>> {
    validate_window(series.len(), l)?;
    let m = series.len() - l + 1;
    let excl = config.exclusion(l);
    let stats = RollingStats::new(series);
    let means = stats.means_for_length(l);
    let stds = stats.stds_for_length(l);

    if stds.iter().any(|&s| s < FLAT_EPS) {
        // Flat windows use a conventional (non-Euclidean) distance that
        // the PAA bound does not cover; fall back to the exact engine.
        let mp = valmod_mp::stomp::stomp(series, l, excl)?;
        return Ok(mp.min_entry().map(|(i, j, d)| MotifPair::new(i, j, d, l)));
    }

    // ---- PAA sketches of every z-normalized window. ----
    let w = config.paa_dims.clamp(1, l);
    // Segment boundaries (as even as possible).
    let bounds: Vec<(usize, usize)> = (0..w).map(|s| (s * l / w, (s + 1) * l / w)).collect();
    let seg_lens: Vec<f64> = bounds.iter().map(|&(a, b)| (b - a) as f64).collect();
    // Prefix sums for O(1) segment sums.
    let mut prefix = Vec::with_capacity(series.len() + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in series {
        acc += v;
        prefix.push(acc);
    }
    let mut sketches = vec![0.0f64; m * w];
    for i in 0..m {
        let inv = 1.0 / stds[i];
        for (s, &(a, b)) in bounds.iter().enumerate() {
            let seg_sum = prefix[i + b] - prefix[i + a];
            sketches[i * w + s] = (seg_sum / seg_lens[s] - means[i]) * inv;
        }
    }

    // ---- MBRs over groups of consecutive windows. ----
    let g = config.group_size.max(1);
    let num_groups = m.div_ceil(g);
    let mut mbr_lo = vec![f64::INFINITY; num_groups * w];
    let mut mbr_hi = vec![f64::NEG_INFINITY; num_groups * w];
    for i in 0..m {
        let grp = i / g;
        for s in 0..w {
            let v = sketches[i * w + s];
            let idx = grp * w + s;
            mbr_lo[idx] = mbr_lo[idx].min(v);
            mbr_hi[idx] = mbr_hi[idx].max(v);
        }
    }
    let mbr_mindist_sq = |ga: usize, gb: usize| -> f64 {
        let mut acc = 0.0;
        for s in 0..w {
            let (alo, ahi) = (mbr_lo[ga * w + s], mbr_hi[ga * w + s]);
            let (blo, bhi) = (mbr_lo[gb * w + s], mbr_hi[gb * w + s]);
            let gap = if ahi < blo {
                blo - ahi
            } else if bhi < alo {
                alo - bhi
            } else {
                0.0
            };
            acc += seg_lens[s] * gap * gap;
        }
        acc
    };

    // ---- Best-first over group pairs. ----
    let mut group_pairs: Vec<(f64, u32, u32)> =
        Vec::with_capacity(num_groups * (num_groups + 1) / 2);
    for ga in 0..num_groups {
        for gb in ga..num_groups {
            // Groups entirely inside the exclusion band can be skipped.
            let min_offset_gap = if gb == ga { 0 } else { (gb - ga - 1) * g + 1 };
            let max_offset_gap = (gb - ga + 1) * g;
            if max_offset_gap <= excl {
                continue;
            }
            let _ = min_offset_gap;
            #[allow(clippy::cast_possible_truncation)]
            group_pairs.push((mbr_mindist_sq(ga, gb), ga as u32, gb as u32));
        }
    }
    group_pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are never NaN"));

    let mut best: Option<MotifPair> = None;
    let mut bsf = f64::INFINITY;
    let paa_pair_bound_sq = |x: usize, y: usize| -> f64 {
        let mut acc = 0.0;
        for s in 0..w {
            let d = sketches[x * w + s] - sketches[y * w + s];
            acc += seg_lens[s] * d * d;
        }
        acc
    };

    for &(mindist_sq, ga, gb) in &group_pairs {
        if mindist_sq >= bsf * bsf {
            break; // every remaining group pair is bounded away
        }
        let (ga, gb) = (ga as usize, gb as usize);
        let xa = ga * g..(ga * g + g).min(m);
        for x in xa {
            let yb = if ga == gb { x + 1 } else { gb * g }..(gb * g + g).min(m);
            for y in yb {
                if y.abs_diff(x) <= excl {
                    continue;
                }
                if paa_pair_bound_sq(x, y) >= bsf * bsf {
                    continue;
                }
                if let Some(d) = early_abandon_zdist(series, &means, &stds, x, y, l, bsf) {
                    if d < bsf {
                        bsf = d;
                        best = Some(MotifPair::new(x, y, d, l));
                    }
                }
            }
        }
    }
    Ok(best)
}

/// The paper's range adaptation: one QUICKMOTIF run per length.
///
/// # Errors
///
/// Propagates the per-length validation errors.
pub fn quickmotif_range(
    series: &[f64],
    l_min: usize,
    l_max: usize,
    config: &QuickMotifConfig,
) -> Result<Vec<Option<MotifPair>>> {
    if l_min > l_max {
        return Err(valmod_series::SeriesError::InvalidRange { l_min, l_max });
    }
    (l_min..=l_max).map(|l| quickmotif_best_pair(series, l, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_best_pair;
    use valmod_series::gen;

    fn assert_matches_brute(series: &[f64], l: usize, config: &QuickMotifConfig) {
        let got = quickmotif_best_pair(series, l, config).unwrap();
        let expect = brute_best_pair(series, l, config.exclusion(l)).unwrap();
        match (got, expect) {
            (Some(g), Some(e)) => {
                assert!((g.distance - e.distance).abs() < 1e-6, "length {l}: {g:?} vs {e:?}")
            }
            (None, None) => {}
            other => panic!("length {l}: presence mismatch {other:?}"),
        }
    }

    #[test]
    fn matches_brute_on_random_walk() {
        let series = gen::random_walk(300, 51);
        for l in [8usize, 16, 32] {
            assert_matches_brute(&series, l, &QuickMotifConfig::default());
        }
    }

    #[test]
    fn matches_brute_on_ecg() {
        let series = gen::ecg(280, &gen::EcgConfig::default(), 27);
        assert_matches_brute(&series, 24, &QuickMotifConfig::default());
    }

    #[test]
    fn matches_brute_across_sketch_configurations() {
        let series = gen::astro(240, &gen::AstroConfig::default(), 63);
        for cfg in [
            QuickMotifConfig { paa_dims: 1, group_size: 4, exclusion_den: 4 },
            QuickMotifConfig { paa_dims: 4, group_size: 64, exclusion_den: 4 },
            QuickMotifConfig { paa_dims: 16, group_size: 8, exclusion_den: 4 },
            // paa_dims larger than the window must clamp, not break.
            QuickMotifConfig { paa_dims: 64, group_size: 16, exclusion_den: 4 },
        ] {
            assert_matches_brute(&series, 20, &cfg);
        }
    }

    #[test]
    fn matches_brute_with_flat_plateau() {
        let mut series = gen::white_noise(200, 6, 1.0);
        for v in &mut series[70..110] {
            *v = -1.0;
        }
        assert_matches_brute(&series, 12, &QuickMotifConfig::default());
    }

    #[test]
    fn range_adaptation_covers_every_length() {
        let series = gen::sine_mix(300, &[(40.0, 1.0)], 0.1, 2);
        let results = quickmotif_range(&series, 10, 14, &QuickMotifConfig::default()).unwrap();
        assert_eq!(results.len(), 5);
        for (offset, r) in results.iter().enumerate() {
            let pair = r.expect("periodic series always has motifs");
            assert_eq!(pair.length, 10 + offset);
        }
    }

    #[test]
    fn rejects_inverted_range() {
        let series = gen::random_walk(100, 1);
        assert!(quickmotif_range(&series, 20, 10, &QuickMotifConfig::default()).is_err());
    }
}
