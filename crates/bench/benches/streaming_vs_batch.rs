//! The streaming acceptance bench: per-append cost of the incremental
//! engine against re-running the batch engine per append, at the
//! roadmap's reference workload n = 4096, R = 20 lengths.
//!
//! `batch_rerun_per_append` times ONE full batch run — exactly what a
//! non-incremental deployment pays for every appended point.
//! `stream_append` times one incremental append (O(n·R));
//! `stream_extend_chunk64` times a 64-point batched append (divide by 64
//! for the amortized per-point cost). The engine's acceptance criterion
//! is a ≥10× gap between the batch re-run and a streaming append.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_core::{run_valmod, ValmodConfig};
use valmod_stream::StreamingValmod;

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let n = 4096usize;
    let (l_min, l_max) = (64usize, 83); // R = 20 lengths
    let config = ValmodConfig::new(l_min, l_max).with_k(1).with_threads(1);
    // Extra points past n feed the append benches (the engine keeps
    // growing slightly while sampling; the O(n·R) cost drifts by <20%).
    let series = Dataset::Ecg.generate(n + 1024);

    let mut group = c.benchmark_group("streaming_vs_batch");

    group.sample_size(10);
    let batch_input = &series[..n];
    group.bench_function("batch_rerun_per_append", |b| {
        b.iter(|| black_box(run_valmod(black_box(batch_input), &config).unwrap()));
    });

    group.sample_size(50);
    let mut engine = StreamingValmod::new(&series[..n], config.clone()).unwrap();
    let tail: Vec<f64> = series[n..].to_vec();
    let mut at = 0usize;
    group.bench_function("stream_append", |b| {
        b.iter(|| {
            engine.append(black_box(tail[at % tail.len()]));
            at += 1;
        });
    });

    group.sample_size(10);
    let mut chunk_engine = StreamingValmod::new(&series[..n], config.clone()).unwrap();
    let mut chunk_at = 0usize;
    group.bench_function("stream_extend_chunk64", |b| {
        b.iter(|| {
            let chunk: Vec<f64> = (0..64).map(|k| tail[(chunk_at + k) % tail.len()]).collect();
            chunk_engine.extend(black_box(&chunk));
            chunk_at += 64;
        });
    });

    // The durable session's append path: every 64th append also
    // serializes a full checkpoint image (into memory — fsync policy is
    // the store's business, the bench isolates the serialization tax).
    group.sample_size(50);
    let mut ck_engine = StreamingValmod::new(&series[..n], config.clone()).unwrap();
    let mut ck_at = 0usize;
    let mut sink: Vec<u8> = Vec::new();
    group.bench_function("stream_append_checkpoint_every64", |b| {
        b.iter(|| {
            ck_engine.append(black_box(tail[ck_at % tail.len()]));
            ck_at += 1;
            if ck_at.is_multiple_of(64) {
                sink.clear();
                ck_engine.checkpoint_to(&mut sink).unwrap();
                black_box(sink.len());
            }
        });
    });
    group.finish();

    // Acceptance gate: checkpointing every 64 appends must cost under
    // 10% of plain append throughput at the reference workload.
    let mut plain = StreamingValmod::new(&series[..n], config.clone()).unwrap();
    let mut durable = StreamingValmod::new(&series[..n], config).unwrap();
    let rounds = 768usize;
    let plain_secs = time_appends(&mut plain, &series[n..], rounds, None);
    let durable_secs = time_appends(&mut durable, &series[n..], rounds, Some(64));
    let overhead = durable_secs / plain_secs - 1.0;
    eprintln!(
        "checkpoint-every-64 overhead: {:.1}% ({:.1} vs {:.1} µs/append)",
        overhead * 100.0,
        durable_secs / rounds as f64 * 1e6,
        plain_secs / rounds as f64 * 1e6,
    );
    assert!(
        overhead < 0.10,
        "checkpoint-every-64 costs {:.1}% of append throughput (budget: 10%)",
        overhead * 100.0
    );
}

/// Wall-clock for `rounds` appends, optionally serializing a checkpoint
/// image every `ckpt_every` appends.
fn time_appends(
    engine: &mut StreamingValmod,
    tail: &[f64],
    rounds: usize,
    ckpt_every: Option<usize>,
) -> f64 {
    let mut sink: Vec<u8> = Vec::new();
    let started = std::time::Instant::now();
    for i in 0..rounds {
        engine.append(black_box(tail[i % tail.len()]));
        if let Some(every) = ckpt_every {
            if (i + 1).is_multiple_of(every) {
                sink.clear();
                engine.checkpoint_to(&mut sink).unwrap();
                black_box(sink.len());
            }
        }
    }
    started.elapsed().as_secs_f64()
}

criterion_group!(streaming, bench_streaming_vs_batch);
criterion_main!(streaming);
