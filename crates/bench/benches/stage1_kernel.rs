//! Micro-bench of the stage-1 diagonal kernel (the SIMD + prefilter walk
//! behind `valmod_core::run_valmod`'s first stage).
//!
//! A run with `l_min == l_max` is *pure* stage 1 — the stage-2 length loop
//! is empty — so timing it isolates the kernel: per admissible pair one
//! fused multiply-add, one ρ/d conversion, two best compares and two
//! prefiltered selector offers. The printed per-iteration time divides by
//! the cell count below to give cells/sec, the number `perfsnap` records
//! as `stage1_cells_per_sec`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::{stage1_cells, Dataset};
use valmod_core::{run_valmod, ValmodConfig};

fn bench_stage1_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage1_kernel");
    group.sample_size(10);
    let l = 64usize;
    for n in [4_096usize, 16_384] {
        for (name, series) in
            [("ecg", Dataset::Ecg.generate(n)), ("astro", Dataset::Astro.generate(n))]
        {
            let id = format!("{name}_n{n}_cells{}", stage1_cells(n, l));
            // Single thread: the kernel's raw per-core throughput, the
            // number the 1.5× acceptance bar is measured on.
            let config = ValmodConfig::new(l, l).with_k(1).with_threads(1);
            group.bench_with_input(BenchmarkId::new("threads1", &id), &n, |b, _| {
                b.iter(|| black_box(run_valmod(black_box(&series), &config).unwrap()));
            });
        }
    }
    group.finish();
}

/// The same walk with `p` at the paper default, to expose the selector
/// offer cost the prefilter removes (larger `p` = more offers surviving).
fn bench_stage1_profile_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage1_kernel_profile_size");
    group.sample_size(10);
    let (n, l) = (8_192usize, 64usize);
    let series = Dataset::Ecg.generate(n);
    for p in [1usize, 8, 32] {
        let config = ValmodConfig::new(l, l).with_k(1).with_threads(1).with_profile_size(p);
        group.bench_with_input(BenchmarkId::new("p", p), &p, |b, _| {
            b.iter(|| black_box(run_valmod(black_box(&series), &config).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage1_kernel, bench_stage1_profile_sizes);
criterion_main!(benches);
