//! Ablation: how the partial-profile size `p` trades memory for pruning
//! power. Small `p` forces MASS recomputations (weak pruning); large `p`
//! pays more per-length update work. DESIGN.md calls this the central
//! design choice of VALMOD's stage 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_core::{run_valmod, ValmodConfig};

fn bench_profile_size(c: &mut Criterion) {
    let series = Dataset::Ecg.generate(8_000);
    let (l_min, l_max) = (48, 64);

    let mut group = c.benchmark_group("ablation_profile_size");
    group.sample_size(10);
    for p in [1usize, 4, 16] {
        let config = ValmodConfig::new(l_min, l_max).with_k(1).with_profile_size(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| black_box(run_valmod(black_box(&series), &config).unwrap()));
        });
    }
    group.finish();
}

/// Companion measurement printed once per bench run: the fraction of rows
/// recomputed per `p`, i.e. the pruning power itself (criterion measures
/// only time; the recomputation counts explain it).
fn report_pruning_power() {
    let series = Dataset::Ecg.generate(8_000);
    let (l_min, l_max) = (48, 64);
    eprintln!("# pruning power (ECG n=8000, range {l_min}..={l_max})");
    eprintln!("# p, recomputed rows, total row-steps");
    for p in [1usize, 2, 4, 8, 16, 32] {
        let config = ValmodConfig::new(l_min, l_max).with_k(1).with_profile_size(p);
        let out = run_valmod(&series, &config).unwrap();
        let recomputed: usize = out.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
        let total: usize =
            out.per_length.iter().skip(1).map(|r| r.stats.valid_rows + r.stats.invalid_rows).sum();
        eprintln!("{p}, {recomputed}, {total}");
    }
}

fn benches(c: &mut Criterion) {
    report_pruning_power();
    bench_profile_size(c);
}

criterion_group!(ablation, benches);
criterion_main!(ablation);
