//! Criterion companion to Figure 3 (top): time vs motif-length range
//! width, all four algorithms, at a size small enough for statistical
//! benchmarking. The full paper-shaped grid (with timeouts) is produced by
//! the `fig3` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::{Algorithm, Dataset};

fn bench_ranges(c: &mut Criterion) {
    let n = 6_000;
    let l_min = 48;
    let series = Dataset::Ecg.generate(n);

    let mut group = c.benchmark_group("fig3_top_ecg");
    group.sample_size(10);
    for width in [4usize, 8, 16] {
        let l_max = l_min + width - 1;
        for algo in Algorithm::ALL {
            // MOEN's verification-heavy scan is orders slower; keep its
            // grid point count honest but bounded.
            if algo == Algorithm::Moen && width > 8 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), width), &width, |b, _| {
                b.iter(|| black_box(algo.run(black_box(&series), l_min, l_max)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ranges);
criterion_main!(benches);
