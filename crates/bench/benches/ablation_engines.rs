//! Ablation: the fixed-length matrix-profile engines — STAMP (O(n² log n))
//! vs STOMP (O(n²)) vs diagonal-parallel STOMP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_mp::default_exclusion;
use valmod_mp::stamp::stamp;
use valmod_mp::stomp::{stomp, stomp_parallel};

fn bench_engines(c: &mut Criterion) {
    let l = 64;
    let excl = default_exclusion(l);

    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);
    for n in [4_000usize, 8_000] {
        let series = Dataset::Astro.generate(n);
        group.bench_with_input(BenchmarkId::new("stomp", n), &n, |b, _| {
            b.iter(|| black_box(stomp(black_box(&series), l, excl).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("stomp_par4", n), &n, |b, _| {
            b.iter(|| black_box(stomp_parallel(black_box(&series), l, excl, 4).unwrap()));
        });
        // STAMP's O(n² log n) makes larger points too slow to sample.
        if n <= 4_000 {
            group.bench_with_input(BenchmarkId::new("stamp", n), &n, |b, _| {
                b.iter(|| black_box(stamp(black_box(&series), l, excl).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(ablation, bench_engines);
criterion_main!(ablation);
