//! Criterion companion to Figure 3 (bottom): time vs series length at a
//! fixed range width. The full paper-shaped grid (with timeouts) is
//! produced by the `fig3` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::{Algorithm, Dataset};

fn bench_sizes(c: &mut Criterion) {
    let l_min = 48;
    let width = 8;
    let l_max = l_min + width - 1;

    let mut group = c.benchmark_group("fig3_bottom_astro");
    group.sample_size(10);
    for n in [2_000usize, 4_000, 8_000] {
        let series = Dataset::Astro.generate(n);
        for algo in Algorithm::ALL {
            if algo == Algorithm::Moen && n > 4_000 {
                continue; // MOEN is the paper's timeout case; bound it here
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |b, _| {
                b.iter(|| black_box(algo.run(black_box(&series), l_min, l_max)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sizes);
criterion_main!(benches);
