//! Micro-bench of the pipelined stage 2 (the overlapped dot-advance +
//! classification loop behind `valmod_core::run_valmod`'s second stage).
//!
//! A wide length range over a small base length maximizes the number of
//! stage-2 steps relative to stage-1 work, so the pipeline's scheduling
//! (advance of `ℓ+1` overlapping classification of `ℓ` on the worker
//! pool) dominates the measured time. Three axes:
//!
//! * `pipeline_on` vs `pipeline_off` at the same thread count — the
//!   overlap win itself (expected ≈ 1× on one hardware thread, growing
//!   with cores since the two phases then truly run concurrently);
//! * `recompute_heavy` — a tiny partial-profile size forces the MASS
//!   fallback (the drain-and-sync path) at most lengths, measuring the
//!   pipeline's worst case plus the vectorized naive sliding dot the
//!   fallback dispatches to;
//! * results are byte-identical across all of it (pinned by the equality
//!   proptests), so every variant does the same math — only the schedule
//!   and the instruction encodings differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_core::{run_valmod, ValmodConfig};

fn bench_stage2_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2_pipeline");
    group.sample_size(10);
    let n = 8_192usize;
    let series = Dataset::Ecg.generate(n);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for (name, pipelined) in [("pipeline_on", true), ("pipeline_off", false)] {
        // l ∈ [64, 96]: 32 stage-2 steps per run, paper-default p = 8.
        let mut config = ValmodConfig::new(64, 96).with_k(1).with_threads(threads);
        config.stage2_pipeline = pipelined;
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| black_box(run_valmod(black_box(&series), &config).unwrap()));
        });
    }
    group.finish();
}

/// The drain-heavy case: `p = 1` starves the lower bounds, so most
/// lengths recompute rows via MASS — every such step drains the
/// in-flight advance. Compares the same schedule axes under maximal
/// drain pressure.
fn bench_stage2_recompute_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2_pipeline_recompute_heavy");
    group.sample_size(10);
    let n = 8_192usize;
    let series = Dataset::Ecg.generate(n);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for (name, pipelined) in [("pipeline_on", true), ("pipeline_off", false)] {
        let mut config =
            ValmodConfig::new(64, 80).with_k(1).with_profile_size(1).with_threads(threads);
        config.stage2_pipeline = pipelined;
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| black_box(run_valmod(black_box(&series), &config).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage2_pipeline, bench_stage2_recompute_heavy);
criterion_main!(benches);
