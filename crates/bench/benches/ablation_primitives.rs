//! Ablation: the substrate primitives — FFT vs naive sliding dot products
//! (the MASS crossover), and the rolling-statistics engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_fft::{sliding_dot_product_naive, SlidingDotPlan};
use valmod_series::RollingStats;

fn bench_sliding_dots(c: &mut Criterion) {
    let series = Dataset::Ecg.generate(16_384);
    let mut group = c.benchmark_group("sliding_dot");
    group.sample_size(20);
    for m in [64usize, 256, 1024] {
        let query: Vec<f64> = series[100..100 + m].to_vec();
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product_naive(black_box(&query), &series)));
        });
        let plan = SlidingDotPlan::new(&series);
        group.bench_with_input(BenchmarkId::new("fft_planned", m), &m, |b, _| {
            b.iter(|| black_box(plan.dot(black_box(&query))));
        });
    }
    group.finish();
}

fn bench_rolling_stats(c: &mut Criterion) {
    let series = Dataset::Astro.generate(100_000);
    let mut group = c.benchmark_group("rolling_stats");
    group.sample_size(20);
    group.bench_function("build_100k", |b| {
        b.iter(|| black_box(RollingStats::new(black_box(&series))));
    });
    let stats = RollingStats::new(&series);
    group.bench_function("per_length_vectors_100k", |b| {
        b.iter(|| {
            black_box(stats.means_for_length(black_box(256)));
            black_box(stats.stds_for_length(black_box(256)));
        });
    });
    group.finish();
}

criterion_group!(ablation, bench_sliding_dots, bench_rolling_stats);
criterion_main!(ablation);
