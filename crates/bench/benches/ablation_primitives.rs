//! Ablation: the substrate primitives — FFT vs naive sliding dot products
//! (the MASS crossover, including the short-series regime the cost model
//! dispatches on), the real-input FFT plan against the legacy complex
//! path, and the rolling-statistics engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use valmod_bench::Dataset;
use valmod_fft::{
    next_pow2, sliding_dot_product, sliding_dot_product_naive, Complex64, Fft, SlidingDotPlan,
};
use valmod_series::RollingStats;

fn bench_sliding_dots(c: &mut Criterion) {
    let series = Dataset::Ecg.generate(16_384);
    let mut group = c.benchmark_group("sliding_dot");
    group.sample_size(20);
    for m in [64usize, 256, 1024] {
        let query: Vec<f64> = series[100..100 + m].to_vec();
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product_naive(black_box(&query), &series)));
        });
        let plan = SlidingDotPlan::new(&series);
        group.bench_with_input(BenchmarkId::new("fft_planned", m), &m, |b, _| {
            b.iter(|| black_box(plan.dot(black_box(&query))));
        });
        let mut scratch = plan.scratch();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("fft_planned_scratch", m), &m, |b, _| {
            b.iter(|| {
                plan.dot_into(black_box(&query), &mut scratch, &mut out);
                black_box(out.last().copied())
            });
        });
    }
    group.finish();
}

/// The cost-model crossover: a mid-size query over a *short* series, where
/// the old `m·n` threshold picked the (padded, hence oversized) FFT and
/// naive actually wins, bracketed by nearby shapes on both sides.
fn bench_dispatch_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("sliding_dot_crossover");
    group.sample_size(30);
    for (m, n) in [(40usize, 500usize), (40, 4_000), (512, 4_000)] {
        let series = Dataset::Ecg.generate(n);
        let query: Vec<f64> = series[0..m].to_vec();
        let id = format!("m{m}_n{n}");
        group.bench_with_input(BenchmarkId::new("naive", &id), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product_naive(black_box(&query), &series)));
        });
        group.bench_with_input(BenchmarkId::new("fft_oneshot", &id), &m, |b, _| {
            b.iter(|| black_box(SlidingDotPlan::new(&series).dot(black_box(&query))));
        });
        group.bench_with_input(BenchmarkId::new("dispatched", &id), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product(black_box(&query), &series)));
        });
    }
    group.finish();
}

/// The legacy complex-input sliding-dot path (full-size complex forward
/// per query, as `SlidingDotPlan` worked before the real-input FFT), kept
/// here as the ablation baseline.
struct ComplexPlan {
    fft: Fft,
    series_spectrum: Vec<Complex64>,
    series_len: usize,
}

impl ComplexPlan {
    fn new(series: &[f64]) -> Self {
        let n = series.len();
        let size = next_pow2((2 * n).max(1));
        let fft = Fft::new(size);
        let mut buf = vec![Complex64::ZERO; size];
        for (b, &x) in buf.iter_mut().zip(series) {
            b.re = x;
        }
        fft.forward(&mut buf);
        Self { fft, series_spectrum: buf, series_len: n }
    }

    fn dot(&self, query: &[f64]) -> Vec<f64> {
        let m = query.len();
        let n = self.series_len;
        let size = self.fft.size();
        let mut buf = vec![Complex64::ZERO; size];
        for (b, &q) in buf.iter_mut().zip(query.iter().rev()) {
            b.re = q;
        }
        self.fft.forward(&mut buf);
        for (b, s) in buf.iter_mut().zip(&self.series_spectrum) {
            *b *= *s;
        }
        self.fft.inverse(&mut buf);
        (m - 1..n).map(|i| buf[i].re).collect()
    }
}

/// Real-input plan vs the legacy complex path: same series, same queries;
/// the real path should win on both plan construction and per-query dots.
fn bench_real_vs_complex_plan(c: &mut Criterion) {
    let series = Dataset::Ecg.generate(16_384);
    let mut group = c.benchmark_group("fft_plan_real_vs_complex");
    group.sample_size(20);
    group.bench_function("build/complex", |b| {
        b.iter(|| black_box(ComplexPlan::new(black_box(&series))));
    });
    group.bench_function("build/real", |b| {
        b.iter(|| black_box(SlidingDotPlan::new(black_box(&series))));
    });
    let complex = ComplexPlan::new(&series);
    let real = SlidingDotPlan::new(&series);
    let mut scratch = real.scratch();
    let mut out = Vec::new();
    for m in [256usize, 2048] {
        let query: Vec<f64> = series[100..100 + m].to_vec();
        // Sanity: both paths compute the same dots.
        let (a, b) = (complex.dot(&query), real.dot(&query));
        assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-5));
        group.bench_with_input(BenchmarkId::new("dot/complex", m), &m, |b, _| {
            b.iter(|| black_box(complex.dot(black_box(&query))));
        });
        group.bench_with_input(BenchmarkId::new("dot/real", m), &m, |b, _| {
            b.iter(|| black_box(real.dot(black_box(&query))));
        });
        group.bench_with_input(BenchmarkId::new("dot/real_scratch", m), &m, |b, _| {
            b.iter(|| {
                real.dot_into(black_box(&query), &mut scratch, &mut out);
                black_box(out.last().copied())
            });
        });
    }
    group.finish();
}

fn bench_rolling_stats(c: &mut Criterion) {
    let series = Dataset::Astro.generate(100_000);
    let mut group = c.benchmark_group("rolling_stats");
    group.sample_size(20);
    group.bench_function("build_100k", |b| {
        b.iter(|| black_box(RollingStats::new(black_box(&series))));
    });
    let stats = RollingStats::new(&series);
    group.bench_function("per_length_vectors_100k", |b| {
        b.iter(|| {
            black_box(stats.means_for_length(black_box(256)));
            black_box(stats.stds_for_length(black_box(256)));
        });
    });
    group.finish();
}

criterion_group!(
    ablation,
    bench_sliding_dots,
    bench_dispatch_crossover,
    bench_real_vs_complex_plan,
    bench_rolling_stats
);
criterion_main!(ablation);
