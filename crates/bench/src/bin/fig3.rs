//! Regenerates the paper's Figure 3: wall-clock time of VALMOD vs
//! STOMP-range vs QUICKMOTIF-range vs MOEN, over (top) motif length ranges
//! and (bottom) series lengths, on ECG and ASTRO data.
//!
//! Usage:
//!
//! ```text
//! fig3 ranges [--n N] [--lmin N] [--timeout SECS]
//! fig3 sizes  [--width N] [--lmin N] [--timeout SECS]
//! fig3 single <algo> <dataset> <n> <lmin> <lmax>      # internal runner
//! ```
//!
//! Like the paper (whose competitors were cut off at 24 hours), each
//! measurement runs under a timeout — implemented by re-invoking this
//! binary as a subprocess per cell, so a hung competitor cannot poison
//! the remaining measurements. Timed-out cells print `TIMEOUT`, and the
//! same algorithm is skipped at larger workloads of the same sweep (its
//! cost is monotone).

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use valmod_bench::{grids, Algorithm, Dataset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match refs.split_first() {
        Some((&"single", rest)) => run_single(rest),
        Some((&"ranges", rest)) => run_ranges(rest),
        Some((&"sizes", rest)) => run_sizes(rest),
        _ => {
            eprintln!(
                "usage: fig3 ranges [--n N] [--lmin N] [--timeout SECS]\n       \
                 fig3 sizes [--width N] [--lmin N] [--timeout SECS]"
            );
            std::process::exit(2);
        }
    }
}

/// Internal runner: one (algorithm, dataset, workload) cell, prints the
/// elapsed seconds on stdout.
fn run_single(rest: &[&str]) {
    let usage = "fig3 single <algo> <dataset> <n> <lmin> <lmax>";
    let [algo, dataset, n, l_min, l_max] = rest else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let algo = Algorithm::from_name(algo).expect("unknown algorithm");
    let dataset = Dataset::from_name(dataset).expect("unknown dataset");
    let n: usize = n.parse().expect("n");
    let l_min: usize = l_min.parse().expect("lmin");
    let l_max: usize = l_max.parse().expect("lmax");
    let series = dataset.generate(n);
    let started = Instant::now();
    let checksum = algo.run(&series, l_min, l_max);
    let secs = started.elapsed().as_secs_f64();
    println!("{secs:.6} {checksum:#x}");
}

#[derive(Debug, Clone, Copy)]
enum Cell {
    Seconds(f64),
    Timeout,
    Skipped,
}

impl Cell {
    fn render(self) -> String {
        match self {
            Self::Seconds(s) => format!("{s:>10.3}"),
            Self::Timeout => format!("{:>10}", "TIMEOUT"),
            Self::Skipped => format!("{:>10}", "skip"),
        }
    }
}

/// Runs one cell in a subprocess under `timeout`.
fn measure(
    algo: Algorithm,
    dataset: Dataset,
    n: usize,
    l_min: usize,
    l_max: usize,
    timeout: Duration,
) -> Cell {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .args([
            "single",
            algo.name(),
            dataset.name(),
            &n.to_string(),
            &l_min.to_string(),
            &l_max.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn runner");
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) if status.success() => {
                let mut out = String::new();
                use std::io::Read;
                child.stdout.take().expect("stdout").read_to_string(&mut out).expect("read");
                let secs: f64 = out
                    .split_whitespace()
                    .next()
                    .and_then(|t| t.parse().ok())
                    .expect("runner output");
                return Cell::Seconds(secs);
            }
            Some(status) => {
                eprintln!("runner failed ({status}) for {} on {}", algo.name(), dataset.name());
                return Cell::Skipped;
            }
            None => {
                if Instant::now() >= deadline {
                    child.kill().ok();
                    child.wait().ok();
                    return Cell::Timeout;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

struct SweepOpts {
    n: usize,
    width: usize,
    l_min: usize,
    timeout: Duration,
}

fn parse_opts(rest: &[&str], defaults: SweepOpts) -> SweepOpts {
    let mut opts = defaults;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it.next().expect("flag value");
        match *flag {
            "--n" => opts.n = value.parse().expect("--n"),
            "--width" => opts.width = value.parse().expect("--width"),
            "--lmin" => opts.l_min = value.parse().expect("--lmin"),
            "--timeout" => opts.timeout = Duration::from_secs(value.parse().expect("--timeout")),
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

fn sweep(
    title: &str,
    x_label: &str,
    xs: &[usize],
    cell_workload: impl Fn(usize) -> (usize, usize, usize), // x -> (n, l_min, l_max)
    timeout: Duration,
) {
    for dataset in [Dataset::Ecg, Dataset::Astro] {
        println!("\n=== Figure 3 ({title}) — {} ===", dataset.name());
        print!("{x_label:>12}");
        for algo in Algorithm::ALL {
            print!(" {:>10}", algo.name());
        }
        println!();
        let mut dead: Vec<Algorithm> = Vec::new();
        for &x in xs {
            let (n, l_min, l_max) = cell_workload(x);
            print!("{x:>12}");
            for algo in Algorithm::ALL {
                let cell = if dead.contains(&algo) {
                    Cell::Skipped
                } else {
                    let cell = measure(algo, dataset, n, l_min, l_max, timeout);
                    if matches!(cell, Cell::Timeout) {
                        dead.push(algo);
                    }
                    cell
                };
                print!(" {}", cell.render());
            }
            println!();
        }
    }
}

fn run_ranges(rest: &[&str]) {
    let opts = parse_opts(
        rest,
        SweepOpts {
            n: grids::RANGES_N,
            width: 0,
            l_min: grids::RANGES_LMIN,
            timeout: Duration::from_secs(120),
        },
    );
    println!(
        "# fig3 top: time vs motif length range (n = {}, lmin = {}, timeout = {:?})",
        opts.n, opts.l_min, opts.timeout
    );
    println!("# paper grid: widths {{100,150,200,400,600}} at n = 0.5M, lmin = 1024");
    sweep(
        "top: time vs range width",
        "range width",
        &grids::RANGE_WIDTHS,
        |w| (opts.n, opts.l_min, opts.l_min + w - 1),
        opts.timeout,
    );
}

fn run_sizes(rest: &[&str]) {
    let opts = parse_opts(
        rest,
        SweepOpts {
            n: 0,
            width: grids::SIZES_WIDTH,
            l_min: grids::SIZES_LMIN,
            timeout: Duration::from_secs(120),
        },
    );
    println!(
        "# fig3 bottom: time vs series length (range width = {}, lmin = {}, timeout = {:?})",
        opts.width, opts.l_min, opts.timeout
    );
    println!("# paper grid: n in {{0.1M..1M}} at range width 100");
    sweep(
        "bottom: time vs series length",
        "n",
        &grids::SIZES_N,
        |n| (n, opts.l_min, opts.l_min + opts.width - 1),
        opts.timeout,
    );
}
