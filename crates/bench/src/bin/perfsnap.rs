//! Perf snapshot: times VALMOD's stage 1, stage 2, and end-to-end wall
//! clock on the Figure-3 workloads at 1 thread and at full hardware
//! parallelism, plus the streaming engine's per-append cost against a
//! batch re-run, and writes the measurements to a JSON file — the
//! reproducible baseline every future perf PR is measured against.
//!
//! Usage:
//!
//! ```text
//! perfsnap [--smoke] [--n N] [--threads N] [--out FILE]
//!          [--assert-speedup X] [--assert-stage1-cells N]
//!          [--assert-anytime]
//! ```
//!
//! `--smoke` shrinks the workloads for CI (seconds, not minutes);
//! `--threads` overrides the parallel thread count (default: hardware);
//! `--out` sets the JSON path (default `BENCH_valmod.json`).
//!
//! The `--assert-*` flags turn the snapshot into a CI gate: the process
//! exits non-zero when the measured end-to-end multi-thread speedup of
//! any workload falls below `X` (requires a multi-core run — the serial
//! and parallel configurations are both measured in one invocation), or
//! when the best stage-1 kernel throughput falls below `N` QT cells per
//! second. Thresholds are meant to be *generous* (catching an
//! order-of-magnitude regression or a dead dispatch path, not run-to-run
//! noise); the uploaded snapshot artifact carries the precise numbers.
//!
//! The `anytime` row (schema 6) measures the anytime tier's convergence
//! at a fixed acceptance workload — ECG n = 30 000, ℓ = 64, k = 3,
//! budget 4, seed 42, always at this size even under `--smoke` because
//! the row *is* the acceptance gate: the fraction of stage-1 cells the
//! first streamed preview had retired, and the fraction of VALMAP
//! entries on which that preview already agrees with the exact base
//! VALMAP (within 15% relative on the length-normalized distance, both
//! non-finite counting as agreement). `--assert-anytime` fails the run
//! unless the first preview reaches ≥ 90% agreement at ≤ 30% of cells.

use std::hint::black_box;
use std::time::Instant;

use valmod_bench::{stage1_cells, Dataset};
use valmod_core::{run_valmod, run_valmod_observed, Quality, Valmap, ValmodConfig};
use valmod_stream::StreamingValmod;

/// One measured configuration.
struct Run {
    dataset: &'static str,
    n: usize,
    l_min: usize,
    l_max: usize,
    threads: usize,
    stage1_secs: f64,
    stage2_secs: f64,
    /// Stage-2 phase split (schema 3; schema 5 splits the window
    /// statistics out of classification): the incremental dot-advance,
    /// the per-window means/stds, the per-row classification + top-k
    /// selection, and the MASS/STOMP recomputation fallback. The advance
    /// and classification phases are the two the pipelined stage 2
    /// overlaps, so their sum against `stage2_secs` is what makes the
    /// overlap win (or any regression) visible per snapshot.
    stage2_advance_secs: f64,
    stage2_stats_secs: f64,
    stage2_classify_secs: f64,
    stage2_recompute_secs: f64,
    /// Per-length stage-2 phase split (schema 5): one row per stepped
    /// length, from [`valmod_core::StageTimings::per_length`].
    per_length: Vec<StepRow>,
    /// Engine counter deltas over this run (schema 5), read from the
    /// `valmod-obs` registry: the pruning accounting the paper's Fig. 2
    /// narrates, now visible per snapshot. All zero under `obs-off`.
    obs: ObsRow,
    total_secs: f64,
    /// Stage-1 QT-cell throughput — the kernel's headline number: the
    /// walk visits one cell per admissible (i, j) pair at `l_min`, so
    /// cells/sec isolates the diagonal kernel from workload size
    /// (counted by [`valmod_bench::stage1_cells`]).
    stage1_cells_per_sec: f64,
    checksum: u64,
}

/// One per-length stage-2 timing row (schema 5).
struct StepRow {
    length: usize,
    advance_secs: f64,
    stats_secs: f64,
    classify_secs: f64,
    recompute_secs: f64,
}

/// Observability counter deltas over one measured run (schema 5).
#[derive(Default)]
struct ObsRow {
    stage1_cells: u64,
    stage1_offers: u64,
    stage1_prefilter_rejected: u64,
    stage2_dot_advances: u64,
    stage2_valid_rows: u64,
    stage2_invalid_rows: u64,
    stage2_recomputed_rows: u64,
}

/// Snapshot of the registry counters the perf rows report.
fn obs_counters() -> ObsRow {
    let m = valmod_obs::metrics();
    ObsRow {
        stage1_cells: m.stage1_cells.get(),
        stage1_offers: m.stage1_offers.get(),
        stage1_prefilter_rejected: m.stage1_prefilter_rejected.get(),
        stage2_dot_advances: m.stage2_dot_advances.get(),
        stage2_valid_rows: m.stage2_valid_rows.get(),
        stage2_invalid_rows: m.stage2_invalid_rows.get(),
        stage2_recomputed_rows: m.stage2_recomputed_rows.get(),
    }
}

fn obs_delta(before: &ObsRow, after: &ObsRow) -> ObsRow {
    ObsRow {
        stage1_cells: after.stage1_cells - before.stage1_cells,
        stage1_offers: after.stage1_offers - before.stage1_offers,
        stage1_prefilter_rejected: after.stage1_prefilter_rejected
            - before.stage1_prefilter_rejected,
        stage2_dot_advances: after.stage2_dot_advances - before.stage2_dot_advances,
        stage2_valid_rows: after.stage2_valid_rows - before.stage2_valid_rows,
        stage2_invalid_rows: after.stage2_invalid_rows - before.stage2_invalid_rows,
        stage2_recomputed_rows: after.stage2_recomputed_rows - before.stage2_recomputed_rows,
    }
}

/// The streaming row: incremental appends vs a batch re-run per append.
struct StreamingRow {
    dataset: &'static str,
    n: usize,
    l_min: usize,
    l_max: usize,
    appends: usize,
    per_append_secs: f64,
    batch_secs: f64,
    speedup_per_append: f64,
}

/// The anytime row (schema 6): first-preview convergence at the fixed
/// acceptance workload — how much of the exact base VALMAP the first
/// streamed preview already carried, and how early it arrived.
struct AnytimeRow {
    dataset: &'static str,
    n: usize,
    length: usize,
    k: usize,
    budget: usize,
    seed: u64,
    threads: usize,
    /// Rounds the budget actually split into.
    rounds: usize,
    /// Fraction of stage-1 QT cells retired when the first preview fired.
    first_preview_cells: f64,
    /// Fraction of VALMAP entries where the first preview's `MPn` is
    /// within 15% relative of the exact base VALMAP's (both non-finite
    /// counts as agreement).
    first_preview_agreement: f64,
    total_secs: f64,
}

/// Fraction of entries where preview and exact agree: both non-finite,
/// or within 15% relative (plus an absolute epsilon for exact zeros) on
/// the length-normalized distance.
fn valmap_agreement(preview: &Valmap, exact: &Valmap) -> f64 {
    let m = exact.mpn.len();
    if m == 0 {
        return 1.0;
    }
    let agreeing = (0..m)
        .filter(|&i| {
            let (a, b) = (preview.mpn[i], exact.mpn[i]);
            (!a.is_finite() && !b.is_finite()) || (a - b).abs() <= 0.15 * b + 1e-12
        })
        .count();
    #[allow(clippy::cast_precision_loss)]
    {
        agreeing as f64 / m as f64
    }
}

/// Runs the anytime tier once at the acceptance workload and compares
/// the *first* preview against the settled (exact) base VALMAP of the
/// same run — the settled output is bit-identical to the eager walk, so
/// one run yields both sides of the comparison.
fn measure_anytime(threads: usize) -> AnytimeRow {
    let (n, length, k, budget, seed) = (30_000usize, 64usize, 3usize, 4usize, 42u64);
    let dataset = Dataset::Ecg;
    let series = dataset.generate(n);
    let config = ValmodConfig::new(length, length)
        .with_k(k)
        .with_threads(threads)
        .with_quality(Quality::Anytime { budget })
        .with_seed(seed);
    let mut first: Option<(u64, u64, Valmap)> = None;
    let mut rounds = 0usize;
    let started = Instant::now();
    let out = run_valmod_observed(&series, &config, &mut |p| {
        rounds = p.rounds;
        if first.is_none() {
            first = Some((p.cells_retired, p.cells_total, p.valmap.clone()));
        }
    })
    .expect("valid workload");
    let total_secs = started.elapsed().as_secs_f64();
    let (retired, total, preview) = first.expect("anytime runs emit at least one preview");
    let exact = Valmap::from_base_profile(&out.base_profile);
    #[allow(clippy::cast_precision_loss)]
    let first_preview_cells = retired as f64 / (total.max(1)) as f64;
    let row = AnytimeRow {
        dataset: dataset.name(),
        n,
        length,
        k,
        budget,
        seed,
        threads,
        rounds,
        first_preview_cells,
        first_preview_agreement: valmap_agreement(&preview, &exact),
        total_secs,
    };
    eprintln!(
        "{} n={n} l={length} k={k} budget={budget} seed={seed} threads={threads} anytime: \
         first preview at {:.1}% of cells, {:.1}% VALMAP agreement, {rounds} rounds, {:.3}s",
        row.dataset,
        row.first_preview_cells * 100.0,
        row.first_preview_agreement * 100.0,
        row.total_secs,
    );
    row
}

/// The durability row: serializing and restoring one checkpoint image of
/// the streaming engine at the acceptance workload.
struct CheckpointRow {
    n: usize,
    image_bytes: usize,
    write_secs: f64,
    restore_secs: f64,
}

/// Times [`StreamingValmod::checkpoint_to`] (into memory — fsync policy
/// is the store's, the snapshot isolates serialization) and
/// [`StreamingValmod::restore_from_bytes`], and asserts the round trip
/// is bit-identical: the restored engine must re-serialize to the exact
/// same image.
fn measure_checkpoint(smoke: bool, threads: usize) -> CheckpointRow {
    let n = if smoke { 2_048 } else { 4_096 };
    let l_min = if smoke { 32 } else { 64 };
    let l_max = l_min + 19; // R = 20
    let series = Dataset::Ecg.generate(n);
    let config = ValmodConfig::new(l_min, l_max).with_k(1).with_threads(threads);
    let engine = StreamingValmod::new(&series, config.clone()).expect("valid workload");

    let reps = 8usize;
    let mut image: Vec<u8> = Vec::new();
    let started = Instant::now();
    for _ in 0..reps {
        image.clear();
        engine.checkpoint_to(&mut image).expect("in-memory sink");
    }
    let write_secs = started.elapsed().as_secs_f64() / reps as f64;

    let started = Instant::now();
    let mut restored = None;
    for _ in 0..reps {
        restored =
            Some(StreamingValmod::restore_from_bytes(&image, &config).expect("own image restores"));
    }
    let restore_secs = started.elapsed().as_secs_f64() / reps as f64;

    let mut reimage: Vec<u8> = Vec::new();
    restored.expect("reps > 0").checkpoint_to(&mut reimage).expect("in-memory sink");
    assert_eq!(image, reimage, "checkpoint round trip is not bit-identical");

    let row = CheckpointRow { n, image_bytes: image.len(), write_secs, restore_secs };
    eprintln!(
        "checkpoint n={n} l=[{l_min},{l_max}]: {:.0} KiB image, write {:.2} ms, restore {:.2} ms",
        row.image_bytes as f64 / 1024.0,
        row.write_secs * 1e3,
        row.restore_secs * 1e3,
    );
    row
}

/// Measures the streaming engine at the acceptance workload (n = 4096,
/// R = 20 lengths; scaled down under `--smoke`): bootstrap on the
/// prefix, time `appends` single-point appends, and compare the mean
/// per-append cost with one full batch run — what a non-incremental
/// deployment would pay per appended point.
fn measure_streaming(smoke: bool, threads: usize) -> StreamingRow {
    let n = if smoke { 2_048 } else { 4_096 };
    let appends = if smoke { 64 } else { 256 };
    let l_min = if smoke { 32 } else { 64 };
    let l_max = l_min + 19; // R = 20
    let dataset = Dataset::Ecg;
    let series = dataset.generate(n);
    let config = ValmodConfig::new(l_min, l_max).with_k(1).with_threads(threads);

    let mut engine =
        StreamingValmod::new(&series[..n - appends], config.clone()).expect("valid workload");
    let started = Instant::now();
    for &v in &series[n - appends..] {
        engine.append(v);
    }
    let per_append_secs = started.elapsed().as_secs_f64() / appends as f64;

    let started = Instant::now();
    let out = run_valmod(&series, &config).expect("valid workload");
    let batch_secs = started.elapsed().as_secs_f64();
    black_box(&out);
    // Appends must have reassembled the exact series (snapshot()'s
    // bit-identity to batch follows, since it runs the batch pipeline
    // over this buffer; the full property is tested in valmod-stream).
    assert_eq!(engine.series(), &series[..], "streaming buffer diverged from the input");

    let row = StreamingRow {
        dataset: dataset.name(),
        n,
        l_min,
        l_max,
        appends,
        per_append_secs,
        batch_secs,
        speedup_per_append: batch_secs / per_append_secs,
    };
    eprintln!(
        "{} n={n} l=[{l_min},{l_max}] threads={threads} streaming: {:.1} µs/append vs \
         {:.3}s batch re-run ({:.0}x)",
        row.dataset,
        row.per_append_secs * 1e6,
        row.batch_secs,
        row.speedup_per_append,
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut smoke = false;
    let mut n_override: Option<usize> = None;
    let mut threads_override: Option<usize> = None;
    let mut out_path = String::from("BENCH_valmod.json");
    let mut assert_speedup: Option<f64> = None;
    let mut assert_stage1_cells: Option<f64> = None;
    let mut assert_anytime = false;
    let mut it = refs.iter().copied();
    while let Some(flag) = it.next() {
        match flag {
            "--smoke" => smoke = true,
            "--n" => n_override = Some(expect_num(&mut it, "--n")),
            "--threads" => threads_override = Some(expect_num(&mut it, "--threads")),
            "--out" => {
                out_path = it.next().unwrap_or_else(|| usage("--out requires a value")).into();
            }
            "--assert-speedup" => assert_speedup = Some(expect_float(&mut it, "--assert-speedup")),
            "--assert-stage1-cells" => {
                assert_stage1_cells = Some(expect_float(&mut it, "--assert-stage1-cells"));
            }
            "--assert-anytime" => assert_anytime = true,
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let max_threads = threads_override.unwrap_or(hardware).max(1);
    // Figure-3 shape: ECG at paper scale (the headline workload), ASTRO at
    // a lighter size so the snapshot stays affordable; both use the
    // Fig. 3 `l_min` = 64 and a 16-wide range.
    let l_min = if smoke { 32 } else { 64 };
    let width = if smoke { 4 } else { 16 };
    let workloads: Vec<(Dataset, usize)> = if smoke {
        vec![(Dataset::Ecg, n_override.unwrap_or(4_000))]
    } else {
        vec![
            (Dataset::Ecg, n_override.unwrap_or(100_000)),
            (Dataset::Astro, n_override.unwrap_or(40_000)),
        ]
    };
    let thread_counts: Vec<usize> = if max_threads == 1 { vec![1] } else { vec![1, max_threads] };

    let mut runs: Vec<Run> = Vec::new();
    for &(dataset, n) in &workloads {
        let series = dataset.generate(n);
        for &threads in &thread_counts {
            let config = ValmodConfig::new(l_min, l_min + width).with_k(1).with_threads(threads);
            let obs_before = obs_counters();
            let started = Instant::now();
            let out = run_valmod(&series, &config).expect("valid workload");
            let total = started.elapsed().as_secs_f64();
            let obs = obs_delta(&obs_before, &obs_counters());
            let checksum = out.best_per_length().into_iter().flatten().fold(
                0xcbf2_9ce4_8422_2325u64,
                |acc, p| {
                    [p.a as u64, p.b as u64, p.length as u64]
                        .into_iter()
                        .fold(acc, |a, v| (a ^ v).wrapping_mul(0x1000_0000_01b3))
                },
            );
            eprintln!(
                "{} n={n} l=[{l_min},{}] threads={threads}: stage1 {:.3}s \
                 ({:.1}M cells/s) stage2 {:.3}s (advance {:.3}s stats {:.3}s \
                 classify {:.3}s recompute {:.3}s) total {total:.3}s",
                dataset.name(),
                l_min + width,
                out.timings.stage1.as_secs_f64(),
                stage1_cells(n, l_min) as f64 / out.timings.stage1.as_secs_f64().max(1e-12) / 1e6,
                out.timings.stage2.as_secs_f64(),
                out.timings.stage2_advance.as_secs_f64(),
                out.timings.stage2_stats.as_secs_f64(),
                out.timings.stage2_classify.as_secs_f64(),
                out.timings.stage2_recompute.as_secs_f64(),
            );
            let stage1_secs = out.timings.stage1.as_secs_f64();
            runs.push(Run {
                dataset: dataset.name(),
                n,
                l_min,
                l_max: l_min + width,
                threads,
                stage1_secs,
                stage2_secs: out.timings.stage2.as_secs_f64(),
                stage2_advance_secs: out.timings.stage2_advance.as_secs_f64(),
                stage2_stats_secs: out.timings.stage2_stats.as_secs_f64(),
                stage2_classify_secs: out.timings.stage2_classify.as_secs_f64(),
                stage2_recompute_secs: out.timings.stage2_recompute.as_secs_f64(),
                per_length: out
                    .timings
                    .per_length
                    .iter()
                    .map(|t| StepRow {
                        length: t.length,
                        advance_secs: t.advance.as_secs_f64(),
                        stats_secs: t.stats.as_secs_f64(),
                        classify_secs: t.classify.as_secs_f64(),
                        recompute_secs: t.recompute.as_secs_f64(),
                    })
                    .collect(),
                obs,
                total_secs: total,
                stage1_cells_per_sec: stage1_cells(n, l_min) as f64 / stage1_secs.max(1e-12),
                checksum,
            });
        }
    }

    // End-to-end speedup per workload against the 1-thread baseline of the
    // same snapshot (fastest run / serial run; exactly 1.0 on single-CPU
    // hardware, where the serial run is the only run), plus a cross-thread
    // result check: identical checksums are the engine's bit-identity
    // promise showing up end to end. Always populated — schema 2 replaced
    // the schema-1 field that silently stayed `{}` whenever the snapshot
    // machine had one CPU.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &(dataset, n) in &workloads {
        let of = |threads: usize| {
            runs.iter().find(|r| r.dataset == dataset.name() && r.n == n && r.threads == threads)
        };
        if let (Some(serial), Some(parallel)) =
            (of(1), of(*thread_counts.last().expect("non-empty")))
        {
            assert_eq!(
                serial.checksum,
                parallel.checksum,
                "thread counts disagree on {} motifs",
                dataset.name()
            );
            speedups.push((dataset.name().to_string(), serial.total_secs / parallel.total_secs));
        }
    }

    let streaming = measure_streaming(smoke, max_threads);
    let checkpoint = measure_checkpoint(smoke, max_threads);
    let anytime = measure_anytime(max_threads);

    let json = render_json(
        hardware,
        max_threads,
        smoke,
        &runs,
        &streaming,
        &checkpoint,
        &anytime,
        &speedups,
    );
    std::fs::write(&out_path, json).expect("write snapshot");
    eprintln!("snapshot written to {out_path}");
    for (name, s) in &speedups {
        eprintln!("{name} end-to-end speedup at {max_threads} threads: {s:.2}x");
    }

    // CI gates (see the module docs): fail loudly, after the snapshot was
    // written, so the artifact survives for diagnosis.
    let mut gate_failed = false;
    if let Some(min) = assert_speedup {
        if speedups.is_empty() {
            eprintln!("GATE: --assert-speedup needs a multi-thread run (got max_threads=1)");
            gate_failed = true;
        }
        for (name, s) in &speedups {
            if *s < min {
                eprintln!("GATE: {name} end-to-end speedup {s:.2}x below the {min:.2}x floor");
                gate_failed = true;
            }
        }
    }
    if let Some(min) = assert_stage1_cells {
        let best = runs.iter().map(|r| r.stage1_cells_per_sec).fold(0.0f64, f64::max);
        if best < min {
            eprintln!(
                "GATE: best stage-1 throughput {:.1}M cells/s below the {:.1}M floor",
                best / 1e6,
                min / 1e6
            );
            gate_failed = true;
        }
    }
    if assert_anytime {
        if anytime.first_preview_agreement < 0.9 {
            eprintln!(
                "GATE: first anytime preview agreement {:.1}% below the 90% floor",
                anytime.first_preview_agreement * 100.0
            );
            gate_failed = true;
        }
        if anytime.first_preview_cells > 0.3 {
            eprintln!(
                "GATE: first anytime preview retired {:.1}% of cells, above the 30% ceiling",
                anytime.first_preview_cells * 100.0
            );
            gate_failed = true;
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}

fn expect_num<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> usize {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} requires a numeric value")))
}

fn expect_float<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> f64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} requires a numeric value")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: perfsnap [--smoke] [--n N] [--threads N] [--out FILE] \
         [--assert-speedup X] [--assert-stage1-cells N] [--assert-anytime]"
    );
    std::process::exit(2);
}

/// Hand-rolled JSON (the workspace carries no JSON dependency).
#[allow(clippy::too_many_arguments)]
fn render_json(
    hardware: usize,
    max_threads: usize,
    smoke: bool,
    runs: &[Run],
    streaming: &StreamingRow,
    checkpoint: &CheckpointRow,
    anytime: &AnytimeRow,
    speedups: &[(String, f64)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 6,\n");
    out.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    out.push_str(&format!("  \"max_threads\": {max_threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"runs\": [\n");
    for (idx, r) in runs.iter().enumerate() {
        let per_length: Vec<String> = r
            .per_length
            .iter()
            .map(|t| {
                format!(
                    "{{\"length\": {}, \"advance_secs\": {:.6}, \"stats_secs\": {:.6}, \
                     \"classify_secs\": {:.6}, \"recompute_secs\": {:.6}}}",
                    t.length, t.advance_secs, t.stats_secs, t.classify_secs, t.recompute_secs,
                )
            })
            .collect();
        let obs = format!(
            "{{\"stage1_cells\": {}, \"stage1_offers\": {}, \"stage1_prefilter_rejected\": {}, \
             \"stage2_dot_advances\": {}, \"stage2_valid_rows\": {}, \
             \"stage2_invalid_rows\": {}, \"stage2_recomputed_rows\": {}}}",
            r.obs.stage1_cells,
            r.obs.stage1_offers,
            r.obs.stage1_prefilter_rejected,
            r.obs.stage2_dot_advances,
            r.obs.stage2_valid_rows,
            r.obs.stage2_invalid_rows,
            r.obs.stage2_recomputed_rows,
        );
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"n\": {}, \"l_min\": {}, \"l_max\": {}, \
             \"threads\": {}, \"stage1_secs\": {:.6}, \"stage2_secs\": {:.6}, \
             \"stage2_advance_secs\": {:.6}, \"stage2_stats_secs\": {:.6}, \
             \"stage2_classify_secs\": {:.6}, \"stage2_recompute_secs\": {:.6}, \
             \"per_length\": [{}], \"obs\": {}, \
             \"total_secs\": {:.6}, \"stage1_cells_per_sec\": {:.0}, \
             \"checksum\": \"{:#018x}\"}}{}\n",
            r.dataset,
            r.n,
            r.l_min,
            r.l_max,
            r.threads,
            r.stage1_secs,
            r.stage2_secs,
            r.stage2_advance_secs,
            r.stage2_stats_secs,
            r.stage2_classify_secs,
            r.stage2_recompute_secs,
            per_length.join(", "),
            obs,
            r.total_secs,
            r.stage1_cells_per_sec,
            r.checksum,
            if idx + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"streaming\": {{\"dataset\": \"{}\", \"n\": {}, \"l_min\": {}, \"l_max\": {}, \
         \"appends\": {}, \"per_append_secs\": {:.9}, \"batch_secs\": {:.6}, \
         \"speedup_per_append\": {:.1}}},\n",
        streaming.dataset,
        streaming.n,
        streaming.l_min,
        streaming.l_max,
        streaming.appends,
        streaming.per_append_secs,
        streaming.batch_secs,
        streaming.speedup_per_append,
    ));
    out.push_str(&format!(
        "  \"checkpoint\": {{\"n\": {}, \"image_bytes\": {}, \"write_secs\": {:.6}, \
         \"restore_secs\": {:.6}}},\n",
        checkpoint.n, checkpoint.image_bytes, checkpoint.write_secs, checkpoint.restore_secs,
    ));
    out.push_str(&format!(
        "  \"anytime\": {{\"dataset\": \"{}\", \"n\": {}, \"length\": {}, \"k\": {}, \
         \"budget\": {}, \"seed\": {}, \"threads\": {}, \"rounds\": {}, \
         \"first_preview_cells\": {:.4}, \"first_preview_agreement\": {:.4}, \
         \"total_secs\": {:.6}}},\n",
        anytime.dataset,
        anytime.n,
        anytime.length,
        anytime.k,
        anytime.budget,
        anytime.seed,
        anytime.threads,
        anytime.rounds,
        anytime.first_preview_cells,
        anytime.first_preview_agreement,
        anytime.total_secs,
    ));
    out.push_str("  \"speedup_end_to_end\": {");
    for (idx, (name, s)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "\"{name}\": {s:.3}{}",
            if idx + 1 < speedups.len() { ", " } else { "" }
        ));
    }
    out.push_str("}\n}\n");
    out
}
