#![warn(missing_docs)]

//! Benchmark harness shared by the criterion benches and the `fig3`
//! figure-regeneration binary.
//!
//! The paper's Figure 3 measures the wall-clock time of four algorithms —
//! VALMOD, STOMP (adapted to ranges), QUICKMOTIF (adapted to ranges) and
//! MOEN — on ECG and ASTRO data, varying (top) the motif length range and
//! (bottom) the series length. This crate pins down the exact workloads
//! and exposes one entry point per algorithm so every bench measures the
//! same code paths.

use valmod_baselines::{moen_range, quickmotif_range, MoenConfig, QuickMotifConfig};
use valmod_core::{run_valmod, ValmodConfig};
use valmod_mp::motif::top_k_pairs;
use valmod_mp::stomp::stomp;
use valmod_series::gen;

/// The two datasets of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Synthetic electrocardiogram (see `valmod_series::gen::ecg`).
    Ecg,
    /// Synthetic light curve (see `valmod_series::gen::astro`).
    Astro,
}

impl Dataset {
    /// Parses a dataset name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ecg" | "ECG" => Some(Self::Ecg),
            "astro" | "ASTRO" => Some(Self::Astro),
            _ => None,
        }
    }

    /// Display name matching the paper's plots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Ecg => "ECG",
            Self::Astro => "ASTRO",
        }
    }

    /// Generates `n` points with a fixed per-dataset seed, so every
    /// algorithm and every run measures the same series.
    #[must_use]
    pub fn generate(self, n: usize) -> Vec<f64> {
        match self {
            Self::Ecg => gen::ecg(n, &gen::EcgConfig::default(), 0xBEA7),
            Self::Astro => gen::astro(n, &gen::AstroConfig::default(), 0x57A6),
        }
    }
}

/// The four algorithms of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// VALMOD (this paper).
    Valmod,
    /// STOMP re-run once per length in the range.
    StompRange,
    /// QUICKMOTIF re-run once per length in the range.
    QuickMotifRange,
    /// MOEN (native range support).
    Moen,
}

impl Algorithm {
    /// All algorithms, in the order the paper lists them.
    pub const ALL: [Self; 4] = [Self::Valmod, Self::StompRange, Self::QuickMotifRange, Self::Moen];

    /// Parses an algorithm name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "valmod" => Some(Self::Valmod),
            "stomp" => Some(Self::StompRange),
            "quickmotif" => Some(Self::QuickMotifRange),
            "moen" => Some(Self::Moen),
            _ => None,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Valmod => "valmod",
            Self::StompRange => "stomp",
            Self::QuickMotifRange => "quickmotif",
            Self::Moen => "moen",
        }
    }

    /// Runs the algorithm over the length range, returning a checksum of
    /// best-pair offsets (so benches observe the result and the work is
    /// not optimized away, and so tests can assert cross-algorithm
    /// agreement).
    ///
    /// # Panics
    ///
    /// Panics when the workload is invalid for the series (bench
    /// workloads are constructed valid).
    #[must_use]
    pub fn run(self, series: &[f64], l_min: usize, l_max: usize) -> u64 {
        match self {
            Self::Valmod => {
                let config = ValmodConfig::new(l_min, l_max).with_k(1);
                let out = run_valmod(series, &config).expect("valid workload");
                checksum(out.best_per_length().into_iter().flatten())
            }
            Self::StompRange => {
                let mut pairs = Vec::with_capacity(l_max - l_min + 1);
                for l in l_min..=l_max {
                    let config = ValmodConfig::new(l, l);
                    let mp = stomp(series, l, config.exclusion(l)).expect("valid workload");
                    pairs.extend(top_k_pairs(&mp, 1));
                }
                checksum(pairs.into_iter())
            }
            Self::QuickMotifRange => {
                let config = QuickMotifConfig::default();
                let out = quickmotif_range(series, l_min, l_max, &config).expect("valid workload");
                checksum(out.into_iter().flatten())
            }
            Self::Moen => {
                let config = MoenConfig::default();
                let out = moen_range(series, l_min, l_max, &config).expect("valid workload");
                checksum(out.into_iter().flatten())
            }
        }
    }
}

/// Admissible QT cells of VALMOD's stage 1 at the default exclusion
/// zone: diagonals `excl+1 .. m` of the `m × m` self-join triangle at
/// the base length. Shared by `perfsnap` (the `stage1_cells_per_sec`
/// field) and the `stage1_kernel` bench so both divide by the exact
/// cells the engine walks — `first_diag` comes from
/// [`ValmodConfig::exclusion`], not a re-derived formula.
#[must_use]
pub fn stage1_cells(n: usize, l_min: usize) -> u64 {
    let m = (n - l_min + 1) as u64;
    let first_diag = (ValmodConfig::new(l_min, l_min).exclusion(l_min) + 1) as u64;
    if first_diag >= m {
        return 0;
    }
    let d = m - first_diag;
    d * (d + 1) / 2
}

/// Order-sensitive checksum over pair offsets and lengths.
fn checksum(pairs: impl Iterator<Item = valmod_mp::MotifPair>) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for p in pairs {
        for v in [p.a as u64, p.b as u64, p.length as u64] {
            acc ^= v;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
    }
    acc
}

/// The scaled-down default grids for Figure 3 (see DESIGN.md §5 for the
/// correspondence with the paper's parameters).
pub mod grids {
    /// Fig. 3 (top): range widths, at fixed series length [`RANGES_N`].
    pub const RANGE_WIDTHS: [usize; 5] = [8, 16, 32, 64, 128];
    /// Fig. 3 (top): fixed series length.
    pub const RANGES_N: usize = 16_000;
    /// Fig. 3 (top): fixed `ℓmin` (the paper used 1024 at n = 0.5M).
    pub const RANGES_LMIN: usize = 64;
    /// Fig. 3 (bottom): series lengths, at fixed range width
    /// [`SIZES_WIDTH`].
    pub const SIZES_N: [usize; 5] = [5_000, 10_000, 20_000, 40_000, 60_000];
    /// Fig. 3 (bottom): fixed range width (the paper used 100).
    pub const SIZES_WIDTH: usize = 16;
    /// Fig. 3 (bottom): fixed `ℓmin`.
    pub const SIZES_LMIN: usize = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_agree_on_the_motifs() {
        // The checksum folds in each length's best-pair offsets; agreement
        // means all four exact algorithms found the same motifs.
        let series = Dataset::Ecg.generate(2000);
        let (l_min, l_max) = (48, 52);
        let reference = Algorithm::Valmod.run(&series, l_min, l_max);
        for algo in [Algorithm::StompRange, Algorithm::QuickMotifRange, Algorithm::Moen] {
            assert_eq!(
                algo.run(&series, l_min, l_max),
                reference,
                "{} disagrees with valmod",
                algo.name()
            );
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(Dataset::Ecg.generate(500), Dataset::Ecg.generate(500));
        assert_eq!(Dataset::Astro.generate(500), Dataset::Astro.generate(500));
        assert_ne!(Dataset::Ecg.generate(500), Dataset::Astro.generate(500));
    }

    #[test]
    fn names_roundtrip() {
        for d in [Dataset::Ecg, Dataset::Astro] {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
        }
        assert!(Dataset::from_name("nope").is_none());
        assert!(Algorithm::from_name("nope").is_none());
    }
}
