//! VALMOD configuration.

use std::sync::Arc;

use valmod_mp::WorkerPool;
use valmod_series::{Result, SeriesError};

use crate::query::Quality;

/// Parameters of a VALMOD run.
///
/// Defaults follow the paper: top-`k = 10` motif pairs per length and
/// `p = 8` entries kept per partial distance profile; the trivial-match
/// exclusion zone is `⌈ℓ/4⌉` as in the matrix-profile papers.
///
/// # Example
///
/// ```
/// use valmod_core::ValmodConfig;
///
/// let config = ValmodConfig::new(64, 128).with_k(5).with_profile_size(16);
/// assert_eq!(config.k, 5);
/// assert_eq!(config.exclusion(64), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ValmodConfig {
    /// Smallest subsequence length `ℓmin`.
    pub l_min: usize,
    /// Largest subsequence length `ℓmax` (inclusive).
    pub l_max: usize,
    /// Number of motif pairs reported per length (top-k).
    pub k: usize,
    /// `p` — entries kept per partial distance profile. Larger values
    /// prune better but cost more memory and per-length work.
    pub profile_size: usize,
    /// Exclusion-zone denominator: windows within `⌈ℓ/den⌉` offsets are
    /// trivial matches.
    pub exclusion_den: usize,
    /// Worker threads for the parallel stage-1/stage-2 paths. Defaults to
    /// the hardware parallelism. Results are **identical for every
    /// value** — the engine's merges are partition-independent — so this
    /// is purely a performance knob.
    pub threads: usize,
    /// Whether stage 2 overlaps each length's dot-product advance with the
    /// previous length's classification on the worker pool (see
    /// `algo::step_length`). On by default; engages only with more than
    /// one thread (a 1-thread configuration stays fully serial). Results
    /// are **byte-identical on or off** — the overlapped batch computes
    /// exactly what the start-of-step advance would, and is discarded
    /// whenever a MASS re-seed makes it stale — so this is purely a
    /// performance knob (and a CI dimension: the equality suites run both
    /// ways).
    pub stage2_pipeline: bool,
    /// Execution quality tier (see [`Quality`]). `Exact` and `Anytime`
    /// produce byte-identical outputs — anytime merely streams VALMAP
    /// previews while stage 1 converges — and code paths that need a full
    /// output treat `Screen` as `Exact` (the screening short-circuit only
    /// engages through [`crate::Query::run`] /
    /// [`crate::screen::screen_series`]).
    pub quality: Quality,
    /// Seed of the anytime tier's shuffled diagonal visiting order.
    /// Results settle byte-identically for every seed; the seed only
    /// shapes the intermediate previews, so two runs with the same seed
    /// stream the same preview sequence.
    pub seed: u64,
    /// The persistent [`WorkerPool`] every parallel phase of this run
    /// dispatches to; `None` uses the process-wide [`WorkerPool::global`].
    /// Purely a performance/ownership knob (results never depend on which
    /// pool carried the threads), so it is ignored by equality.
    pool: Option<Arc<WorkerPool>>,
}

/// Equality compares the algorithmic parameters only; the worker pool is a
/// transport detail that never influences results (see
/// [`ValmodConfig::with_pool`]).
impl PartialEq for ValmodConfig {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a field to the struct fails to
        // compile here until equality explicitly includes or excludes it.
        let Self {
            l_min,
            l_max,
            k,
            profile_size,
            exclusion_den,
            threads,
            stage2_pipeline,
            quality,
            seed,
            pool: _,
        } = self;
        (
            *l_min,
            *l_max,
            *k,
            *profile_size,
            *exclusion_den,
            *threads,
            *stage2_pipeline,
            *quality,
            *seed,
        ) == (
            other.l_min,
            other.l_max,
            other.k,
            other.profile_size,
            other.exclusion_den,
            other.threads,
            other.stage2_pipeline,
            other.quality,
            other.seed,
        )
    }
}

impl Eq for ValmodConfig {}

impl ValmodConfig {
    /// A configuration with paper defaults for the given length range and
    /// all available hardware threads.
    #[must_use]
    pub fn new(l_min: usize, l_max: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            l_min,
            l_max,
            k: 10,
            profile_size: 8,
            exclusion_den: 4,
            threads,
            stage2_pipeline: true,
            quality: Quality::Exact,
            seed: 0,
            pool: None,
        }
    }

    /// Sets the number of motif pairs reported per length.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets `p`, the partial-distance-profile size.
    #[must_use]
    pub fn with_profile_size(mut self, p: usize) -> Self {
        self.profile_size = p;
        self
    }

    /// Sets the exclusion-zone denominator (`⌈ℓ/den⌉`).
    #[deprecated(note = "use the `Query` builder (`valmod_core::Query::exclusion_den`) or set \
                         the public `exclusion_den` field directly")]
    #[must_use]
    pub fn with_exclusion_den(mut self, den: usize) -> Self {
        self.exclusion_den = den;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1). `1` forces
    /// the fully serial path.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the stage-2 software pipeline (see the
    /// [`ValmodConfig::stage2_pipeline`] field docs; results are identical
    /// either way).
    #[deprecated(note = "use the `Query` builder (`valmod_core::Query::pipeline`) or set the \
                         public `stage2_pipeline` field directly")]
    #[must_use]
    pub fn with_stage2_pipeline(mut self, pipelined: bool) -> Self {
        self.stage2_pipeline = pipelined;
        self
    }

    /// Sets the execution quality tier (see [`Quality`] and
    /// [`crate::Query`]).
    #[must_use]
    pub fn with_quality(mut self, quality: Quality) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the seed of the anytime tier's shuffled diagonal order
    /// (results settle byte-identically for every seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dispatches every parallel phase of runs under this configuration to
    /// `pool` instead of the process-wide [`WorkerPool::global`] — one
    /// persistent set of parked threads created once and reused across
    /// stage 1, stage 2, discord search, and streaming appends. Results
    /// are **identical for every pool**: the pool only carries the
    /// threads, never the math.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool runs under this configuration dispatch to: the one set
    /// via [`ValmodConfig::with_pool`], or the process-wide global pool.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        match &self.pool {
            Some(pool) => pool,
            None => WorkerPool::global(),
        }
    }

    /// The trivial-match exclusion half-width at length `l`.
    #[must_use]
    pub fn exclusion(&self, l: usize) -> usize {
        l.div_ceil(self.exclusion_den.max(1)).max(1)
    }

    /// Validates the configuration against a series of length `n`.
    ///
    /// # Errors
    ///
    /// [`SeriesError::InvalidRange`] for a malformed length range,
    /// [`SeriesError::TooShort`] when the series cannot host two
    /// non-trivially-matching windows of `l_max`.
    pub fn validate(&self, n: usize) -> Result<()> {
        if self.l_min < valmod_mp::MIN_WINDOW || self.l_min > self.l_max {
            return Err(SeriesError::InvalidRange { l_min: self.l_min, l_max: self.l_max });
        }
        if self.k == 0 || self.profile_size == 0 || self.exclusion_den == 0 || self.threads == 0 {
            return Err(SeriesError::InvalidRange { l_min: self.l_min, l_max: self.l_max });
        }
        if matches!(self.quality, Quality::Anytime { budget: 0 }) {
            return Err(SeriesError::InvalidRange { l_min: self.l_min, l_max: self.l_max });
        }
        let needed = self.l_max + self.exclusion(self.l_max) + 1;
        if n < needed {
            return Err(SeriesError::TooShort { len: n, needed });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::ValmodConfig;

    #[test]
    fn defaults_match_the_paper() {
        let c = ValmodConfig::new(50, 400);
        assert_eq!(c.k, 10);
        assert_eq!(c.profile_size, 8);
        assert_eq!(c.exclusion(50), 13);
    }

    #[test]
    fn builders_compose() {
        let mut c = ValmodConfig::new(8, 16).with_k(3).with_profile_size(4).with_threads(6);
        c.exclusion_den = 2;
        assert_eq!((c.k, c.profile_size, c.exclusion(8), c.threads), (3, 4, 4, 6));
        // Zero threads clamps to the serial path rather than erroring.
        assert_eq!(ValmodConfig::new(8, 16).with_threads(0).threads, 1);
    }

    /// The deprecated shims still compile and behave — downstream code
    /// gets one release of warning, not breakage.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let c = ValmodConfig::new(8, 16).with_exclusion_den(2).with_stage2_pipeline(false);
        assert_eq!(c.exclusion(8), 4);
        assert!(!c.stage2_pipeline);
    }

    #[test]
    fn quality_and_seed_participate_in_equality() {
        use crate::query::Quality;
        let base = ValmodConfig::new(8, 16);
        assert_eq!(base, base.clone());
        assert_ne!(base, base.clone().with_quality(Quality::Anytime { budget: 4 }));
        assert_ne!(base, base.clone().with_seed(7));
        // A zero-round anytime budget is rejected up front.
        assert!(base.clone().with_quality(Quality::Anytime { budget: 0 }).validate(1000).is_err());
        assert!(base.with_quality(Quality::Screen).validate(1000).is_ok());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        assert!(ValmodConfig::new(16, 8).validate(1000).is_err()); // inverted
        assert!(ValmodConfig::new(2, 8).validate(1000).is_err()); // below MIN_WINDOW
        assert!(ValmodConfig::new(8, 16).with_k(0).validate(1000).is_err());
        assert!(ValmodConfig::new(8, 16).with_profile_size(0).validate(1000).is_err());
        assert!(ValmodConfig::new(8, 16).validate(20).is_err()); // series too short
        assert!(ValmodConfig::new(8, 16).validate(1000).is_ok());
    }

    #[test]
    fn exclusion_never_zero() {
        let c = ValmodConfig::new(4, 8);
        assert!(c.exclusion(4) >= 1);
    }
}
