//! The SIMD kernels of the suite: the register-tiled stage-1 diagonal
//! walk (a width-generic, FMA-based rewrite of VALMOD's hottest loop)
//! plus the shared dot-product *advance* lanes — [`advance_entry_dots`]
//! for the pipelined stage-2 length steps, and [`advance_dots_extend`] /
//! [`advance_dots_append`], the same recurrence machinery reused by the
//! streaming engine's per-append shifts. Every kernel body is written
//! **once** against [`valmod_fft::simd::F64Lanes`] and instantiated at
//! the lane width the dispatch picks:
//!
//! | [`SimdLevel`] | stage-1 walk | entry-dot advance | streaming shifts |
//! |---|---|---|---|
//! | `Avx512` (8 lanes) | tiled walk, `zmm` | 8-entry masked gather | 8-wide blocks |
//! | `Avx2` (4 lanes) | tiled walk, `ymm` | 4-entry masked gather | 4-wide blocks |
//! | `Portable8` | tiled walk, scalar lanes | scalar loop | scalar reverse loop |
//! | `Portable4` | tiled walk, scalar lanes | scalar loop | scalar reverse loop |
//! | (ragged remainders) | scalar cells | scalar loop | scalar reverse loop |
//!
//! The level is resolved **once** per stage ([`valmod_fft::simd::simd_level`]:
//! `VALMOD_FORCE_PORTABLE` / `VALMOD_FORCE_WIDTH`, then the in-process
//! test override, then CPU capability) and passed down explicitly, so a
//! mid-run override flip can never tear a multi-worker partitioning.
//!
//! # The register tiling
//!
//! Stage 1 walks every diagonal of the QT matrix at `ℓmin`, and per cell
//! does one fused multiply-add (the dot-product recurrence), one
//! correlation/distance conversion, two best-so-far compares and two
//! top-`p` selector offers. On the paper's workloads this is ~90% of
//! end-to-end time. The walk processes `2W` **adjacent** diagonals per
//! block (`j = i + k0 + c`, a pair of lane vectors — two vectors per row
//! halve the fixed per-row costs per cell), and the block's column-side
//! working state lives in *registers* that slide along with the rows
//! instead of round-tripping through the structure-of-arrays each
//! iteration:
//!
//! * `col_d` / `col_j` — the running best (distance, candidate) of each
//!   live column, folded under "(d asc, candidate asc)";
//! * `col_thresh` — each live column's [`TopRhoSelector`] rejection
//!   threshold, reloaded only on the rare offer that changes it;
//! * `col_rej` — each live column's prefiltered-offer count (exact
//!   integers in f64 lanes), credited in bulk at retirement.
//!
//! Advancing from row `i` to `i+1` slides the column window by one: lane
//! 0 of the low vector (column `j0`) is *retired* — its best is folded
//! into the SoA state, its threshold stored back, its rejected count
//! credited to a deferred per-row array — the register pairs shift down
//! one lane ([`F64Lanes::shift_concat`] across the pair,
//! [`F64Lanes::shift_in_high`] at the top), and the entering column
//! `j0+2W` is initialized from memory. Per row that leaves: two fused
//! multiply-add vectors, two ρ/d conversions, a handful of compare/select
//! folds, and a couple of scalar stores — no per-lane selector or SoA
//! read-modify-writes, which at width 8 is what lifts the walk toward
//! its div+sqrt throughput ceiling. Rejected-count credits are deferred into a flat per-row
//! array and flushed through [`TopRhoSelector::count_rejected`] once per
//! walk — exact, because the count only feeds the final truncation flag,
//! never the threshold.
//!
//! # Bit-identity
//!
//! The kernel produces **byte-identical** merged results to the scalar
//! cell-at-a-time walk (and hence to the engine as it existed before
//! this module), for every lane width, thread count, and batch width,
//! because
//!
//! 1. every cell's arithmetic is the *same expression tree* as the
//!    scalar path (the per-row hoists `ℓμᵢ`, `ℓσᵢ`, `2ℓ` keep the
//!    original association order), evaluated in IEEE-754 double
//!    precision either way — vector lanes round exactly like scalars,
//!    and `mul_add` is a fused multiply-add on every path. In
//!    particular, the recurrence's `qt − t_drop·t_drop_j` stays a
//!    **mul-then-sub** (two roundings) everywhere: fusing it into an
//!    `fnmadd` (one rounding) would be faster but would diverge from the
//!    scalar tail cells, so it is deliberately split on all paths;
//! 2. grouping cells into `W`-lane rows only changes the *order* in
//!    which candidates reach the per-row reductions, and both reductions
//!    are order-independent: the per-row best uses the total order
//!    "(distance asc, neighbor offset asc)" — so folding it first in a
//!    register and later into memory is the same lexicographic min — and
//!    the selector's kept set is a pure function of the offered set
//!    under "(ρ desc, offset asc)" (see [`crate::partial`]);
//! 3. the prefilter only skips offers the selector is guaranteed to
//!    reject, while keeping the offered count exact
//!    ([`TopRhoSelector::count_rejected`]); a register-cached threshold
//!    is never stale because, while a column is live in the window,
//!    nothing else can touch its selector (live columns satisfy
//!    `j ≥ i + first_diag > i`, and blocks run sequentially per worker);
//! 4. the runtime-dispatched packed instantiations compile the *same
//!    lane-generic Rust code* as the portable fallback — dispatch
//!    selects an instruction encoding and a width, never an algorithm.
//!
//! The `kernel_differential` harness (`tests/kernel_differential.rs`)
//! pins exactly this: every variant × thread count over adversarial
//! proptest series, byte-equal merged selector state, bests, and
//! end-to-end checksums; the in-module tests pin the kernel against the
//! pre-kernel closure-based scalar walk.
//!
//! # Vectorization notes
//!
//! The pure-math steps go through [`F64Lanes`]' `#[inline(always)]`
//! intrinsic wrappers inside a `#[target_feature]` outer instantiation
//! per backend, so they compile to bare `vfmadd132pd` / `vdivpd` /
//! `vsqrtpd` / `vmaxpd` / `vminpd` on ymm/zmm registers (verified with
//! `objdump -d`; LLVM does not SLP-pack the divide/sqrt chain on its
//! own under generic tuning, which is why the lanes are explicit). The
//! branchy steps (row-side offers, retirement, tails) stay shared scalar
//! code. Scalar `mul_add` on non-FMA hardware lowers to a libm `fma`
//! call — slower, but bit-identical, and no slower than the pre-kernel
//! engine, which used `mul_add` per cell already.

#![deny(unsafe_op_in_unsafe_fn)]

use valmod_fft::simd::{self, F64Lanes, SimdLevel};
use valmod_mp::stomp::StompEngine;
use valmod_obs as obs;

use crate::partial::TopRhoSelector;

/// One stage-1 worker's partition result: per-row top-`p` selectors and
/// per-row bests in structure-of-arrays form (`u32::MAX` = no best yet),
/// merged row-wise by `algo::stage_one` under the usual total orders.
pub(crate) struct Stage1Part {
    /// Per-row top-`p` candidate selectors.
    pub selectors: Vec<TopRhoSelector>,
    /// Per-row best distance (`INFINITY` = none seen).
    pub best_d: Vec<f64>,
    /// Per-row best neighbor offset (`u32::MAX` = none seen).
    pub best_j: Vec<u32>,
}

impl Stage1Part {
    /// Empty worker state for `m` rows with top-`p` capacity.
    pub(crate) fn new(m: usize, profile_size: usize) -> Self {
        Self {
            selectors: (0..m).map(|_| TopRhoSelector::new(profile_size)).collect(),
            best_d: vec![f64::INFINITY; m],
            best_j: vec![u32::MAX; m],
        }
    }

    /// Merges another part built from a *disjoint* partition of the QT
    /// cells: row-wise [`TopRhoSelector::absorb`] plus the best fold
    /// under "(d asc, j asc)" — exactly the merge `algo::stage_one`
    /// performs. Because both reductions are pure functions of the
    /// contributed multiset, absorbing parts in any order or grouping
    /// (workers, anytime rounds) yields byte-identical merged state.
    pub(crate) fn absorb(&mut self, other: &Stage1Part) {
        debug_assert_eq!(self.best_d.len(), other.best_d.len());
        for i in 0..self.best_d.len() {
            self.selectors[i].absorb(&other.selectors[i]);
            let (cd, cj) = (other.best_d[i], other.best_j[i]);
            if cd < self.best_d[i] || (cd == self.best_d[i] && cj < self.best_j[i]) {
                self.best_d[i] = cd;
                self.best_j[i] = cj;
            }
        }
    }
}

/// Narrows a subsequence offset to the `u32` the SoA state stores.
/// Profiles beyond `u32::MAX` windows are out of scope (the partial
/// profile entries store `u32` offsets already), so this is a hard assert
/// rather than a debug one: a ≥ 2^32-window series must fail loudly, not
/// silently wrap offsets in release builds. The check is one predictable
/// compare per row batch / remainder cell — noise next to the sqrt and
/// divides it sits behind.
#[inline]
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn idx32(j: usize) -> u32 {
    assert!(j < u32::MAX as usize, "subsequence offset {j} exceeds the u32 profile index space");
    j as u32
}

/// The `best_j` sentinel as an f64 lane value (`u32::MAX`, exactly
/// representable). Register column bests store candidate offsets as
/// doubles — integers below 2^53 are exact, and `m < u32::MAX` by the
/// [`idx32`] contract.
const NO_BEST: f64 = u32::MAX as f64;

/// `clamp(raw, −1, 1)` with the exact select semantics of the packed
/// `vmaxpd`/`vminpd` pair: `max(a, b) = if a > b { a } else { b }`, then
/// `min` likewise. For every non-NaN input this is `f64::clamp`; for a
/// NaN input — reachable when huge (~1e170) but finite samples overflow
/// the dot products to `inf` and the numerator becomes `inf − inf` — it
/// lands on `−1.0`, matching what the x86 min/max convention produces in
/// the packed lanes (and what [`F64Lanes::max`]/[`F64Lanes::min`] define
/// for the portable ones). One shared definition across the scalar
/// remainder and all lane widths is what keeps the dispatch bit-identical
/// in the NaN corner too, where `f64::clamp` (NaN-propagating) would
/// diverge.
#[inline(always)]
fn clamp_rho(raw: f64) -> f64 {
    let lo = if raw > -1.0 { raw } else { -1.0 };
    if lo < 1.0 {
        lo
    } else {
        1.0
    }
}

/// Read-only inputs of one worker's walk.
struct Ctx<'a> {
    /// Mean-shifted series values.
    t: &'a [f64],
    /// `QT(0, k)` — the start of every diagonal.
    first_row: &'a [f64],
    means: &'a [f64],
    stds: &'a [f64],
    l: usize,
    m: usize,
    /// `ℓ` as f64.
    lf: f64,
    /// `2ℓ` as f64 (hoisted with the original association `2.0 * lf`).
    two_lf: f64,
}

/// Mutable per-worker state: the output part, the selector rejection
/// thresholds mirrored as a flat array the prefilter can load cheaply,
/// and the deferred rejected-offer credits (flushed into the selectors
/// once per walk — the count only feeds the truncation flag, so timing
/// is irrelevant).
struct WalkState {
    part: Stage1Part,
    thresh: Vec<f64>,
    rej: Vec<u64>,
}

/// Walks this worker's share of the upper-triangle diagonals at the base
/// length, `2W` adjacent diagonals per register-pair tile, producing the
/// worker's selectors and bests. Blocks of `2W` consecutive diagonals are
/// dealt round-robin: worker `w` of `num_workers` takes blocks `w, w +
/// num_workers, …` starting at `first_diag`. Any partitioning (including
/// the width-dependent blocking) yields the same merged result (see the
/// module docs), so the blocking is purely a locality/SIMD choice.
///
/// `level` is the dispatch decision resolved once by the caller; passing
/// it explicitly keeps every worker of a stage on the same instantiation
/// and lets the differential harness drive each variant directly.
///
/// Caller contract: no flat (σ ≈ 0) window exists at this length —
/// `algo::stage_one` routes those series to the scalar distance-space
/// walk instead.
pub(crate) fn stage1_walk(
    engine: &StompEngine,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    profile_size: usize,
    level: SimdLevel,
) -> Stage1Part {
    let _walk_span = obs::span("stage1_walk", obs::Layer::Kernel);
    let m = engine.num_windows();
    let l = engine.window();
    let lf = l as f64;
    let ctx = Ctx {
        t: engine.values(),
        first_row: engine.first_row(),
        means: engine.means(),
        stds: engine.stds(),
        l,
        m,
        lf,
        two_lf: 2.0 * lf,
    };
    let mut state = WalkState {
        part: Stage1Part::new(m, profile_size),
        thresh: vec![f64::NEG_INFINITY; m],
        rej: vec![0; m],
    };
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            let b = simd::Avx512::new().expect("dispatch resolved AVX-512 without CPU support");
            // SAFETY: the `Avx512` token proves the target features.
            unsafe { walk_avx512(b, &ctx, first_diag, w, num_workers, &mut state) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            let b = simd::Avx2::new().expect("dispatch resolved AVX2 without CPU support");
            // SAFETY: the `Avx2` token proves the target features.
            unsafe { walk_avx2(b, &ctx, first_diag, w, num_workers, &mut state) }
        }
        SimdLevel::Portable8 => {
            walk_lanes::<8, _>(simd::Portable, &ctx, first_diag, w, num_workers, &mut state);
        }
        // Portable4, plus (on non-x86 targets, where `simd_level` never
        // resolves a packed level) the unreachable packed arms.
        _ => walk_lanes::<4, _>(simd::Portable, &ctx, first_diag, w, num_workers, &mut state),
    }
    // Cell count — a pure function of the blocked partition geometry
    // (each diagonal `k` holds `m − k` cells).
    let tile = 2 * level.width();
    let stride = num_workers * tile;
    let mut cells: u64 = 0;
    let mut k0 = first_diag + w * tile;
    while k0 < m {
        for k in k0..(k0 + tile).min(m) {
            cells += (m - k) as u64;
        }
        k0 += stride;
    }
    finish_walk(state, cells, level)
}

/// Walks an explicit list of diagonal blocks instead of the eager
/// round-robin stride — the anytime tier's entry point, reusing the same
/// register-tiled kernel per block. `blocks` holds block *starts*: each
/// entry `k0` covers diagonals `k0 .. min(k0 + 2W, m)` where `W` is
/// `level`'s lane width. Starts must come from the tile grid
/// `first_diag + q·2W` (the same grid [`stage1_walk`] walks) and be
/// mutually distinct so the union of any set of listed walks partitions
/// the cells; order within the list is irrelevant to the merged result
/// (see the module docs) and only shapes preview timing.
///
/// Same caller contract as [`stage1_walk`]: no flat window at this
/// length.
pub(crate) fn stage1_walk_listed(
    engine: &StompEngine,
    blocks: &[usize],
    profile_size: usize,
    level: SimdLevel,
) -> Stage1Part {
    let _walk_span = obs::span("stage1_walk", obs::Layer::Kernel);
    let m = engine.num_windows();
    let l = engine.window();
    let lf = l as f64;
    let ctx = Ctx {
        t: engine.values(),
        first_row: engine.first_row(),
        means: engine.means(),
        stds: engine.stds(),
        l,
        m,
        lf,
        two_lf: 2.0 * lf,
    };
    let mut state = WalkState {
        part: Stage1Part::new(m, profile_size),
        thresh: vec![f64::NEG_INFINITY; m],
        rej: vec![0; m],
    };
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            let b = simd::Avx512::new().expect("dispatch resolved AVX-512 without CPU support");
            // SAFETY: the `Avx512` token proves the target features.
            unsafe { walk_avx512_listed(b, &ctx, blocks, &mut state) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            let b = simd::Avx2::new().expect("dispatch resolved AVX2 without CPU support");
            // SAFETY: the `Avx2` token proves the target features.
            unsafe { walk_avx2_listed(b, &ctx, blocks, &mut state) }
        }
        SimdLevel::Portable8 => {
            walk_lanes_listed::<8, _>(simd::Portable, &ctx, blocks, &mut state);
        }
        _ => walk_lanes_listed::<4, _>(simd::Portable, &ctx, blocks, &mut state),
    }
    let tile = 2 * level.width();
    let mut cells: u64 = 0;
    for &k0 in blocks {
        for k in k0..(k0 + tile).min(m) {
            cells += (m - k) as u64;
        }
    }
    finish_walk(state, cells, level)
}

/// Shared tail of every walk entry point: flushes the deferred prefilter
/// credits into the selectors, then the metrics — once per walk, never
/// per cell. Every cell makes exactly two offers (row- and column-side),
/// so the accepted-offer count follows arithmetically from `cells` and
/// the deferred rejected count: four relaxed adds total.
fn finish_walk(mut state: WalkState, cells: u64, level: SimdLevel) -> Stage1Part {
    let mut rejected: u64 = 0;
    for (selector, &r) in state.part.selectors.iter_mut().zip(&state.rej) {
        if r > 0 {
            rejected += r;
            #[allow(clippy::cast_possible_truncation)]
            selector.count_rejected(r as usize);
        }
    }
    obs::count!(stage1_cells, cells);
    obs::count!(stage1_prefilter_rejected, rejected);
    obs::count!(stage1_offers, (2 * cells).saturating_sub(rejected));
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => obs::count!(stage1_dispatch_w8_packed, 1),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => obs::count!(stage1_dispatch_w4_packed, 1),
        SimdLevel::Portable8 => obs::count!(stage1_dispatch_w8_portable, 1),
        _ => obs::count!(stage1_dispatch_w4_portable, 1),
    }
    state.part
}

/// The AVX2+FMA instantiation of [`walk_lanes`] at W=4: the
/// `#[inline(always)]` lane ops compile to bare 256-bit instructions
/// under this function's target features.
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn walk_avx2(
    b: simd::Avx2,
    ctx: &Ctx<'_>,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    state: &mut WalkState,
) {
    walk_lanes::<4, _>(b, ctx, first_diag, w, num_workers, state);
}

/// The AVX-512 instantiation of [`walk_lanes`] at W=8.
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn walk_avx512(
    b: simd::Avx512,
    ctx: &Ctx<'_>,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    state: &mut WalkState,
) {
    walk_lanes::<8, _>(b, ctx, first_diag, w, num_workers, state);
}

/// Body shared by every instantiation: blocks of `2W` adjacent diagonals
/// (a register-pair tile) through the tiled walk, ragged final blocks
/// through the scalar cells.
#[inline(always)]
fn walk_lanes<const W: usize, B: F64Lanes<W>>(
    b: B,
    ctx: &Ctx<'_>,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    state: &mut WalkState,
) {
    let m = ctx.m;
    let tile = 2 * W;
    let stride = num_workers * tile;
    let mut k0 = first_diag + w * tile;
    while k0 < m {
        if k0 + tile <= m {
            process_block(b, ctx, k0, state);
        } else {
            // Ragged last block: fewer than 2W diagonals remain.
            for k in k0..m {
                let qt0 = ctx.first_row[k];
                process_cell(ctx, 0, k, qt0, state);
                tail_scalar(ctx, k, 1, qt0, state);
            }
        }
        k0 += stride;
    }
}

/// The AVX2+FMA instantiation of [`walk_lanes_listed`] at W=4.
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn walk_avx2_listed(b: simd::Avx2, ctx: &Ctx<'_>, blocks: &[usize], state: &mut WalkState) {
    walk_lanes_listed::<4, _>(b, ctx, blocks, state);
}

/// The AVX-512 instantiation of [`walk_lanes_listed`] at W=8.
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn walk_avx512_listed(
    b: simd::Avx512,
    ctx: &Ctx<'_>,
    blocks: &[usize],
    state: &mut WalkState,
) {
    walk_lanes_listed::<8, _>(b, ctx, blocks, state);
}

/// [`walk_lanes`] over an explicit block list: each listed start goes
/// through the identical tiled/ragged split, so a listed walk over the
/// blocks a strided walk would visit performs exactly the same cell
/// operations in the same per-block order.
#[inline(always)]
fn walk_lanes_listed<const W: usize, B: F64Lanes<W>>(
    b: B,
    ctx: &Ctx<'_>,
    blocks: &[usize],
    state: &mut WalkState,
) {
    let m = ctx.m;
    let tile = 2 * W;
    for &k0 in blocks {
        debug_assert!(k0 < m);
        if k0 + tile <= m {
            process_block(b, ctx, k0, state);
        } else {
            for k in k0..m {
                let qt0 = ctx.first_row[k];
                process_cell(ctx, 0, k, qt0, state);
                tail_scalar(ctx, k, 1, qt0, state);
            }
        }
    }
}

/// One full register-pair tile: diagonals `k0 .. k0 + 2W` in two lane
/// vectors (lo = `k0..k0+W`, hi = `k0+W..k0+2W`), all lanes live for rows
/// `0 .. m − k0 − 2W + 1`, then per-lane scalar tails. Two vectors per
/// row halve the once-per-row costs (retire, slide, best/offer mask
/// checks, scalar stores) per cell relative to a single-vector tile,
/// while the per-cell math is width-independent.
///
/// The column-side working state (`col_*` register pairs) slides with the
/// rows — see the module docs for the retirement discipline and the
/// exactness argument.
#[inline(always)]
#[allow(clippy::too_many_lines)]
fn process_block<const W: usize, B: F64Lanes<W>>(
    b: B,
    ctx: &Ctx<'_>,
    k0: usize,
    state: &mut WalkState,
) {
    let (t, l, m) = (ctx.t, ctx.l, ctx.m);
    let tile = 2 * W;
    let lane_mask: u32 = (1u32 << W) - 1;
    let one = b.splat(1.0);
    let zero = b.splat(0.0);
    let neg_one = b.splat(-1.0);
    let two_lf = b.splat(ctx.two_lf);
    let km = k0 + W;

    let mut qt_lo = b.load(&ctx.first_row[k0..]);
    let mut qt_hi = b.load(&ctx.first_row[km..]);
    // Column-side register pairs for the live columns `j0 .. j0 + 2W`.
    let mut cd_lo = b.splat(f64::INFINITY);
    let mut cd_hi = b.splat(f64::INFINITY);
    let mut cj_lo = b.splat(NO_BEST);
    let mut cj_hi = b.splat(NO_BEST);
    let mut ct_lo = b.load(&state.thresh[k0..]);
    let mut ct_hi = b.load(&state.thresh[km..]);
    let mut cr_lo = zero;
    let mut cr_hi = zero;

    // Rows where all 2W diagonals are still inside the triangle: lane c
    // ends at row m − (k0 + c), so the shortest lane (c = 2W − 1) bounds
    // the vector region.
    let full_rows = m - (k0 + tile - 1);
    for i in 0..full_rows {
        let j0 = i + k0;
        let jm = j0 + W;
        if i > 0 {
            // Per lane: `qt = t_head·t[j+ℓ−1] + (qt − t_drop·t[j−1])`,
            // multiply-add fused, drop product rounded separately —
            // exactly the scalar recurrence's rounding (mul-then-sub
            // deliberately split, see the module docs).
            let head = b.splat(t[i + l - 1]);
            let drop = b.splat(t[i - 1]);
            let dropped_lo = b.mul(drop, b.load(&t[j0 - 1..]));
            qt_lo = b.mul_add(head, b.load(&t[j0 + l - 1..]), b.sub(qt_lo, dropped_lo));
            let dropped_hi = b.mul(drop, b.load(&t[jm - 1..]));
            qt_hi = b.mul_add(head, b.load(&t[jm + l - 1..]), b.sub(qt_hi, dropped_hi));
        }

        // ρ = clamp((qt − ℓμᵢ·μⱼ) / (ℓσᵢ·σⱼ)), d = sqrt(max(2ℓ·(1−ρ), 0))
        // — the scalar expression tree per lane; hoists preserve the
        // association ℓμᵢμⱼ = (ℓμᵢ)·μⱼ and ℓσᵢσⱼ = (ℓσᵢ)·σⱼ.
        let av = b.splat(ctx.lf * ctx.means[i]);
        let sv = b.splat(ctx.lf * ctx.stds[i]);
        let num_lo = b.sub(qt_lo, b.mul(av, b.load(&ctx.means[j0..])));
        let den_lo = b.mul(sv, b.load(&ctx.stds[j0..]));
        let rho_lo = b.min(b.max(b.div(num_lo, den_lo), neg_one), one);
        let d_lo = b.sqrt(b.max(b.mul(two_lf, b.sub(one, rho_lo)), zero));
        let num_hi = b.sub(qt_hi, b.mul(av, b.load(&ctx.means[jm..])));
        let den_hi = b.mul(sv, b.load(&ctx.stds[jm..]));
        let rho_hi = b.min(b.max(b.div(num_hi, den_hi), neg_one), one);
        let d_hi = b.sqrt(b.max(b.mul(two_lf, b.sub(one, rho_hi)), zero));

        let part = &mut state.part;
        // Per-row best for row i. Fast path: unless some lane is ≤ the
        // running best, the fold cannot change anything and the whole
        // reduction is skipped (the common case once the best warms up).
        // Slow path: horizontal min under "(d asc, j asc)" — the first
        // lane attaining the min across the concatenated pair is the
        // smallest j — folded into the running best under the same order.
        // `d` is never NaN (ρ is clamped first), so the quiet ≤ is exact.
        let cur_bd = part.best_d[i];
        let curv = b.splat(cur_bd);
        if (b.mask_bits(b.ge(curv, d_lo)) | b.mask_bits(b.ge(curv, d_hi))) != 0 {
            let bd = b.hmin(b.min(d_lo, d_hi));
            let bdv = b.splat(bd);
            let eq_bits = b.mask_bits(b.eq(d_lo, bdv)) | (b.mask_bits(b.eq(d_hi, bdv)) << W);
            let bc = eq_bits.trailing_zeros() as usize;
            let bj = idx32(j0 + bc);
            if bd < cur_bd || (bd == cur_bd && bj < part.best_j[i]) {
                part.best_d[i] = bd;
                part.best_j[i] = bj;
            }
        }

        // Column bests (candidate i into columns j0..j0+2W): lexicographic
        // min fold in registers under "(d asc, candidate asc)".
        let iv = b.splat(i as f64);
        let take_lo = b.mask_or(b.lt(d_lo, cd_lo), b.mask_and(b.eq(d_lo, cd_lo), b.lt(iv, cj_lo)));
        cd_lo = b.select(take_lo, d_lo, cd_lo);
        cj_lo = b.select(take_lo, iv, cj_lo);
        let take_hi = b.mask_or(b.lt(d_hi, cd_hi), b.mask_and(b.eq(d_hi, cd_hi), b.lt(iv, cj_hi)));
        cd_hi = b.select(take_hi, d_hi, cd_hi);
        cj_hi = b.select(take_hi, iv, cj_hi);

        // Row-side offers: candidates j0..j0+2W into row i's selector.
        // One lane compare per half against the row threshold prefilters
        // the common all-rejected case into a single deferred credit; a
        // lane below the threshold now stays below it on the sequential
        // path too (offers only raise thresholds), so pre-rejecting by
        // mask sees exactly the per-lane-in-order outcomes.
        let mut t_i = state.thresh[i];
        let tv = b.splat(t_i);
        if (b.mask_bits(b.lt(rho_lo, tv)) & b.mask_bits(b.lt(rho_hi, tv))) == lane_mask {
            state.rej[i] += tile as u64;
        } else {
            for (h, (rho, qt)) in [(rho_lo, qt_lo), (rho_hi, qt_hi)].into_iter().enumerate() {
                let rho_a = b.to_array(rho);
                let qt_a = b.to_array(qt);
                for c in 0..W {
                    if rho_a[c] < t_i {
                        state.rej[i] += 1;
                    } else {
                        part.selectors[i].offer(j0 + h * W + c, rho_a[c], qt_a[c]);
                        t_i = part.selectors[i].threshold();
                    }
                }
            }
            state.thresh[i] = t_i;
        }

        // Column-side offers (candidate i into rows j0..j0+2W): rejected
        // lanes bump the register counters; the rare surviving lanes take
        // the scalar offer path and refresh their cached thresholds.
        (ct_lo, cr_lo) =
            col_side_offers(b, rho_lo, qt_lo, ct_lo, cr_lo, one, lane_mask, i, j0, state);
        (ct_hi, cr_hi) =
            col_side_offers(b, rho_hi, qt_hi, ct_hi, cr_hi, one, lane_mask, i, jm, state);

        if i + 1 < full_rows {
            // Slide the column window: retire lane 0 (column j0 gets no
            // further updates from this tile), shift the pair one lane,
            // admit column j0+2W at the top.
            retire_lane0(b, cd_lo, cj_lo, ct_lo, cr_lo, j0, state);
            cd_lo = b.shift_concat(cd_lo, cd_hi);
            cd_hi = b.shift_in_high(cd_hi, f64::INFINITY);
            cj_lo = b.shift_concat(cj_lo, cj_hi);
            cj_hi = b.shift_in_high(cj_hi, NO_BEST);
            ct_lo = b.shift_concat(ct_lo, ct_hi);
            ct_hi = b.shift_in_high(ct_hi, state.thresh[j0 + tile]);
            cr_lo = b.shift_concat(cr_lo, cr_hi);
            cr_hi = b.shift_in_high(cr_hi, 0.0);
        } else {
            // Last full row: retire every live column before the scalar
            // tails touch the shared state.
            for (h, (cd, cj, th, cr)) in
                [(cd_lo, cj_lo, ct_lo, cr_lo), (cd_hi, cj_hi, ct_hi, cr_hi)].into_iter().enumerate()
            {
                let (cd, cj) = (b.to_array(cd), b.to_array(cj));
                let (th, cr) = (b.to_array(th), b.to_array(cr));
                for c in 0..W {
                    retire_column(j0 + h * W + c, cd[c], cj[c], th[c], cr[c], state);
                }
            }
        }
    }

    // Lane tails: lanes 0..2W−1 outlive the vector region by 2W−1−c rows
    // each; finish them with the scalar cell.
    let qt_a_lo = b.to_array(qt_lo);
    let qt_a_hi = b.to_array(qt_hi);
    for c in 0..tile - 1 {
        let qt_c = if c < W { qt_a_lo[c] } else { qt_a_hi[c - W] };
        tail_scalar(ctx, k0 + c, full_rows, qt_c, state);
    }
}

/// One vector half's column-side offer step: rejected lanes bump the
/// register counter, surviving lanes take the scalar offer path and
/// refresh their cached thresholds. Returns the updated
/// `(col_thresh, col_rej)` pair.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn col_side_offers<const W: usize, B: F64Lanes<W>>(
    b: B,
    rho: B::V,
    qt: B::V,
    col_thresh: B::V,
    col_rej: B::V,
    one: B::V,
    lane_mask: u32,
    i: usize,
    j0: usize,
    state: &mut WalkState,
) -> (B::V, B::V) {
    let rejm = b.lt(rho, col_thresh);
    let col_rej = b.select(rejm, b.add(col_rej, one), col_rej);
    let offer_bits = !b.mask_bits(rejm) & lane_mask;
    let mut col_thresh = col_thresh;
    if offer_bits != 0 {
        let rho_a = b.to_array(rho);
        let qt_a = b.to_array(qt);
        let mut th_a = b.to_array(col_thresh);
        let mut bits = offer_bits;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let j = j0 + c;
            state.part.selectors[j].offer(i, rho_a[c], qt_a[c]);
            th_a[c] = state.part.selectors[j].threshold();
        }
        col_thresh = b.pack(th_a);
    }
    (col_thresh, col_rej)
}

/// Retires register lane 0 of the sliding column window into the SoA
/// state for column `j0`.
#[inline(always)]
fn retire_lane0<const W: usize, B: F64Lanes<W>>(
    b: B,
    col_d: B::V,
    col_j: B::V,
    col_thresh: B::V,
    col_rej: B::V,
    j0: usize,
    state: &mut WalkState,
) {
    retire_column(
        j0,
        b.extract0(col_d),
        b.extract0(col_j),
        b.extract0(col_thresh),
        b.extract0(col_rej),
        state,
    );
}

/// Folds one retired column's register state into the SoA state: best
/// under "(d asc, candidate asc)" (the sentinel `(∞, u32::MAX)` never
/// wins), threshold written back verbatim, rejected count credited to
/// the deferred array.
#[inline(always)]
fn retire_column(j: usize, cd: f64, cj: f64, th: f64, cr: f64, state: &mut WalkState) {
    let part = &mut state.part;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let cju = cj as u32;
    if cd < part.best_d[j] || (cd == part.best_d[j] && cju < part.best_j[j]) {
        part.best_d[j] = cd;
        part.best_j[j] = cju;
    }
    state.thresh[j] = th;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        state.rej[j] += cr as u64;
    }
}

/// Continues diagonal `k` from row `start_i` (with `qt` holding the value
/// at `start_i − 1`, or `QT(0, k)` when `start_i` is 1) to its end.
#[inline(always)]
fn tail_scalar(ctx: &Ctx<'_>, k: usize, start_i: usize, mut qt: f64, state: &mut WalkState) {
    let (t, l) = (ctx.t, ctx.l);
    for i in start_i..ctx.m - k {
        let j = i + k;
        qt = t[i + l - 1].mul_add(t[j + l - 1], qt - t[i - 1] * t[j - 1]);
        process_cell(ctx, i, j, qt, state);
    }
}

/// One scalar cell `(i, j)` — the remainder path. Bit-identical to a lane
/// of the tiled rows: same expression tree, same total orders, same
/// prefilter contract (credits go to the same deferred array).
#[inline(always)]
fn process_cell(ctx: &Ctx<'_>, i: usize, j: usize, qt: f64, state: &mut WalkState) {
    let rho = clamp_rho(
        (qt - ctx.lf * ctx.means[i] * ctx.means[j]) / (ctx.lf * ctx.stds[i] * ctx.stds[j]),
    );
    let d = (ctx.two_lf * (1.0 - rho)).max(0.0).sqrt();

    let part = &mut state.part;
    let ju = idx32(j);
    if d < part.best_d[i] || (d == part.best_d[i] && ju < part.best_j[i]) {
        part.best_d[i] = d;
        part.best_j[i] = ju;
    }
    let iu = idx32(i);
    if d < part.best_d[j] || (d == part.best_d[j] && iu < part.best_j[j]) {
        part.best_d[j] = d;
        part.best_j[j] = iu;
    }

    if rho < state.thresh[i] {
        state.rej[i] += 1;
    } else {
        part.selectors[i].offer(j, rho, qt);
        state.thresh[i] = part.selectors[i].threshold();
    }
    if rho < state.thresh[j] {
        state.rej[j] += 1;
    } else {
        part.selectors[j].offer(i, rho, qt);
        state.thresh[j] = part.selectors[j].threshold();
    }
}

/// Advances the stored partial-profile dot products of one row from length
/// `ℓ` to `ℓ+1`: for each entry `e`,
///
/// ```text
/// dst[e] = if j[e] < limit { head.mul_add(t_next[j[e]], src[e]) } else { src[e] }
/// ```
///
/// where `head = t[i + ℓ]`, `t_next = &t[ℓ..]` (so `t_next[j] = t[j + ℓ]`)
/// and `limit` is the window count at `ℓ+1` (entries whose candidate no
/// longer fits keep their last dot, exactly as the scalar per-entry loop
/// left them). `src` and `dst` may be the same buffer contents-wise but
/// must be distinct slices (the double-buffered stage-2 scratch always
/// passes the shadow as `dst`).
///
/// The packed paths run `W` entries per iteration (W=4 under AVX2, W=8
/// under AVX-512, one shared driver): the `j` guard becomes an unsigned
/// lane compare, `t_next[j]` a masked gather (masked-off lanes perform no
/// memory access), the advance a single `vfmadd`, and the keep-else
/// branch a blend that copies `src`'s bits verbatim — so the result is
/// byte-identical to the scalar loop, `−0.0` and overflowed (±∞) dots
/// included. Falls back to the scalar loop on portable levels and for
/// `limit` beyond the gathers' signed-index space.
///
/// # Panics
///
/// Panics when `j`/`src`/`dst` lengths differ, or when `limit` exceeds
/// `t_next.len()` — every in-range lane must have a head product to
/// gather (the scalar path would hit the same indexing panic lane by
/// lane; asserting it up front keeps the packed gathers in bounds).
pub fn advance_entry_dots(
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
) {
    assert_eq!(j.len(), src.len());
    assert_eq!(j.len(), dst.len());
    assert!(
        limit as usize <= t_next.len(),
        "limit {limit} exceeds the {} head products available",
        t_next.len()
    );
    #[cfg(target_arch = "x86_64")]
    {
        if i32::try_from(limit).is_ok() {
            match simd::simd_level() {
                SimdLevel::Avx512 => {
                    let b = simd::Avx512::new().expect("dispatch resolved AVX-512");
                    // SAFETY: token proves the features; `limit` fits i32
                    // and is bounded by `t_next.len()` (asserted above),
                    // so every gathered lane stays in bounds.
                    unsafe { entry_dots_avx512(b, head, t_next, j, limit, src, dst) };
                    return;
                }
                SimdLevel::Avx2 => {
                    let b = simd::Avx2::new().expect("dispatch resolved AVX2");
                    // SAFETY: as above.
                    unsafe { entry_dots_avx2(b, head, t_next, j, limit, src, dst) };
                    return;
                }
                _ => {}
            }
        }
    }
    entry_dots_scalar(head, t_next, j, limit, src, dst, 0);
}

/// The scalar entry-dot advance from entry `start` on.
#[inline(always)]
fn entry_dots_scalar(
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
    start: usize,
) {
    for e in start..j.len() {
        dst[e] = if j[e] < limit { head.mul_add(t_next[j[e] as usize], src[e]) } else { src[e] };
    }
}

/// A width's masked-gather step for [`advance_entry_dots`]: exactly `W`
/// entries starting at `e`. Implemented per packed backend (the gather
/// and the index compare are the only genuinely ISA-specific ops in this
/// module); [`entry_dots_lanes`] is the single shared driver.
#[cfg(target_arch = "x86_64")]
trait EntryGather<const W: usize>: F64Lanes<W> {
    /// # Contract
    ///
    /// `j[e..e+W]`, `src[e..e+W]`, `dst[e..e+W]` in bounds; every lane
    /// with `j < limit` has `t_next[j]` in bounds; lanes with `j ≥ limit`
    /// copy `src`'s exact bits and touch no memory.
    #[allow(clippy::too_many_arguments)]
    fn gather_advance(
        self,
        head: Self::V,
        t_next: &[f64],
        j: &[u32],
        limit: u32,
        src: &[f64],
        dst: &mut [f64],
        e: usize,
    );
}

#[cfg(target_arch = "x86_64")]
impl EntryGather<4> for simd::Avx2 {
    #[inline(always)]
    fn gather_advance(
        self,
        head: Self::V,
        t_next: &[f64],
        j: &[u32],
        limit: u32,
        src: &[f64],
        dst: &mut [f64],
        e: usize,
    ) {
        use core::arch::x86_64::{
            __m128i, _mm256_blendv_pd, _mm256_castsi256_pd, _mm256_cvtepi32_epi64, _mm256_fmadd_pd,
            _mm256_loadu_pd, _mm256_mask_i32gather_pd, _mm256_setzero_pd, _mm256_storeu_pd,
            _mm_cmplt_epi32, _mm_loadu_si128, _mm_set1_epi32, _mm_xor_si128,
        };
        // SAFETY: the `Avx2` token proves AVX2+FMA; the caller contract
        // bounds every access (see the trait docs). Unsigned `j < limit`
        // via sign-bias + signed compare; masked-off gather lanes read no
        // memory and the blend keeps `src`'s bits verbatim.
        unsafe {
            let bias = _mm_set1_epi32(i32::MIN);
            #[allow(clippy::cast_possible_wrap)]
            let limit_biased = _mm_set1_epi32((limit as i32).wrapping_add(i32::MIN));
            let jv = _mm_loadu_si128(j.as_ptr().add(e).cast::<__m128i>());
            let in_range = _mm_cmplt_epi32(_mm_xor_si128(jv, bias), limit_biased);
            let mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(in_range));
            let heads =
                _mm256_mask_i32gather_pd::<8>(_mm256_setzero_pd(), t_next.as_ptr(), jv, mask);
            let src_v = _mm256_loadu_pd(src.as_ptr().add(e));
            let advanced = _mm256_fmadd_pd(head, heads, src_v);
            _mm256_storeu_pd(dst.as_mut_ptr().add(e), _mm256_blendv_pd(src_v, advanced, mask));
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl EntryGather<8> for simd::Avx512 {
    #[inline(always)]
    fn gather_advance(
        self,
        head: Self::V,
        t_next: &[f64],
        j: &[u32],
        limit: u32,
        src: &[f64],
        dst: &mut [f64],
        e: usize,
    ) {
        use core::arch::x86_64::{
            __m256i, _mm256_cmplt_epu32_mask, _mm256_loadu_si256, _mm256_set1_epi32,
            _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_mask_blend_pd, _mm512_mask_i32gather_pd,
            _mm512_setzero_pd, _mm512_storeu_pd,
        };
        // SAFETY: the `Avx512` token proves AVX-512 F/DQ/VL; the caller
        // contract bounds every access. AVX-512VL gives the unsigned
        // 32-bit compare directly; masked-off gather lanes read no memory
        // and the mask blend keeps `src`'s bits verbatim.
        unsafe {
            #[allow(clippy::cast_possible_wrap)]
            let limit_v = _mm256_set1_epi32(limit as i32);
            let jv = _mm256_loadu_si256(j.as_ptr().add(e).cast::<__m256i>());
            let mask = _mm256_cmplt_epu32_mask(jv, limit_v);
            let heads =
                _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), mask, jv, t_next.as_ptr());
            let src_v = _mm512_loadu_pd(src.as_ptr().add(e));
            let advanced = _mm512_fmadd_pd(head, heads, src_v);
            _mm512_storeu_pd(dst.as_mut_ptr().add(e), _mm512_mask_blend_pd(mask, src_v, advanced));
        }
    }
}

/// The shared packed driver of [`advance_entry_dots`]: whole `W`-blocks
/// through [`EntryGather::gather_advance`], ragged tail through the
/// scalar loop.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn entry_dots_lanes<const W: usize, B: EntryGather<W>>(
    b: B,
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
) {
    let head_v = b.splat(head);
    let len = j.len();
    let mut e = 0;
    while e + W <= len {
        b.gather_advance(head_v, t_next, j, limit, src, dst, e);
        e += W;
    }
    entry_dots_scalar(head, t_next, j, limit, src, dst, e);
}

/// [`entry_dots_lanes`] under AVX2+FMA.
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn entry_dots_avx2(
    b: simd::Avx2,
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
) {
    entry_dots_lanes::<4, _>(b, head, t_next, j, limit, src, dst);
}

/// [`entry_dots_lanes`] under AVX-512.
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn entry_dots_avx512(
    b: simd::Avx512,
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
) {
    entry_dots_lanes::<8, _>(b, head, t_next, j, limit, src, dst);
}

/// The streaming engine's in-place per-append dot-product shift
/// (fused-multiply-add form, used for batched appends):
///
/// ```text
/// qt[j] = v.mul_add(t[j + l − 1], qt[j − 1] − dropped · t[j − 1])   for j in (1..qt.len()).rev()
/// ```
///
/// This is the stage-1 kernel's diagonal recurrence applied to a shifted,
/// contiguous row, so the packed paths literally reuse those lanes:
/// blocks of `W` are staged through a register copy (read `qt[j−1..j−1+W]`,
/// advance, write `qt[j..j+W]`), processed from the high end down exactly
/// like the scalar reverse loop, hence byte-identical to it. One shared
/// lane-generic body serves W=4 (AVX2) and W=8 (AVX-512); portable levels
/// take the scalar reverse loop, which is the same expression tree.
///
/// # Panics
///
/// Panics if `t` is shorter than `qt.len() + l − 1` (the highest head
/// index read).
pub fn advance_dots_extend(v: f64, dropped: f64, t: &[f64], l: usize, qt: &mut [f64]) {
    let m = qt.len();
    if m <= 1 {
        return;
    }
    assert!(t.len() >= m + l - 1, "series too short for the append recurrence");
    #[allow(unused_mut)]
    let mut hi = m;
    #[cfg(target_arch = "x86_64")]
    {
        match simd::simd_level() {
            SimdLevel::Avx512 => {
                let b = simd::Avx512::new().expect("dispatch resolved AVX-512");
                // SAFETY: the token proves the target features.
                hi = unsafe { dots_extend_avx512(b, v, dropped, t, l, qt) };
            }
            SimdLevel::Avx2 => {
                let b = simd::Avx2::new().expect("dispatch resolved AVX2");
                // SAFETY: the token proves the target features.
                hi = unsafe { dots_extend_avx2(b, v, dropped, t, l, qt) };
            }
            _ => {}
        }
    }
    for j in (1..hi).rev() {
        qt[j] = v.mul_add(t[j + l - 1], qt[j - 1] - dropped * t[j - 1]);
    }
}

/// The lane-generic blocked-backward body of [`advance_dots_extend`]:
/// processes whole `W`-blocks from the high end down, returns the
/// exclusive upper bound the scalar remainder should continue from.
#[inline(always)]
fn dots_extend_lanes<const W: usize, B: F64Lanes<W>>(
    b: B,
    v: f64,
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    let vv = b.splat(v);
    let dv = b.splat(dropped);
    let mut hi = qt.len();
    while hi > W {
        let j0 = hi - W;
        // Read qt[j0−1..j0−1+W] fully into the register before writing
        // qt[j0..j0+W] — the overlap is safe because the store happens
        // after the load.
        let prev = b.load(&qt[j0 - 1..]);
        let dropv = b.mul(dv, b.load(&t[j0 - 1..]));
        let next = b.mul_add(vv, b.load(&t[j0 + l - 1..]), b.sub(prev, dropv));
        b.store(next, &mut qt[j0..]);
        hi = j0;
    }
    hi
}

/// [`dots_extend_lanes`] under AVX2+FMA.
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dots_extend_avx2(
    b: simd::Avx2,
    v: f64,
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    dots_extend_lanes::<4, _>(b, v, dropped, t, l, qt)
}

/// [`dots_extend_lanes`] under AVX-512.
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn dots_extend_avx512(
    b: simd::Avx512,
    v: f64,
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    dots_extend_lanes::<8, _>(b, v, dropped, t, l, qt)
}

/// The streaming engine's in-place per-append dot-product shift (add
/// form, used for single appends, where the head products come from the
/// shared cross row `cross[x] = v·t[x]`):
///
/// ```text
/// qt[j] = cross[j + l − 1] + (qt[j − 1] − dropped · t[j − 1])   for j in (1..qt.len()).rev()
/// ```
///
/// Same blocked-backward in-place scheme as [`advance_dots_extend`]; the
/// packed lanes evaluate the identical `add(cross, sub(q, mul(dropped,
/// t)))` expression tree, so the result is byte-identical to the scalar
/// reverse loop. (The add form rounds the head product separately — that
/// is the *existing* single-append semantics, kept as-is; this function
/// only vectorizes it.)
///
/// # Panics
///
/// Panics if `t` or `cross` is shorter than `qt.len() + l − 1`.
pub fn advance_dots_append(cross: &[f64], dropped: f64, t: &[f64], l: usize, qt: &mut [f64]) {
    let m = qt.len();
    if m <= 1 {
        return;
    }
    assert!(t.len() >= m + l - 1, "series too short for the append recurrence");
    assert!(cross.len() >= m + l - 1, "cross row too short for the append recurrence");
    #[allow(unused_mut)]
    let mut hi = m;
    #[cfg(target_arch = "x86_64")]
    {
        match simd::simd_level() {
            SimdLevel::Avx512 => {
                let b = simd::Avx512::new().expect("dispatch resolved AVX-512");
                // SAFETY: the token proves the target features.
                hi = unsafe { dots_append_avx512(b, cross, dropped, t, l, qt) };
            }
            SimdLevel::Avx2 => {
                let b = simd::Avx2::new().expect("dispatch resolved AVX2");
                // SAFETY: the token proves the target features.
                hi = unsafe { dots_append_avx2(b, cross, dropped, t, l, qt) };
            }
            _ => {}
        }
    }
    for j in (1..hi).rev() {
        qt[j] = cross[j + l - 1] + (qt[j - 1] - dropped * t[j - 1]);
    }
}

/// The lane-generic blocked-backward body of [`advance_dots_append`].
#[inline(always)]
fn dots_append_lanes<const W: usize, B: F64Lanes<W>>(
    b: B,
    cross: &[f64],
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    let dv = b.splat(dropped);
    let mut hi = qt.len();
    while hi > W {
        let j0 = hi - W;
        let prev = b.load(&qt[j0 - 1..]);
        let dropv = b.mul(dv, b.load(&t[j0 - 1..]));
        let next = b.add(b.load(&cross[j0 + l - 1..]), b.sub(prev, dropv));
        b.store(next, &mut qt[j0..]);
        hi = j0;
    }
    hi
}

/// [`dots_append_lanes`] under AVX2+FMA.
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dots_append_avx2(
    b: simd::Avx2,
    cross: &[f64],
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    dots_append_lanes::<4, _>(b, cross, dropped, t, l, qt)
}

/// [`dots_append_lanes`] under AVX-512.
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn dots_append_avx512(
    b: simd::Avx512,
    cross: &[f64],
    dropped: f64,
    t: &[f64],
    l: usize,
    qt: &mut [f64],
) -> usize {
    dots_append_lanes::<8, _>(b, cross, dropped, t, l, qt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::test_levels;
    use valmod_series::gen;

    /// The pre-kernel scalar reference: the closure-based diagonal walk
    /// with per-cell offers and no prefilter, exactly as `stage_one`
    /// computed it before this module existed.
    fn reference_walk(
        engine: &StompEngine,
        first_diag: usize,
        w: usize,
        num_workers: usize,
        profile_size: usize,
    ) -> Stage1Part {
        let m = engine.num_windows();
        let (means, stds) = (engine.means(), engine.stds());
        let lf = engine.window() as f64;
        let mut part = Stage1Part::new(m, profile_size);
        engine.walk_diagonals(first_diag + w, num_workers, |i, j, qt| {
            let rho = ((qt - lf * means[i] * means[j]) / (lf * stds[i] * stds[j])).clamp(-1.0, 1.0);
            let d = (2.0 * lf * (1.0 - rho)).max(0.0).sqrt();
            part.selectors[i].offer(j, rho, qt);
            part.selectors[j].offer(i, rho, qt);
            let ju = idx32(j);
            if d < part.best_d[i] || (d == part.best_d[i] && ju < part.best_j[i]) {
                part.best_d[i] = d;
                part.best_j[i] = ju;
            }
            let iu = idx32(i);
            if d < part.best_d[j] || (d == part.best_d[j] && iu < part.best_j[j]) {
                part.best_d[j] = d;
                part.best_j[j] = iu;
            }
        });
        part
    }

    /// Comparable per-row state: best (distance bits, offset) plus the
    /// selector's kept entries as (offset, rho bits).
    type MergedRow = (u64, u32, Vec<(u32, u64)>);

    /// Merges worker parts row-wise under the engine's total orders,
    /// returning comparable per-row state.
    fn merged(mut parts: Vec<Stage1Part>, base_len: usize) -> Vec<MergedRow> {
        let rest = parts.split_off(1);
        let first = parts.pop().unwrap();
        let m = first.best_d.len();
        let mut out = Vec::with_capacity(m);
        for (i, (mut selector, (mut bd, mut bj))) in
            first.selectors.into_iter().zip(first.best_d.into_iter().zip(first.best_j)).enumerate()
        {
            for part in &rest {
                selector.absorb(&part.selectors[i]);
                let (cd, cj) = (part.best_d[i], part.best_j[i]);
                if cd < bd || (cd == bd && cj < bj) {
                    bd = cd;
                    bj = cj;
                }
            }
            let row = selector.into_row(base_len);
            let entries: Vec<(u32, u64)> =
                row.entries.iter().map(|e| (e.j, e.rho_base.to_bits())).collect();
            out.push((bd.to_bits(), bj, entries));
        }
        out
    }

    /// The kernel against the pre-kernel scalar walk: byte-identical
    /// selectors and bests for every available lane level and several
    /// worker counts, despite the blocked partitioning, register tiling,
    /// and offer prefilter.
    #[test]
    fn kernel_is_byte_identical_to_the_scalar_reference() {
        for (series, l) in [
            (gen::random_walk(400, 11), 16usize),
            (gen::ecg(500, &gen::EcgConfig::default(), 5), 32),
            (gen::sine_mix(300, &[(30.0, 1.0)], 0.05, 9), 12),
        ] {
            let engine = StompEngine::new(&series, l).unwrap();
            assert!(!engine.has_flat_windows(), "kernel contract");
            let first_diag = l.div_ceil(4) + 1;
            for workers in [1usize, 2, 3, 8] {
                let reference: Vec<Stage1Part> = (0..workers)
                    .map(|w| reference_walk(&engine, first_diag, w, workers, 4))
                    .collect();
                let want = merged(reference, l);
                for level in test_levels() {
                    let kernel: Vec<Stage1Part> = (0..workers)
                        .map(|w| stage1_walk(&engine, first_diag, w, workers, 4, level))
                        .collect();
                    assert_eq!(
                        merged(kernel, l),
                        want,
                        "kernel diverged at l={l}, workers={workers}, level={level:?}"
                    );
                }
            }
        }
    }

    /// Tile-boundary shapes: every remainder count of diagonals per tile
    /// (1..=2W−1 for the widest tile, i.e. 1..=15 at width 8) and window
    /// sizes straddling tile columns. `first_diag` is swept so the
    /// worker's share leaves exactly `r` ragged diagonals.
    #[test]
    fn tile_remainders_match_the_reference() {
        let series = gen::random_walk(120, 7);
        for l in [8usize, 12] {
            let engine = StompEngine::new(&series, l).unwrap();
            let m = engine.num_windows();
            // Sweep first_diag so m − first_diag mod 2W hits 0..=15 for
            // both widths.
            for first_diag in 1..=(l + 9).min(m - 1) {
                let reference = merged(vec![reference_walk(&engine, first_diag, 0, 1, 3)], l);
                for level in test_levels() {
                    let part = stage1_walk(&engine, first_diag, 0, 1, 3, level);
                    assert_eq!(
                        merged(vec![part], l),
                        reference,
                        "diverged at l={l}, first_diag={first_diag}, level={level:?} \
                         (remainder {})",
                        (m - first_diag) % (2 * level.width())
                    );
                }
            }
        }
    }

    /// Deterministic pseudo-random values with sign variety and a few
    /// planted corner cases (`−0.0`, huge magnitudes).
    fn pseudo_values(n: usize, seed: u64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                (h % 2000) as f64 / 100.0 - 10.0
            })
            .collect();
        if n > 8 {
            v[3] = -0.0;
            v[7] = 1e150;
        }
        v
    }

    /// [`advance_entry_dots`] against the scalar per-entry loop:
    /// byte-identical on every lane level, including out-of-range
    /// candidates (`j >= limit` must keep `src`'s exact bits — `−0.0`
    /// included) and ragged tails.
    #[test]
    fn entry_dot_advance_matches_the_scalar_loop() {
        let t_next = pseudo_values(500, 17);
        for len in [1usize, 3, 4, 7, 8, 11, 64, 129] {
            let j: Vec<u32> = (0..len)
                .map(|e| {
                    let h = (e as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
                    (h % 600) as u32 // some beyond limit
                })
                .collect();
            let mut src = pseudo_values(len, 23);
            if len > 2 {
                src[1] = -0.0;
                src[2] = f64::INFINITY; // overflowed dot, must survive verbatim
            }
            for limit in [0u32, 1, 250, 500] {
                let head = 1.75f64;
                let mut expect = vec![0.0f64; len];
                for e in 0..len {
                    expect[e] = if j[e] < limit {
                        head.mul_add(t_next[j[e] as usize], src[e])
                    } else {
                        src[e]
                    };
                }
                for level in test_levels() {
                    let _g = crate::testkit::force_level(level);
                    let mut dst = vec![0.0f64; len];
                    advance_entry_dots(head, &t_next, &j, limit, &src, &mut dst);
                    for (e, (a, b)) in dst.iter().zip(&expect).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "entry {e} diverged at len={len} limit={limit} {level:?}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// The streaming shift kernels against the scalar reverse loops they
    /// replace: byte-identical in-place results for both the fused
    /// (extend) and the add (append) form, across ragged lengths and
    /// every lane level.
    #[test]
    fn streaming_shift_kernels_match_the_scalar_reverse_loops() {
        let l = 9usize;
        for m in [1usize, 2, 4, 5, 8, 9, 17, 31, 130] {
            let t = pseudo_values(m + l - 1 + 8, 5);
            let cross: Vec<f64> = t.iter().map(|&x| 0.37 * x).collect();
            let (v, dropped) = (t[m + l - 2], t[m - 1]);

            let base = pseudo_values(m, 99);
            let mut expect_ext = base.clone();
            for j in (1..m).rev() {
                expect_ext[j] = v.mul_add(t[j + l - 1], expect_ext[j - 1] - dropped * t[j - 1]);
            }
            let mut expect_app = base.clone();
            for j in (1..m).rev() {
                expect_app[j] = cross[j + l - 1] + (expect_app[j - 1] - dropped * t[j - 1]);
            }

            for level in test_levels() {
                let _g = crate::testkit::force_level(level);
                let mut got = base.clone();
                advance_dots_extend(v, dropped, &t, l, &mut got);
                assert!(
                    got.iter().zip(&expect_ext).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "extend shift diverged at m={m} {level:?}: {got:?} vs {expect_ext:?}"
                );

                let mut got = base.clone();
                advance_dots_append(&cross, dropped, &t, l, &mut got);
                assert!(
                    got.iter().zip(&expect_app).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "append shift diverged at m={m} {level:?}: {got:?} vs {expect_app:?}"
                );
            }
        }
    }

    /// Tiny triangles: every ragged shape (fewer diagonals than lanes,
    /// one-cell diagonals) goes through the remainder paths.
    #[test]
    fn ragged_edges_match_the_reference() {
        let series = gen::random_walk(40, 3);
        for l in [4usize, 6, 8] {
            let engine = StompEngine::new(&series, l).unwrap();
            let m = engine.num_windows();
            for first_diag in [1usize, 2, m.saturating_sub(3).max(1), m.saturating_sub(1).max(1)] {
                if first_diag >= m {
                    continue;
                }
                for workers in [1usize, 2, 5] {
                    let reference: Vec<Stage1Part> = (0..workers)
                        .map(|w| reference_walk(&engine, first_diag, w, workers, 2))
                        .collect();
                    let want = merged(reference, l);
                    for level in test_levels() {
                        let kernel: Vec<Stage1Part> = (0..workers)
                            .map(|w| stage1_walk(&engine, first_diag, w, workers, 2, level))
                            .collect();
                        assert_eq!(
                            merged(kernel, l),
                            want,
                            "diverged at l={l}, first_diag={first_diag}, workers={workers}, \
                             {level:?}"
                        );
                    }
                }
            }
        }
    }

    /// The `idx32` hard-assert: a mocked dimension at the u32 boundary
    /// must panic loudly instead of wrapping — in release builds too.
    #[test]
    fn idx32_asserts_instead_of_wrapping() {
        assert_eq!(idx32(0), 0);
        assert_eq!(idx32(u32::MAX as usize - 1), u32::MAX - 1);
        let err = std::panic::catch_unwind(|| idx32(u32::MAX as usize)).unwrap_err();
        let msg = err.downcast_ref::<String>().map(String::as_str).unwrap_or_default();
        assert!(msg.contains("exceeds the u32 profile index space"), "unexpected panic: {msg}");
        assert!(std::panic::catch_unwind(|| idx32(usize::MAX)).is_err());
    }
}
