//! The SIMD kernels of the suite: the stage-1 diagonal walk (a 4-wide,
//! FMA-based rewrite of VALMOD's hottest loop) plus the shared dot-product
//! *advance* lanes — [`advance_entry_dots`] for the pipelined stage-2
//! length steps, and [`advance_dots_extend`] / [`advance_dots_append`],
//! the same 256-bit recurrence machinery reused by the streaming engine's
//! per-append shifts. All dispatches honor the `VALMOD_FORCE_PORTABLE`
//! knob ([`valmod_fft::force_portable`]), and every packed path is
//! byte-identical to its portable fallback by the mul-then-sub discipline
//! described below.
//!
//! Stage 1 walks every diagonal of the QT matrix at `ℓmin`, and per cell
//! does one fused multiply-add (the dot-product recurrence), one
//! correlation/distance conversion, two best-so-far compares and two
//! top-`p` selector offers. On the paper's workloads this is ~90% of
//! end-to-end time, so this module rewrites the walk to process **four
//! adjacent diagonals per iteration**:
//!
//! * the four dot products update with one (vectorizable) fused
//!   multiply-add each — four independent recurrence chains, which is
//!   exactly the shape out-of-order FMA units want;
//! * all candidate loads (`t[j−1]`, `t[j+ℓ−1]`, `means[j]`, `stds[j]`,
//!   the per-row bests of rows `j..j+4`) become contiguous 4-lane loads,
//!   because the four diagonals are *adjacent* (`j = i + k0 + c`);
//! * the correlation, distance, and compare/select steps run branchless
//!   across the four lanes;
//! * the two [`TopRhoSelector`] offers per cell are prefiltered against
//!   the selector's current rejection threshold
//!   ([`TopRhoSelector::threshold`]) — after warm-up almost every
//!   candidate fails the threshold and costs one compare plus one
//!   counter add instead of a full offer.
//!
//! # Bit-identity
//!
//! The kernel produces **byte-identical** results to the scalar
//! cell-at-a-time walk (and hence to the engine as it existed before this
//! module), for every thread count and batch width, because
//!
//! 1. every cell's arithmetic is the *same expression tree* as the scalar
//!    path (the per-row hoists `ℓμᵢ`, `ℓσᵢ`, `2ℓ` keep the original
//!    association order), evaluated in IEEE-754 double precision either
//!    way — vector lanes round exactly like scalars, and `mul_add` is a
//!    fused multiply-add on both paths;
//! 2. grouping cells into 4-lane rows only changes the *order* in which
//!    candidates reach the per-row reductions, and both reductions are
//!    order-independent: the per-row best uses the total order
//!    "(distance asc, neighbor offset asc)" and the selector's kept set
//!    is a pure function of the offered set under "(ρ desc, offset asc)"
//!    (see [`crate::partial`]);
//! 3. the prefilter only skips offers the selector is guaranteed to
//!    reject, while keeping the offered count exact
//!    ([`TopRhoSelector::count_rejected`]);
//! 4. the runtime-dispatched AVX2+FMA instantiation compiles the *same
//!    Rust code* as the portable fallback — dispatch selects an
//!    instruction encoding, never an algorithm.
//!
//! The existing byte-equality proptests
//! (`thread_count_never_changes_results`,
//! `discord_thread_count_never_changes_results`,
//! `streaming_valmod_equals_batch`) double as the kernel's correctness
//! harness, and `tests/cross_engine.rs` pins the kernel against the
//! closure-based scalar walk directly.
//!
//! # Vectorization notes
//!
//! The two pure-math steps (dot-product recurrence, ρ/d conversion) have
//! an explicit 256-bit `core::arch` implementation ([`packed`]) selected
//! by the `PACKED` const parameter under the `walk_avx2` instantiation;
//! the branchy steps (bests, offers) stay shared portable code. The
//! portable `[f64; 4]` fallback compiles to four *scalar* fused ops per
//! step (LLVM unrolls but does not SLP-pack the divide/sqrt chain under
//! generic tuning — verified with `objdump -d` on the release binary,
//! which shows `vfmadd231sd` ×4 on the fallback and `vfmadd132pd` /
//! `vdivpd` / `vsqrtpd` / `vmaxpd` / `vminpd` on ymm registers inside
//! `walk_avx2`); that is why the packed path is explicit rather than
//! autovectorized. Scalar `mul_add` on non-FMA hardware lowers to a libm
//! `fma` call — slower, but bit-identical, and no slower than the
//! pre-kernel engine, which used `mul_add` per cell already.

#![deny(unsafe_op_in_unsafe_fn)]

use valmod_mp::stomp::StompEngine;

use crate::partial::TopRhoSelector;

/// Diagonals processed per block iteration. Four f64 lanes fill one
/// 256-bit vector register — the sweet spot for AVX2/FMA; AVX-512
/// machines still win from the contiguous loads and halved loop overhead.
pub(crate) const LANES: usize = 4;

/// One stage-1 worker's partition result: per-row top-`p` selectors and
/// per-row bests in structure-of-arrays form (`u32::MAX` = no best yet),
/// merged row-wise by `algo::stage_one` under the usual total orders.
pub(crate) struct Stage1Part {
    /// Per-row top-`p` candidate selectors.
    pub selectors: Vec<TopRhoSelector>,
    /// Per-row best distance (`INFINITY` = none seen).
    pub best_d: Vec<f64>,
    /// Per-row best neighbor offset (`u32::MAX` = none seen).
    pub best_j: Vec<u32>,
}

impl Stage1Part {
    /// Empty worker state for `m` rows with top-`p` capacity.
    pub(crate) fn new(m: usize, profile_size: usize) -> Self {
        Self {
            selectors: (0..m).map(|_| TopRhoSelector::new(profile_size)).collect(),
            best_d: vec![f64::INFINITY; m],
            best_j: vec![u32::MAX; m],
        }
    }
}

/// Narrows a subsequence offset to the `u32` the SoA state stores.
/// Profiles beyond `u32::MAX` windows are out of scope (the partial
/// profile entries store `u32` offsets already), so this is a hard assert
/// rather than a debug one: a ≥ 2^32-window series must fail loudly, not
/// silently wrap offsets in release builds. The check is one predictable
/// compare per row batch / remainder cell — noise next to the sqrt and
/// divides it sits behind.
#[inline]
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn idx32(j: usize) -> u32 {
    assert!(j < u32::MAX as usize, "subsequence offset {j} exceeds the u32 profile index space");
    j as u32
}

/// `clamp(raw, −1, 1)` with the exact select semantics of the packed
/// `vmaxpd`/`vminpd` pair: `max(a, b) = if a > b { a } else { b }`, then
/// `min` likewise. For every non-NaN input this is `f64::clamp`; for a
/// NaN input — reachable when huge (~1e170) but finite samples overflow
/// the dot products to `inf` and the numerator becomes `inf − inf` — it
/// lands on `−1.0`, matching what the x86 min/max convention produces in
/// the AVX2 lanes. One shared definition across the scalar remainder,
/// the portable lanes, and (by construction) the packed lanes is what
/// keeps the dispatch bit-identical in the NaN corner too, where
/// `f64::clamp` (NaN-propagating) would diverge.
#[inline(always)]
fn clamp_rho(raw: f64) -> f64 {
    let lo = if raw > -1.0 { raw } else { -1.0 };
    if lo < 1.0 {
        lo
    } else {
        1.0
    }
}

/// Read-only inputs of one worker's walk.
struct Ctx<'a> {
    /// Mean-shifted series values.
    t: &'a [f64],
    /// `QT(0, k)` — the start of every diagonal.
    first_row: &'a [f64],
    means: &'a [f64],
    stds: &'a [f64],
    l: usize,
    m: usize,
    /// `ℓ` as f64.
    lf: f64,
    /// `2ℓ` as f64 (hoisted with the original association `2.0 * lf`).
    two_lf: f64,
}

/// Mutable per-worker state: the output part plus the selector rejection
/// thresholds mirrored as a flat array the prefilter can load cheaply.
struct WalkState {
    part: Stage1Part,
    thresh: Vec<f64>,
}

/// Walks this worker's share of the upper-triangle diagonals at the base
/// length, four adjacent diagonals per iteration, producing the worker's
/// selectors and bests. Blocks of [`LANES`] consecutive diagonals are
/// dealt round-robin: worker `w` of `num_workers` takes blocks `w, w +
/// num_workers, …` starting at `first_diag`. Any partitioning yields the
/// same merged result (see the module docs), so the blocking is purely a
/// locality/SIMD choice.
///
/// Caller contract: no flat (σ ≈ 0) window exists at this length —
/// `algo::stage_one` routes those series to the scalar distance-space
/// walk instead.
pub(crate) fn stage1_walk(
    engine: &StompEngine,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    profile_size: usize,
) -> Stage1Part {
    let m = engine.num_windows();
    let l = engine.window();
    let lf = l as f64;
    let ctx = Ctx {
        t: engine.values(),
        first_row: engine.first_row(),
        means: engine.means(),
        stds: engine.stds(),
        l,
        m,
        lf,
        two_lf: 2.0 * lf,
    };
    let mut state =
        WalkState { part: Stage1Part::new(m, profile_size), thresh: vec![f64::NEG_INFINITY; m] };
    walk(&ctx, first_diag, w, num_workers, &mut state);
    state.part
}

/// Runtime dispatch: one feature check per worker walk (with the
/// `VALMOD_FORCE_PORTABLE` override, see [`valmod_fft::force_portable`]),
/// then the whole diagonal share runs inside the widest available
/// instantiation.
fn walk(ctx: &Ctx<'_>, first_diag: usize, w: usize, num_workers: usize, state: &mut WalkState) {
    #[cfg(target_arch = "x86_64")]
    {
        if packed_available() {
            // SAFETY: the required CPU features were verified at runtime
            // by `packed_available`.
            return unsafe { walk_avx2(ctx, first_diag, w, num_workers, state) };
        }
    }
    walk_impl::<false>(ctx, first_diag, w, num_workers, state);
}

/// The AVX2+FMA instantiation of [`walk_impl`]: the 4-lane math steps go
/// through the explicit `core::arch` intrinsics of [`packed`]; everything
/// else (bests, offers, tails) is the same shared code as the portable
/// path.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn walk_avx2(
    ctx: &Ctx<'_>,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    state: &mut WalkState,
) {
    walk_impl::<true>(ctx, first_diag, w, num_workers, state);
}

/// Body shared by every instantiation; `PACKED` selects the explicit
/// 256-bit math steps (only ever `true` under [`walk_avx2`]).
#[inline(always)]
fn walk_impl<const PACKED: bool>(
    ctx: &Ctx<'_>,
    first_diag: usize,
    w: usize,
    num_workers: usize,
    state: &mut WalkState,
) {
    let m = ctx.m;
    let stride = num_workers * LANES;
    let mut k0 = first_diag + w * LANES;
    while k0 < m {
        if k0 + LANES <= m {
            process_block::<PACKED>(ctx, k0, state);
        } else {
            // Ragged last block: fewer than LANES diagonals remain.
            for k in k0..m {
                let qt0 = ctx.first_row[k];
                process_cell(ctx, 0, k, qt0, state);
                tail_scalar(ctx, k, 1, qt0, state);
            }
        }
        k0 += stride;
    }
}

/// Advances the four dot products by one row: per lane,
/// `qt = t_head·t[j+ℓ−1] + (qt − t_drop·t[j−1])` with the multiply-add
/// fused and the drop product rounded separately — exactly the scalar
/// recurrence's rounding.
#[inline(always)]
fn advance_qt<const PACKED: bool>(
    t_head: f64,
    t_drop: f64,
    tj_head: &[f64],
    tj_drop: &[f64],
    qt: &mut [f64; LANES],
) {
    #[cfg(target_arch = "x86_64")]
    if PACKED {
        // SAFETY: `PACKED` is only instantiated `true` by `walk_avx2` and
        // by `advance_dots_extend`, both of which run only after runtime
        // AVX2+FMA detection.
        unsafe { packed::advance_qt(t_head, t_drop, tj_head, tj_drop, qt) };
        return;
    }
    for c in 0..LANES {
        qt[c] = t_head.mul_add(tj_head[c], qt[c] - t_drop * tj_drop[c]);
    }
}

/// Converts the four dot products of one row into correlations and
/// distances: `ρ = clamp((qt − ℓμᵢ·μⱼ) / (ℓσᵢ·σⱼ))`,
/// `d = sqrt(max(2ℓ·(1 − ρ), 0))` — the scalar expression tree per lane.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rho_d<const PACKED: bool>(
    a_i: f64,
    s_i: f64,
    two_lf: f64,
    means_j: &[f64],
    stds_j: &[f64],
    qt: &[f64; LANES],
    rho: &mut [f64; LANES],
    d: &mut [f64; LANES],
) {
    #[cfg(target_arch = "x86_64")]
    if PACKED {
        // SAFETY: as in `advance_qt` — `true` only under `walk_avx2`.
        unsafe { packed::rho_d(a_i, s_i, two_lf, means_j, stds_j, qt, rho, d) };
        return;
    }
    for c in 0..LANES {
        rho[c] = clamp_rho((qt[c] - a_i * means_j[c]) / (s_i * stds_j[c]));
        d[c] = (two_lf * (1.0 - rho[c])).max(0.0).sqrt();
    }
}

/// One full block: diagonals `k0 .. k0 + LANES`, all four lanes live for
/// rows `0 .. m − k0 − LANES + 1`, then per-lane scalar tails.
#[inline(always)]
fn process_block<const PACKED: bool>(ctx: &Ctx<'_>, k0: usize, state: &mut WalkState) {
    let (t, l, m) = (ctx.t, ctx.l, ctx.m);
    let mut qt = [0.0f64; LANES];
    qt.copy_from_slice(&ctx.first_row[k0..k0 + LANES]);
    process_row::<PACKED>(ctx, 0, k0, &qt, state);

    // Rows where all four diagonals are still inside the triangle: lane c
    // ends at row m − (k0 + c), so the shortest lane (c = LANES − 1)
    // bounds the vector region.
    let full_rows = m - (k0 + LANES - 1);
    for i in 1..full_rows {
        let j0 = i + k0;
        advance_qt::<PACKED>(
            t[i + l - 1],
            t[i - 1],
            &t[j0 + l - 1..j0 + l - 1 + LANES],
            &t[j0 - 1..j0 - 1 + LANES],
            &mut qt,
        );
        process_row::<PACKED>(ctx, i, j0, &qt, state);
    }

    // Lane tails: lanes 0..LANES−1 outlive the vector region by
    // LANES−1−c rows each; finish them with the scalar cell.
    for (c, &qt_c) in qt.iter().enumerate().take(LANES - 1) {
        tail_scalar(ctx, k0 + c, full_rows, qt_c, state);
    }
}

/// Continues diagonal `k` from row `start_i` (with `qt` holding the value
/// at `start_i − 1`, or `QT(0, k)` when `start_i` is 1) to its end.
#[inline(always)]
fn tail_scalar(ctx: &Ctx<'_>, k: usize, start_i: usize, mut qt: f64, state: &mut WalkState) {
    let (t, l) = (ctx.t, ctx.l);
    for i in start_i..ctx.m - k {
        let j = i + k;
        qt = t[i + l - 1].mul_add(t[j + l - 1], qt - t[i - 1] * t[j - 1]);
        process_cell(ctx, i, j, qt, state);
    }
}

/// Four cells of one row: `(i, j0 .. j0 + LANES)`. The ρ/d conversion and
/// both best updates run branchless across the lanes; selector offers are
/// prefiltered per lane.
#[inline(always)]
fn process_row<const PACKED: bool>(
    ctx: &Ctx<'_>,
    i: usize,
    j0: usize,
    qt: &[f64; LANES],
    state: &mut WalkState,
) {
    // Hoists preserve the scalar association order:
    // ℓμᵢμⱼ = (ℓμᵢ)·μⱼ and ℓσᵢσⱼ = (ℓσᵢ)·σⱼ.
    let a_i = ctx.lf * ctx.means[i];
    let s_i = ctx.lf * ctx.stds[i];
    let mut rho = [0.0f64; LANES];
    let mut d = [0.0f64; LANES];
    rho_d::<PACKED>(
        a_i,
        s_i,
        ctx.two_lf,
        &ctx.means[j0..j0 + LANES],
        &ctx.stds[j0..j0 + LANES],
        qt,
        &mut rho,
        &mut d,
    );

    let part = &mut state.part;
    // Per-row best for row i: reduce the four lanes under
    // "(d asc, j asc)" — strict < keeps the earliest (smallest-j) lane on
    // ties — then fold into the running best under the same order.
    let (mut bd, mut bc) = (d[0], 0usize);
    for (c, &dc) in d.iter().enumerate().skip(1) {
        if dc < bd {
            bd = dc;
            bc = c;
        }
    }
    let bj = idx32(j0 + bc);
    if bd < part.best_d[i] || (bd == part.best_d[i] && bj < part.best_j[i]) {
        part.best_d[i] = bd;
        part.best_j[i] = bj;
    }

    // Per-row bests for rows j0..j0+LANES (candidate i), as branchless
    // selects over contiguous lanes.
    let iu = idx32(i);
    for (c, &dc) in d.iter().enumerate() {
        let j = j0 + c;
        let take = dc < part.best_d[j] || (dc == part.best_d[j] && iu < part.best_j[j]);
        part.best_d[j] = if take { dc } else { part.best_d[j] };
        part.best_j[j] = if take { iu } else { part.best_j[j] };
    }

    // Row-side offers: candidates j0..j0+LANES into row i's selector. One
    // vectorizable max prefilters the common all-rejected case.
    let mut t_i = state.thresh[i];
    let max_rho = rho.iter().fold(f64::NEG_INFINITY, |a, &r| if r > a { r } else { a });
    if max_rho < t_i {
        part.selectors[i].count_rejected(LANES);
    } else {
        for c in 0..LANES {
            if rho[c] < t_i {
                part.selectors[i].count_rejected(1);
            } else {
                part.selectors[i].offer(j0 + c, rho[c], qt[c]);
                t_i = part.selectors[i].threshold();
            }
        }
        state.thresh[i] = t_i;
    }

    // Column-side offers: candidate i into each of rows j0..j0+LANES.
    for c in 0..LANES {
        let j = j0 + c;
        if rho[c] < state.thresh[j] {
            part.selectors[j].count_rejected(1);
        } else {
            part.selectors[j].offer(i, rho[c], qt[c]);
            state.thresh[j] = part.selectors[j].threshold();
        }
    }
}

/// One scalar cell `(i, j)` — the remainder path. Bit-identical to a lane
/// of [`process_row`]: same expression tree, same total orders, same
/// prefilter contract.
#[inline(always)]
fn process_cell(ctx: &Ctx<'_>, i: usize, j: usize, qt: f64, state: &mut WalkState) {
    let rho = clamp_rho(
        (qt - ctx.lf * ctx.means[i] * ctx.means[j]) / (ctx.lf * ctx.stds[i] * ctx.stds[j]),
    );
    let d = (ctx.two_lf * (1.0 - rho)).max(0.0).sqrt();

    let part = &mut state.part;
    let ju = idx32(j);
    if d < part.best_d[i] || (d == part.best_d[i] && ju < part.best_j[i]) {
        part.best_d[i] = d;
        part.best_j[i] = ju;
    }
    let iu = idx32(i);
    if d < part.best_d[j] || (d == part.best_d[j] && iu < part.best_j[j]) {
        part.best_d[j] = d;
        part.best_j[j] = iu;
    }

    if rho < state.thresh[i] {
        part.selectors[i].count_rejected(1);
    } else {
        part.selectors[i].offer(j, rho, qt);
        state.thresh[i] = part.selectors[i].threshold();
    }
    if rho < state.thresh[j] {
        part.selectors[j].count_rejected(1);
    } else {
        part.selectors[j].offer(i, rho, qt);
        state.thresh[j] = part.selectors[j].threshold();
    }
}

/// Whether packed (`core::arch`) paths may be used: AVX2+FMA present and
/// the `VALMOD_FORCE_PORTABLE` knob unset. One cached check per dispatch
/// site (see [`valmod_fft::force_portable`]).
#[inline]
fn packed_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !valmod_fft::force_portable()
            && std::is_x86_feature_detected!("avx2")
            && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Advances the stored partial-profile dot products of one row from length
/// `ℓ` to `ℓ+1`: for each entry `e`,
///
/// ```text
/// dst[e] = if j[e] < limit { head.mul_add(t_next[j[e]], src[e]) } else { src[e] }
/// ```
///
/// where `head = t[i + ℓ]`, `t_next = &t[ℓ..]` (so `t_next[j] = t[j + ℓ]`)
/// and `limit` is the window count at `ℓ+1` (entries whose candidate no
/// longer fits keep their last dot, exactly as the scalar per-entry loop
/// left them). `src` and `dst` may be the same buffer contents-wise but
/// must be distinct slices (the double-buffered stage-2 scratch always
/// passes the shadow as `dst`).
///
/// The packed path runs four entries per iteration: the `j` guard becomes
/// an unsigned lane compare, `t_next[j]` a masked gather (masked-off lanes
/// perform no memory access), the advance a single `vfmadd`, and the
/// keep-else branch a `blendv` that copies `src`'s bits verbatim — so the
/// result is byte-identical to the scalar loop, `−0.0` and overflowed
/// (±∞) dots included. Falls back to the scalar loop on non-AVX2 CPUs,
/// under `VALMOD_FORCE_PORTABLE`, and for `limit` beyond the gather's
/// signed-index space.
///
/// # Panics
///
/// Panics when `j`/`src`/`dst` lengths differ, or when `limit` exceeds
/// `t_next.len()` — every in-range lane must have a head product to
/// gather (the scalar path would hit the same indexing panic lane by
/// lane; asserting it up front keeps the packed gather in bounds from
/// safe code).
pub fn advance_entry_dots(
    head: f64,
    t_next: &[f64],
    j: &[u32],
    limit: u32,
    src: &[f64],
    dst: &mut [f64],
) {
    assert_eq!(j.len(), src.len());
    assert_eq!(j.len(), dst.len());
    assert!(
        limit as usize <= t_next.len(),
        "limit {limit} exceeds the {} head products available",
        t_next.len()
    );
    #[cfg(target_arch = "x86_64")]
    {
        if packed_available() && i32::try_from(limit).is_ok() {
            // SAFETY: AVX2+FMA verified by `packed_available`; `limit`
            // fits the gather's signed 32-bit index space, and every
            // gathered lane has `j < limit <= t_next.len()` (asserted
            // above), so the gather stays in bounds.
            unsafe { packed::advance_entry_dots(head, t_next, j, limit, src, dst) };
            return;
        }
    }
    for e in 0..j.len() {
        dst[e] = if j[e] < limit { head.mul_add(t_next[j[e] as usize], src[e]) } else { src[e] };
    }
}

/// The streaming engine's in-place per-append dot-product shift
/// (fused-multiply-add form, used for batched appends):
///
/// ```text
/// qt[j] = v.mul_add(t[j + l − 1], qt[j − 1] − dropped · t[j − 1])   for j in (1..qt.len()).rev()
/// ```
///
/// This is the stage-1 kernel's diagonal recurrence ([`advance_qt`])
/// applied to a shifted, contiguous row, so the packed path literally
/// reuses those lanes: blocks of four are staged through a register copy
/// (read `qt[j−1..j+3]`, advance, write `qt[j..j+4]`), processed from the
/// high end down exactly like the scalar reverse loop, hence
/// byte-identical to it.
///
/// # Panics
///
/// Panics if `t` is shorter than `qt.len() + l − 1` (the highest head
/// index read).
pub fn advance_dots_extend(v: f64, dropped: f64, t: &[f64], l: usize, qt: &mut [f64]) {
    let m = qt.len();
    if m <= 1 {
        return;
    }
    assert!(t.len() >= m + l - 1, "series too short for the append recurrence");
    let mut hi = m;
    if packed_available() {
        while hi > LANES {
            let j0 = hi - LANES;
            let mut lane = [0.0f64; LANES];
            lane.copy_from_slice(&qt[j0 - 1..j0 - 1 + LANES]);
            advance_qt::<true>(v, dropped, &t[j0 + l - 1..], &t[j0 - 1..], &mut lane);
            qt[j0..j0 + LANES].copy_from_slice(&lane);
            hi = j0;
        }
    }
    for j in (1..hi).rev() {
        qt[j] = v.mul_add(t[j + l - 1], qt[j - 1] - dropped * t[j - 1]);
    }
}

/// The streaming engine's in-place per-append dot-product shift (add
/// form, used for single appends, where the head products come from the
/// shared cross row `cross[x] = v·t[x]`):
///
/// ```text
/// qt[j] = cross[j + l − 1] + (qt[j − 1] − dropped · t[j − 1])   for j in (1..qt.len()).rev()
/// ```
///
/// Same blocked-backward in-place scheme as [`advance_dots_extend`]; the
/// packed lanes evaluate the identical `add(cross, sub(q, mul(dropped,
/// t)))` expression tree, so the result is byte-identical to the scalar
/// reverse loop. (The add form rounds the head product separately — that
/// is the *existing* single-append semantics, kept as-is; this function
/// only vectorizes it.)
///
/// # Panics
///
/// Panics if `t` or `cross` is shorter than `qt.len() + l − 1`.
pub fn advance_dots_append(cross: &[f64], dropped: f64, t: &[f64], l: usize, qt: &mut [f64]) {
    let m = qt.len();
    if m <= 1 {
        return;
    }
    assert!(t.len() >= m + l - 1, "series too short for the append recurrence");
    assert!(cross.len() >= m + l - 1, "cross row too short for the append recurrence");
    let mut hi = m;
    #[cfg(target_arch = "x86_64")]
    {
        if packed_available() {
            while hi > LANES {
                let j0 = hi - LANES;
                let mut lane = [0.0f64; LANES];
                lane.copy_from_slice(&qt[j0 - 1..j0 - 1 + LANES]);
                // SAFETY: AVX2 verified by `packed_available`; all slices
                // span at least LANES elements by the asserts above.
                unsafe {
                    packed::advance_add(&cross[j0 + l - 1..], dropped, &t[j0 - 1..], &mut lane);
                }
                qt[j0..j0 + LANES].copy_from_slice(&lane);
                hi = j0;
            }
        }
    }
    for j in (1..hi).rev() {
        qt[j] = cross[j + l - 1] + (qt[j - 1] - dropped * t[j - 1]);
    }
}

/// The explicit 256-bit math steps of the AVX2+FMA instantiation.
///
/// Each function is the *same expression tree* as its portable
/// counterpart, op for op: `vmulpd`/`vsubpd` where the scalar rounds a
/// product before subtracting, `vfmadd` only where the scalar uses
/// `mul_add`, `vminpd(vmaxpd(·))` for [`super::clamp_rho`] (which is
/// *defined* as the scalar transcription of this select pair, so even a
/// NaN correlation — overflowing dot products, see its docs — clamps to
/// `−1.0` on every path), and `vmaxpd(·, 0)` for `.max(0.0)` (the operand is
/// never −0.0: `1 − ρ ≥ +0.0` after clamping, and a positive times +0.0
/// stays +0.0). Every op is exactly rounded IEEE-754, so lanes equal the
/// scalar path bit for bit.
#[cfg(target_arch = "x86_64")]
mod packed {
    use super::LANES;
    use core::arch::x86_64::{
        __m128i, _mm256_add_pd, _mm256_blendv_pd, _mm256_castsi256_pd, _mm256_cvtepi32_epi64,
        _mm256_div_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_mask_i32gather_pd, _mm256_max_pd,
        _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_sqrt_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm_cmplt_epi32, _mm_loadu_si128, _mm_set1_epi32,
        _mm_xor_si128,
    };

    /// Packed lane step of [`super::advance_qt`].
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    pub(super) fn advance_qt(
        t_head: f64,
        t_drop: f64,
        tj_head: &[f64],
        tj_drop: &[f64],
        qt: &mut [f64; LANES],
    ) {
        let heads = &tj_head[..LANES];
        let drops = &tj_drop[..LANES];
        // SAFETY: every pointer spans exactly LANES f64s (asserted by the
        // reslices above); loadu/storeu carry no alignment requirement.
        unsafe {
            let q = _mm256_loadu_pd(qt.as_ptr());
            let dropped = _mm256_mul_pd(_mm256_set1_pd(t_drop), _mm256_loadu_pd(drops.as_ptr()));
            let acc = _mm256_sub_pd(q, dropped);
            let next =
                _mm256_fmadd_pd(_mm256_set1_pd(t_head), _mm256_loadu_pd(heads.as_ptr()), acc);
            _mm256_storeu_pd(qt.as_mut_ptr(), next);
        }
    }

    /// Packed lane step of [`super::advance_dots_append`]:
    /// `qt[c] = cross[c] + (qt[c] − dropped·t_drop[c])` — add, sub, mul,
    /// each exactly rounded, in the scalar expression's association.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    pub(super) fn advance_add(cross: &[f64], dropped: f64, t_drop: &[f64], qt: &mut [f64; LANES]) {
        let cross = &cross[..LANES];
        let drops = &t_drop[..LANES];
        // SAFETY: every pointer spans exactly LANES f64s (asserted by the
        // reslices above); loadu/storeu carry no alignment requirement.
        unsafe {
            let q = _mm256_loadu_pd(qt.as_ptr());
            let dropped = _mm256_mul_pd(_mm256_set1_pd(dropped), _mm256_loadu_pd(drops.as_ptr()));
            let acc = _mm256_sub_pd(q, dropped);
            let next = _mm256_add_pd(_mm256_loadu_pd(cross.as_ptr()), acc);
            _mm256_storeu_pd(qt.as_mut_ptr(), next);
        }
    }

    /// Packed body of [`super::advance_entry_dots`]: four entries per
    /// iteration — unsigned lane compare for the `j < limit` guard, masked
    /// gather for `t_next[j]` (masked-off lanes touch no memory), one
    /// `vfmadd`, and a `blendv` that keeps `src`'s exact bits on
    /// out-of-range lanes. Scalar remainder for the ragged tail.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA, and `limit <= i32::MAX` so
    /// every gathered (in-range) lane's index is non-negative after the
    /// gather's sign extension.
    #[target_feature(enable = "avx2,fma")]
    pub(super) fn advance_entry_dots(
        head: f64,
        t_next: &[f64],
        j: &[u32],
        limit: u32,
        src: &[f64],
        dst: &mut [f64],
    ) {
        let len = j.len();
        let head_v = _mm256_set1_pd(head);
        let bias = _mm_set1_epi32(i32::MIN);
        #[allow(clippy::cast_possible_wrap)]
        let limit_biased = _mm_set1_epi32((limit as i32).wrapping_add(i32::MIN));
        let mut e = 0;
        while e + LANES <= len {
            // SAFETY: `j[e..e+4]`/`src[e..e+4]`/`dst[e..e+4]` are in
            // bounds (`e + LANES <= len` and the wrapper asserts equal
            // lengths); the gather reads `t_next[j[c]]` only on lanes with
            // `j[c] < limit`, and the wrapper's caller passes `limit` no
            // larger than the valid window count, i.e. `t_next.len()`.
            unsafe {
                let jv = _mm_loadu_si128(j.as_ptr().add(e).cast::<__m128i>());
                // Unsigned `j < limit` via sign-bias + signed compare.
                let in_range = _mm_cmplt_epi32(_mm_xor_si128(jv, bias), limit_biased);
                let mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(in_range));
                let heads =
                    _mm256_mask_i32gather_pd::<8>(_mm256_setzero_pd(), t_next.as_ptr(), jv, mask);
                let src_v = _mm256_loadu_pd(src.as_ptr().add(e));
                let advanced = _mm256_fmadd_pd(head_v, heads, src_v);
                _mm256_storeu_pd(dst.as_mut_ptr().add(e), _mm256_blendv_pd(src_v, advanced, mask));
            }
            e += LANES;
        }
        for e in e..len {
            dst[e] =
                if j[e] < limit { head.mul_add(t_next[j[e] as usize], src[e]) } else { src[e] };
        }
    }

    /// Packed lane step of [`super::rho_d`].
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn rho_d(
        a_i: f64,
        s_i: f64,
        two_lf: f64,
        means_j: &[f64],
        stds_j: &[f64],
        qt: &[f64; LANES],
        rho: &mut [f64; LANES],
        d: &mut [f64; LANES],
    ) {
        let means_j = &means_j[..LANES];
        let stds_j = &stds_j[..LANES];
        // SAFETY: as in `advance_qt` — exact-length slices, unaligned ops.
        unsafe {
            let q = _mm256_loadu_pd(qt.as_ptr());
            let num = _mm256_sub_pd(
                q,
                _mm256_mul_pd(_mm256_set1_pd(a_i), _mm256_loadu_pd(means_j.as_ptr())),
            );
            let den = _mm256_mul_pd(_mm256_set1_pd(s_i), _mm256_loadu_pd(stds_j.as_ptr()));
            let raw = _mm256_div_pd(num, den);
            let clamped =
                _mm256_min_pd(_mm256_max_pd(raw, _mm256_set1_pd(-1.0)), _mm256_set1_pd(1.0));
            let scaled =
                _mm256_mul_pd(_mm256_set1_pd(two_lf), _mm256_sub_pd(_mm256_set1_pd(1.0), clamped));
            let dist = _mm256_sqrt_pd(_mm256_max_pd(scaled, _mm256_set1_pd(0.0)));
            _mm256_storeu_pd(rho.as_mut_ptr(), clamped);
            _mm256_storeu_pd(d.as_mut_ptr(), dist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    /// The pre-kernel scalar reference: the closure-based diagonal walk
    /// with per-cell offers and no prefilter, exactly as `stage_one`
    /// computed it before this module existed.
    fn reference_walk(
        engine: &StompEngine,
        first_diag: usize,
        w: usize,
        num_workers: usize,
        profile_size: usize,
    ) -> Stage1Part {
        let m = engine.num_windows();
        let (means, stds) = (engine.means(), engine.stds());
        let lf = engine.window() as f64;
        let mut part = Stage1Part::new(m, profile_size);
        engine.walk_diagonals(first_diag + w, num_workers, |i, j, qt| {
            let rho = ((qt - lf * means[i] * means[j]) / (lf * stds[i] * stds[j])).clamp(-1.0, 1.0);
            let d = (2.0 * lf * (1.0 - rho)).max(0.0).sqrt();
            part.selectors[i].offer(j, rho, qt);
            part.selectors[j].offer(i, rho, qt);
            let ju = idx32(j);
            if d < part.best_d[i] || (d == part.best_d[i] && ju < part.best_j[i]) {
                part.best_d[i] = d;
                part.best_j[i] = ju;
            }
            let iu = idx32(i);
            if d < part.best_d[j] || (d == part.best_d[j] && iu < part.best_j[j]) {
                part.best_d[j] = d;
                part.best_j[j] = iu;
            }
        });
        part
    }

    /// Comparable per-row state: best (distance bits, offset) plus the
    /// selector's kept entries as (offset, rho bits).
    type MergedRow = (u64, u32, Vec<(u32, u64)>);

    /// Merges worker parts row-wise under the engine's total orders,
    /// returning comparable per-row state.
    fn merged(mut parts: Vec<Stage1Part>, base_len: usize) -> Vec<MergedRow> {
        let rest = parts.split_off(1);
        let first = parts.pop().unwrap();
        let m = first.best_d.len();
        let mut out = Vec::with_capacity(m);
        for (i, (mut selector, (mut bd, mut bj))) in
            first.selectors.into_iter().zip(first.best_d.into_iter().zip(first.best_j)).enumerate()
        {
            for part in &rest {
                selector.absorb(&part.selectors[i]);
                let (cd, cj) = (part.best_d[i], part.best_j[i]);
                if cd < bd || (cd == bd && cj < bj) {
                    bd = cd;
                    bj = cj;
                }
            }
            let row = selector.into_row(base_len);
            let entries: Vec<(u32, u64)> =
                row.entries.iter().map(|e| (e.j, e.rho_base.to_bits())).collect();
            out.push((bd.to_bits(), bj, entries));
        }
        out
    }

    /// The kernel against the pre-kernel scalar walk: byte-identical
    /// selectors and bests for several worker counts, despite the blocked
    /// partitioning, lane grouping, and offer prefilter.
    #[test]
    fn kernel_is_byte_identical_to_the_scalar_reference() {
        for (series, l) in [
            (gen::random_walk(400, 11), 16usize),
            (gen::ecg(500, &gen::EcgConfig::default(), 5), 32),
            (gen::sine_mix(300, &[(30.0, 1.0)], 0.05, 9), 12),
        ] {
            let engine = StompEngine::new(&series, l).unwrap();
            assert!(!engine.has_flat_windows(), "kernel contract");
            let first_diag = l.div_ceil(4) + 1;
            for workers in [1usize, 2, 3, 8] {
                let kernel: Vec<Stage1Part> =
                    (0..workers).map(|w| stage1_walk(&engine, first_diag, w, workers, 4)).collect();
                let reference: Vec<Stage1Part> = (0..workers)
                    .map(|w| reference_walk(&engine, first_diag, w, workers, 4))
                    .collect();
                assert_eq!(
                    merged(kernel, l),
                    merged(reference, l),
                    "kernel diverged at l={l}, workers={workers}"
                );
            }
        }
    }

    /// Deterministic pseudo-random values with sign variety and a few
    /// planted corner cases (`−0.0`, huge magnitudes).
    fn pseudo_values(n: usize, seed: u64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                (h % 2000) as f64 / 100.0 - 10.0
            })
            .collect();
        if n > 8 {
            v[3] = -0.0;
            v[7] = 1e150;
        }
        v
    }

    /// [`advance_entry_dots`] against the scalar per-entry loop:
    /// byte-identical on every lane, including out-of-range candidates
    /// (`j >= limit` must keep `src`'s exact bits — `−0.0` included) and
    /// ragged tails.
    #[test]
    fn entry_dot_advance_matches_the_scalar_loop() {
        let t_next = pseudo_values(500, 17);
        for len in [1usize, 3, 4, 7, 64, 129] {
            let j: Vec<u32> = (0..len)
                .map(|e| {
                    let h = (e as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
                    (h % 600) as u32 // some beyond limit
                })
                .collect();
            let mut src = pseudo_values(len, 23);
            if len > 2 {
                src[1] = -0.0;
                src[2] = f64::INFINITY; // overflowed dot, must survive verbatim
            }
            for limit in [0u32, 1, 250, 500] {
                let head = 1.75f64;
                let mut expect = vec![0.0f64; len];
                for e in 0..len {
                    expect[e] = if j[e] < limit {
                        head.mul_add(t_next[j[e] as usize], src[e])
                    } else {
                        src[e]
                    };
                }
                let mut dst = vec![0.0f64; len];
                advance_entry_dots(head, &t_next, &j, limit, &src, &mut dst);
                for (e, (a, b)) in dst.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "entry {e} diverged at len={len} limit={limit}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// The streaming shift kernels against the scalar reverse loops they
    /// replace: byte-identical in-place results for both the fused
    /// (extend) and the add (append) form, across ragged lengths.
    #[test]
    fn streaming_shift_kernels_match_the_scalar_reverse_loops() {
        let l = 9usize;
        for m in [1usize, 2, 4, 5, 8, 31, 130] {
            let t = pseudo_values(m + l - 1 + 4, 5);
            let cross: Vec<f64> = t.iter().map(|&x| 0.37 * x).collect();
            let (v, dropped) = (t[m + l - 2], t[m - 1]);

            let base = pseudo_values(m, 99);
            let mut expect = base.clone();
            for j in (1..m).rev() {
                expect[j] = v.mul_add(t[j + l - 1], expect[j - 1] - dropped * t[j - 1]);
            }
            let mut got = base.clone();
            advance_dots_extend(v, dropped, &t, l, &mut got);
            assert!(
                got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "extend shift diverged at m={m}: {got:?} vs {expect:?}"
            );

            let mut expect = base.clone();
            for j in (1..m).rev() {
                expect[j] = cross[j + l - 1] + (expect[j - 1] - dropped * t[j - 1]);
            }
            let mut got = base;
            advance_dots_append(&cross, dropped, &t, l, &mut got);
            assert!(
                got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "append shift diverged at m={m}: {got:?} vs {expect:?}"
            );
        }
    }

    /// Tiny triangles: every ragged shape (fewer diagonals than lanes,
    /// one-cell diagonals) goes through the remainder paths.
    #[test]
    fn ragged_edges_match_the_reference() {
        let series = gen::random_walk(40, 3);
        for l in [4usize, 6, 8] {
            let engine = StompEngine::new(&series, l).unwrap();
            let m = engine.num_windows();
            for first_diag in [1usize, 2, m.saturating_sub(3).max(1), m.saturating_sub(1).max(1)] {
                if first_diag >= m {
                    continue;
                }
                for workers in [1usize, 2, 5] {
                    let kernel: Vec<Stage1Part> = (0..workers)
                        .map(|w| stage1_walk(&engine, first_diag, w, workers, 2))
                        .collect();
                    let reference: Vec<Stage1Part> = (0..workers)
                        .map(|w| reference_walk(&engine, first_diag, w, workers, 2))
                        .collect();
                    assert_eq!(
                        merged(kernel, l),
                        merged(reference, l),
                        "diverged at l={l}, first_diag={first_diag}, workers={workers}"
                    );
                }
            }
        }
    }
}
