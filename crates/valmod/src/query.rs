//! The typed query surface: one [`Query`]/[`Quality`] definition shared
//! by the library facade, the `valmod run/profile/stream` CLI flags, and
//! the serve protocol's request parsing.
//!
//! A [`Query`] is a [`ValmodConfig`] builder with a *quality tier*
//! attached:
//!
//! * [`Quality::Exact`] — the eager two-stage VALMOD run (the default);
//! * [`Quality::Anytime`] — stage 1 walks diagonal blocks in a seeded
//!   shuffled order across `budget` rounds, emitting an improving VALMAP
//!   preview per round ([`crate::anytime::AnytimePreview`]) and settling
//!   to the **byte-identical** exact output once every diagonal retires;
//! * [`Quality::Screen`] — a lower-bound-only triage tier: exact stage 1
//!   at `ℓmin`, then every longer length ranked by the admissible lower
//!   bound of [`crate::lb`] without any exact recomputation
//!   ([`crate::screen::screen_series`]).
//!
//! The per-layer knob spellings (`--quality` flags, the serve `preview`
//! verb) all parse through [`parse_quality`], so the tier vocabulary can
//! never drift between layers.

use std::sync::Arc;

use valmod_mp::WorkerPool;
use valmod_series::Result;

use crate::anytime::AnytimePreview;
use crate::config::ValmodConfig;
use crate::screen::ScreenReport;

/// Default number of anytime rounds when a budget is not spelled out
/// (`--quality anytime` without `:N`). Four rounds put the first preview
/// at ~25% of the stage-1 cells — under the repo's ≤30% time-to-first-
/// answer target — while keeping the settling overhead small.
pub const DEFAULT_ANYTIME_BUDGET: usize = 4;

/// Execution quality tier of a VALMOD run.
///
/// Every tier is safe to request anywhere a [`ValmodConfig`] is accepted:
/// `Exact` and `Anytime` produce the same [`crate::ValmodOutput`] bits
/// (anytime merely streams previews on the way), and `Screen` only
/// changes what [`Query::run`] returns — code paths that need a full
/// output (e.g. the streaming engine's snapshots) treat it as `Exact`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Quality {
    /// The eager exact run: all of stage 1, then every length step.
    #[default]
    Exact,
    /// Anytime stage 1: diagonal blocks in a seeded shuffled order,
    /// split into `budget` rounds with a VALMAP preview after each,
    /// settling to the byte-identical exact result.
    Anytime {
        /// Number of preview rounds stage 1 is split into (≥ 1). The
        /// first preview lands after roughly `1/budget` of the cells.
        budget: usize,
    },
    /// Lower-bound-only screening: rank lengths/offsets by the
    /// admissible bound, no exact extension.
    Screen,
}

impl std::fmt::Display for Quality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Quality::Exact => f.write_str("exact"),
            Quality::Anytime { budget } => write!(f, "anytime:{budget}"),
            Quality::Screen => f.write_str("screen"),
        }
    }
}

/// Parses a quality tier from its canonical spelling: `exact`,
/// `anytime`, `anytime:N` (N ≥ 1 rounds), or `screen`. This is the one
/// parser behind the CLI `--quality` flags and the serve protocol, so
/// every layer accepts exactly the same vocabulary.
///
/// # Errors
///
/// Returns a human-readable message naming the accepted spellings.
pub fn parse_quality(s: &str) -> std::result::Result<Quality, String> {
    match s {
        "exact" => Ok(Quality::Exact),
        "screen" => Ok(Quality::Screen),
        "anytime" => Ok(Quality::Anytime { budget: DEFAULT_ANYTIME_BUDGET }),
        _ => {
            if let Some(rest) = s.strip_prefix("anytime:") {
                match rest.parse::<usize>() {
                    Ok(budget) if budget >= 1 => Ok(Quality::Anytime { budget }),
                    _ => Err(format!("invalid anytime budget {rest:?} (need an integer >= 1)")),
                }
            } else {
                Err(format!(
                    "unknown quality {s:?} (expected exact, anytime, anytime:N, or screen)"
                ))
            }
        }
    }
}

/// What a [`Query`] run produced, by tier.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A full exact output — from the `Exact` tier, or from `Anytime`
    /// after it settled (byte-identical to the eager run).
    Exact(crate::ValmodOutput),
    /// The `Screen` tier's lower-bound ranking.
    Screen(ScreenReport),
}

impl QueryOutcome {
    /// The full output, when this outcome carries one.
    #[must_use]
    pub fn output(&self) -> Option<&crate::ValmodOutput> {
        match self {
            QueryOutcome::Exact(out) => Some(out),
            QueryOutcome::Screen(_) => None,
        }
    }

    /// The screening report, when this outcome carries one.
    #[must_use]
    pub fn screen(&self) -> Option<&ScreenReport> {
        match self {
            QueryOutcome::Exact(_) => None,
            QueryOutcome::Screen(report) => Some(report),
        }
    }
}

/// The builder that carries a [`ValmodConfig`] plus its [`Quality`] —
/// the typed query surface of the suite.
///
/// # Example
///
/// ```
/// use valmod_core::{Quality, Query};
/// use valmod_series::gen;
///
/// let series = gen::sine_mix(800, &[(60.0, 1.0)], 0.05, 1);
/// let outcome = Query::new(32, 40).k(3).quality(Quality::Exact).run(&series).unwrap();
/// let out = outcome.output().unwrap();
/// assert_eq!(out.per_length.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    config: ValmodConfig,
}

impl Query {
    /// A query over the length range `[l_min, l_max]` with paper-default
    /// parameters and the `Exact` tier.
    #[must_use]
    pub fn new(l_min: usize, l_max: usize) -> Self {
        Self { config: ValmodConfig::new(l_min, l_max) }
    }

    /// Wraps an existing configuration (its quality tier included).
    #[must_use]
    pub fn from_config(config: ValmodConfig) -> Self {
        Self { config }
    }

    /// Sets the number of motif pairs reported per length.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets `p`, the partial-distance-profile size.
    #[must_use]
    pub fn profile_size(mut self, p: usize) -> Self {
        self.config.profile_size = p;
        self
    }

    /// Sets the exclusion-zone denominator (`⌈ℓ/den⌉`).
    #[must_use]
    pub fn exclusion_den(mut self, den: usize) -> Self {
        self.config.exclusion_den = den;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Enables or disables the stage-2 software pipeline (results are
    /// byte-identical either way — a pure performance knob).
    #[must_use]
    pub fn pipeline(mut self, pipelined: bool) -> Self {
        self.config.stage2_pipeline = pipelined;
        self
    }

    /// Dispatches every parallel phase to `pool` instead of the
    /// process-wide global pool.
    #[must_use]
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.config = self.config.with_pool(pool);
        self
    }

    /// Sets the quality tier.
    #[must_use]
    pub fn quality(mut self, quality: Quality) -> Self {
        self.config.quality = quality;
        self
    }

    /// Sets the seed of the anytime tier's shuffled diagonal order.
    /// Results settle byte-identically for every seed; the seed only
    /// shapes the intermediate previews.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &ValmodConfig {
        &self.config
    }

    /// Consumes the builder, returning the configuration — the bridge to
    /// every API that still takes a [`ValmodConfig`].
    #[must_use]
    pub fn into_config(self) -> ValmodConfig {
        self.config
    }

    /// Runs the query, dispatching on the quality tier. Anytime previews
    /// are discarded; use [`Query::run_with_preview`] to observe them.
    ///
    /// # Errors
    ///
    /// Returns a [`valmod_series::SeriesError`] when the configuration is
    /// invalid for this series.
    pub fn run(&self, series: &[f64]) -> Result<QueryOutcome> {
        self.run_with_preview(series, |_| {})
    }

    /// Runs the query, invoking `on_preview` after every anytime round
    /// (never for `Exact`/`Screen`).
    ///
    /// # Errors
    ///
    /// Returns a [`valmod_series::SeriesError`] when the configuration is
    /// invalid for this series.
    pub fn run_with_preview(
        &self,
        series: &[f64],
        mut on_preview: impl FnMut(&AnytimePreview),
    ) -> Result<QueryOutcome> {
        match self.config.quality {
            Quality::Screen => {
                Ok(QueryOutcome::Screen(crate::screen::screen_series(series, &self.config)?))
            }
            _ => Ok(QueryOutcome::Exact(crate::algo::run_valmod_observed(
                series,
                &self.config,
                &mut on_preview,
            )?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_canonical_spellings() {
        assert_eq!(parse_quality("exact").unwrap(), Quality::Exact);
        assert_eq!(parse_quality("screen").unwrap(), Quality::Screen);
        assert_eq!(
            parse_quality("anytime").unwrap(),
            Quality::Anytime { budget: DEFAULT_ANYTIME_BUDGET }
        );
        assert_eq!(parse_quality("anytime:7").unwrap(), Quality::Anytime { budget: 7 });
    }

    #[test]
    fn parse_rejects_malformed_tiers() {
        assert!(parse_quality("anytime:0").is_err());
        assert!(parse_quality("anytime:x").is_err());
        assert!(parse_quality("fast").is_err());
        assert!(parse_quality("").is_err());
        assert!(parse_quality("Exact").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for q in [Quality::Exact, Quality::Screen, Quality::Anytime { budget: 5 }] {
            assert_eq!(parse_quality(&q.to_string()).unwrap(), q);
        }
    }

    #[test]
    fn builder_carries_the_tier_into_the_config() {
        let q = Query::new(8, 16).k(2).threads(3).quality(Quality::Anytime { budget: 6 }).seed(9);
        let c = q.config();
        assert_eq!(c.k, 2);
        assert_eq!(c.threads, 3);
        assert_eq!(c.quality, Quality::Anytime { budget: 6 });
        assert_eq!(c.seed, 9);
    }
}
