//! VALMOD's lower-bounding distance.
//!
//! # The bound
//!
//! Let `A = T[i..i+L)` and `B = T[j..j+L)` with `L = ℓ + k` an *extension*
//! of a base length `ℓ`, and let `d(A, B)` be their z-normalized Euclidean
//! distance, `d² = Σ_{t<L} (â_t − b̂_t)²`. Dropping the `k` trailing terms,
//!
//! ```text
//! d² ≥ Σ_{t<ℓ} (â_t − b̂_t)²
//! ```
//!
//! The prefix of `B̂` is an affine image `s·z + c·1` of the *base-length
//! z-normalized* window `z` (with `Σz = 0`, `Σz² = ℓ` and `s = σ_j^ℓ/σ_B >
//! 0`). Minimizing over **all** `s > 0, c ∈ ℝ` — a relaxation of the true
//! feasible set, hence still a lower bound — gives, writing
//! `p = ℓ·ρ^ℓ_{ij}·σ_i^ℓ/σ_i^L` for the prefix cross-term:
//!
//! ```text
//! LB²(i,j,L) = max(0,  E − e²/ℓ − max(0, p)²/ℓ)
//! E = Σ_{t<ℓ} â_t²      (prefix energy of A normalized at length L)
//! e = Σ_{t<ℓ} â_t       (prefix sum of the same)
//! ```
//!
//! `E`, `e` and `σ_i^L` depend only on the left subsequence `i`, so within
//! one distance profile the bound is a **monotone non-increasing function
//! of the base correlation `ρ^ℓ_{ij}`**. That is the rank-invariance
//! property the paper exploits: ranking a profile's entries by lower bound
//! at *any* extended length equals ranking them by base correlation, once,
//! at the base length. VALMOD therefore keeps, per profile, only the `p`
//! entries with the largest base correlation, and uses the bound of the
//! `p`-th to prune every entry it did not keep.
//!
//! Properties verified by the tests below (and by property tests in
//! `tests/prop_lb.rs`):
//!
//! * *admissibility* — `LB(i,j,L) ≤ d(T_{i,L}, T_{j,L})` always;
//! * *rank invariance* — `ρ ↦ LB` is non-increasing;
//! * at `L = ℓ` the bound reduces to `ℓ(1 − ρ²) ≤ 2ℓ(1 − ρ) = d²`.

use valmod_series::stats::FLAT_EPS;
use valmod_series::RollingStats;

/// Per-(row, target-length) quantities of the lower bound: everything that
/// does not depend on the candidate `j`.
///
/// Build once per row per length with [`LbRowContext::new`], then evaluate
/// the bound for any base correlation with [`LbRowContext::bound`].
#[derive(Debug, Clone, Copy)]
pub struct LbRowContext {
    /// Base (stored-profile) length ℓ.
    base_len: usize,
    /// `E` — prefix energy of the row subsequence normalized at length L.
    energy: f64,
    /// `e` — prefix sum of the same.
    prefix_sum: f64,
    /// `ℓ·σ_i^ℓ / σ_i^L` — multiplier turning ρ into the cross-term `p`.
    rho_scale: f64,
    /// Whether the row window is flat at either length (bound degenerates
    /// to zero — always admissible, never prunes).
    degenerate: bool,
}

impl LbRowContext {
    /// Computes the row context for subsequence `i`, base length
    /// `base_len`, target length `target_len`.
    ///
    /// `stats` must cover the series the subsequences come from.
    ///
    /// # Panics
    ///
    /// Debug-asserts `base_len ≤ target_len` and that the target window
    /// fits the series.
    #[must_use]
    pub fn new(stats: &RollingStats, i: usize, base_len: usize, target_len: usize) -> Self {
        debug_assert!(base_len >= 2 && base_len <= target_len);
        debug_assert!(i + target_len <= stats.len());
        let sig_base = stats.std(i, base_len);
        let sig_target = stats.std(i, target_len);
        if sig_base < FLAT_EPS || sig_target < FLAT_EPS {
            return Self {
                base_len,
                energy: 0.0,
                prefix_sum: 0.0,
                rho_scale: 0.0,
                degenerate: true,
            };
        }
        let lf = base_len as f64;
        // All sums are over the globally centered values; the z-normalized
        // quantities they produce are shift-invariant.
        let s = stats.centered_sum(i, base_len);
        let ssq = stats.centered_sum_sq(i, base_len);
        let mu_t = stats.centered_mean(i, target_len);
        let var_t = sig_target * sig_target;
        let energy = (ssq - 2.0 * mu_t * s + lf * mu_t * mu_t) / var_t;
        let prefix_sum = (s - lf * mu_t) / sig_target;
        let rho_scale = lf * sig_base / sig_target;
        Self { base_len, energy, prefix_sum, rho_scale, degenerate: false }
    }

    /// The base length this context extends from.
    #[must_use]
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Lower bound on the z-normalized distance at the target length, for a
    /// candidate whose *base-length* correlation with the row is
    /// `rho_base`.
    #[must_use]
    pub fn bound(&self, rho_base: f64) -> f64 {
        if self.degenerate {
            return 0.0;
        }
        let lf = self.base_len as f64;
        let p = (self.rho_scale * rho_base).max(0.0);
        let sq = self.energy - self.prefix_sum * self.prefix_sum / lf - p * p / lf;
        sq.max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::LbRowContext;
    use valmod_series::znorm::{pearson_from_dist, zdist};
    use valmod_series::{gen, RollingStats};

    /// Exhaustively checks admissibility of the bound on one series.
    fn check_admissible(series: &[f64], base_len: usize, max_len: usize) {
        let stats = RollingStats::new(series);
        let n = series.len();
        for target in base_len..=max_len {
            for i in (0..=n - target).step_by(3) {
                let ctx = LbRowContext::new(&stats, i, base_len, target);
                for j in (0..=n - target).step_by(5) {
                    // Base correlation from the base-length distance.
                    let d_base = zdist(&series[i..i + base_len], &series[j..j + base_len]);
                    let rho = pearson_from_dist(d_base, base_len);
                    let lb = ctx.bound(rho);
                    let true_d = zdist(&series[i..i + target], &series[j..j + target]);
                    // The slack absorbs float noise: LB and the reference
                    // distance come from different computation paths.
                    assert!(
                        lb <= true_d + 1e-5,
                        "LB {lb} exceeds true distance {true_d} at (i={i}, j={j}, \
                         base={base_len}, target={target})"
                    );
                }
            }
        }
    }

    #[test]
    fn admissible_on_random_walk() {
        let series = gen::random_walk(160, 3);
        check_admissible(&series, 8, 16);
    }

    #[test]
    fn admissible_on_ecg() {
        let series = gen::ecg(200, &gen::EcgConfig::default(), 4);
        check_admissible(&series, 10, 20);
    }

    #[test]
    fn admissible_on_noise() {
        let series = gen::white_noise(120, 5, 1.0);
        check_admissible(&series, 6, 14);
    }

    #[test]
    fn reduces_to_correlation_bound_at_base_length() {
        let series = gen::random_walk(100, 7);
        let stats = RollingStats::new(&series);
        let l = 16;
        let ctx = LbRowContext::new(&stats, 10, l, l);
        for &rho in &[0.0f64, 0.3, 0.7, 0.95, 1.0] {
            let lb = ctx.bound(rho);
            let expect = (l as f64 * (1.0 - rho * rho)).max(0.0).sqrt();
            assert!((lb - expect).abs() < 1e-6, "at rho {rho}: {lb} vs closed form {expect}");
        }
    }

    #[test]
    fn bound_is_monotone_in_rho() {
        let series = gen::astro(150, &gen::AstroConfig::default(), 6);
        let stats = RollingStats::new(&series);
        let ctx = LbRowContext::new(&stats, 20, 12, 40);
        let mut prev = f64::INFINITY;
        let mut rho = -1.0;
        while rho <= 1.0 {
            let lb = ctx.bound(rho);
            assert!(lb <= prev + 1e-12, "bound must not increase with rho");
            prev = lb;
            rho += 0.05;
        }
    }

    #[test]
    fn negative_rho_hits_the_plateau() {
        // For rho <= 0 the cross term vanishes: the bound is constant.
        let series = gen::random_walk(100, 2);
        let stats = RollingStats::new(&series);
        let ctx = LbRowContext::new(&stats, 5, 8, 24);
        assert!((ctx.bound(-0.2) - ctx.bound(-0.9)).abs() < 1e-12);
        assert!((ctx.bound(0.0) - ctx.bound(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn flat_rows_degenerate_to_zero() {
        let mut series = gen::white_noise(100, 8, 1.0);
        for v in &mut series[30..60] {
            *v = 1.0;
        }
        let stats = RollingStats::new(&series);
        let ctx = LbRowContext::new(&stats, 35, 8, 16);
        assert_eq!(ctx.bound(0.9), 0.0);
        assert_eq!(ctx.base_len(), 8);
    }

    #[test]
    fn bound_grows_with_target_length_for_fixed_rho() {
        // Not a theorem, but on typical data the bound should usually
        // *increase* with extension (more dropped mass) — check it at least
        // never goes negative and stays finite.
        let series = gen::sine_mix(200, &[(31.0, 1.0)], 0.1, 5);
        let stats = RollingStats::new(&series);
        for target in 12..60 {
            let ctx = LbRowContext::new(&stats, 3, 12, target);
            let lb = ctx.bound(0.8);
            assert!(lb.is_finite() && lb >= 0.0);
        }
    }
}
