//! The VALMOD algorithm.
//!
//! Stage 1 computes the full matrix profile at `ℓmin` with a STOMP row
//! stream, harvesting for every row the `p` candidates with the largest
//! correlation — the *partial distance profiles* (see [`crate::partial`]).
//!
//! Stage 2 walks the lengths `ℓmin+1 ..= ℓmax`. For each length it updates
//! every stored dot product with one fused multiply-add, recomputes the
//! stored candidates' true distances, and classifies each row:
//!
//! * **valid** — the smallest stored distance does not exceed `maxLB`, the
//!   lower bound covering everything the row did *not* store; the stored
//!   minimum is then provably the row's true minimum;
//! * **non-valid** — the bound cannot certify the row; its true minimum is
//!   only known to be `≥ maxLB`.
//!
//! The smallest `maxLB` over non-valid rows (`minLBAbs`) certifies results:
//! every valid-row minimum below it is a true top motif distance. If the
//! top-k cannot be certified from valid rows alone, the affected rows'
//! distance profiles are recomputed exactly with MASS (and their partial
//! profiles re-seeded at the current length), which restores exactness —
//! this is the paper's fallback path.
//!
//! Degenerate (flat, σ ≈ 0) windows break correlation ranking; lengths at
//! which they occur are computed with diagonal-parallel STOMP instead
//! (exact, slower, and rare in practice). Everything stays exact either
//! way.
//!
//! # Parallelism
//!
//! Both stages scale across [`ValmodConfig::threads`] workers — parked
//! threads of the configuration's persistent [`valmod_mp::WorkerPool`]
//! ([`ValmodConfig::pool`]), dispatched per phase instead of spawned —
//! and produce **bit-identical results for every thread count and every
//! pool**:
//!
//! * Stage 1 partitions the QT matrix's diagonals across workers (blocks
//!   of lane-width-many adjacent diagonals, walked by the register-tiled
//!   SIMD kernel of `crate::kernel` at the lane width the dispatch
//!   resolves once per stage; series with flat windows take the scalar
//!   [`StompEngine::walk_diagonals`] distance-space walk instead —
//!   per-cell arithmetic is independent of the partitioning either way).
//!   Each worker keeps a per-row [`TopRhoSelector`] and per-row best;
//!   selectors merge row-wise with [`TopRhoSelector::absorb`], which is
//!   exact because the global top-p is contained in the union of
//!   per-partition top-p sets, so `worst_rho` and `maxLB` come out the
//!   same as a single pass.
//! * Stage 2 chunks the independent per-row work (dot-product advance,
//!   statistics, classification, MASS recomputation) across the same
//!   pool; each row's math never depends on the chunking, and the MASS
//!   fallback reuses one [`ProfileScratch`] per worker so the hot loop
//!   allocates nothing per row. On top of the chunking, stage 2 runs as a
//!   **two-stage software pipeline** ([`ValmodConfig::stage2_pipeline`]):
//!   the dots of length `ℓ+1` are advanced — by the SIMD lanes of
//!   [`crate::kernel::advance_entry_dots`], into the shadow half of a
//!   double-buffered [`crate::scratch::DotTable`] — in a non-blockingly
//!   submitted pool batch that overlaps the classification of length `ℓ`,
//!   whose state it never touches; the MASS fallback's re-seeding is the
//!   one dependency between the two, handled by a drain-and-sync. The
//!   overlapped batch computes exactly what the start-of-step advance
//!   would, so results stay byte-identical with the pipeline on or off.

use valmod_mp::mass::{DistanceProfiler, ProfileScratch};
use valmod_mp::motif::top_k_pairs;
use valmod_mp::stomp::{stomp_parallel_in, StompEngine};
use valmod_mp::{MatrixProfile, MotifPair};
use valmod_obs as obs;
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::{pearson_from_dist, zdist_from_dot};
use valmod_series::{Result, RollingStats};

use crate::config::ValmodConfig;
use crate::kernel::{self, Stage1Part};
use crate::lb::LbRowContext;
use crate::partial::{PartialRow, TopRhoSelector};
use crate::query::Quality;
use crate::scratch::{write_back_dots, RowOutcome, StepScratch};
use crate::valmap::Valmap;

/// Minimum rows per worker before stage 2 spawns another thread — below
/// this, O(p)-per-row loops are cheaper than the spawn.
pub(crate) const MIN_ROWS_PER_WORKER: usize = 4096;

/// Minimum QT cells per stage-1 worker: below this, the per-worker state
/// (m selectors + m bests) and the row-wise merge cost rival the walk
/// itself, so extra threads stop paying off.
const STAGE1_MIN_CELLS_PER_WORKER: usize = 1 << 17;

/// Budget for transient stage-1 worker state (each worker holds
/// `m · p` selector slots plus an `m`-sized best vector). Caps the worker
/// count on huge series so memory stays bounded at a few GiB even at
/// paper scale (m ≈ 10⁶) with many hardware threads.
const STAGE1_STATE_BYTES_BUDGET: usize = 2 << 30;

/// Pruning statistics of one length step — the observability the paper's
/// Figure 2 narrates (valid vs non-valid profiles, `minLBAbs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Rows whose partial profile certified the row minimum.
    pub valid_rows: usize,
    /// Rows whose bound could not certify the minimum.
    pub invalid_rows: usize,
    /// Rows recomputed exactly via MASS at this length.
    pub recomputed_rows: usize,
    /// The certification threshold `minLBAbs` (∞ when every row is valid).
    pub min_lb_abs: f64,
    /// Whether this length fell back to a full STOMP run (degenerate
    /// windows present).
    pub stomp_fallback: bool,
}

/// The per-length output: the exact top-k motif pairs and pruning stats.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthResult {
    /// Subsequence length.
    pub length: usize,
    /// Exact top-k motif pairs at this length, ascending distance.
    pub pairs: Vec<MotifPair>,
    /// Pruning statistics.
    pub stats: LengthStats,
}

/// Wall-clock timings of the two stages, for perf snapshots and benches.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Stage 1: base matrix profile + partial profiles at `ℓmin`.
    pub stage1: std::time::Duration,
    /// Stage 2: all length steps `ℓmin+1 ..= ℓmax`.
    pub stage2: std::time::Duration,
    /// Stage-2 phase: advancing the stored dot products by one point per
    /// length (the incremental recurrence the pipeline overlaps).
    pub stage2_advance: std::time::Duration,
    /// Stage-2 phase: per-window means and standard deviations at the
    /// step's length.
    pub stage2_stats: std::time::Duration,
    /// Stage-2 phase: per-row classification and top-k selection.
    pub stage2_classify: std::time::Duration,
    /// Stage-2 phase: exact MASS recomputation of uncertified rows (the
    /// fallback that forces a pipeline drain).
    pub stage2_recompute: std::time::Duration,
    /// Per-length breakdown of the stage-2 phases, one entry per length
    /// step `ℓmin+1 ..= ℓmax` in ascending order. The aggregate phase
    /// fields above are the column sums of this table.
    pub per_length: Vec<StepTimings>,
}

/// Wall-clock phase breakdown of one stage-2 length step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Subsequence length of this step.
    pub length: usize,
    /// Dot-product advance (incremental recurrence + pipeline drains).
    pub advance: std::time::Duration,
    /// Per-window means/standard deviations.
    pub stats: std::time::Duration,
    /// Per-row classification and top-k selection.
    pub classify: std::time::Duration,
    /// Exact MASS recomputation of uncertified rows (or the full STOMP
    /// fallback at degenerate lengths).
    pub recompute: std::time::Duration,
}

/// Everything a VALMOD run produces.
#[derive(Debug, Clone)]
pub struct ValmodOutput {
    /// The configuration that produced this output.
    pub config: ValmodConfig,
    /// Exact per-length results for every length in `[ℓmin, ℓmax]`.
    pub per_length: Vec<LengthResult>,
    /// The VALMAP meta-data structure.
    pub valmap: Valmap,
    /// The full matrix profile at `ℓmin` (stage 1's by-product).
    pub base_profile: MatrixProfile,
    /// Stage wall-clock timings of this run.
    pub timings: StageTimings,
}

impl ValmodOutput {
    /// The best motif pair of each length (first of each top-k), for
    /// MOEN-style per-length reporting.
    #[must_use]
    pub fn best_per_length(&self) -> Vec<Option<MotifPair>> {
        self.per_length.iter().map(|r| r.pairs.first().copied()).collect()
    }

    /// Global ranking of all discovered pairs by length-normalized
    /// distance (see [`crate::rank`]).
    #[must_use]
    pub fn ranking(&self) -> Vec<crate::rank::RankedMotif> {
        crate::rank::rank_pairs(self)
    }
}

/// Runs VALMOD over `series` for the configured length range.
///
/// # Errors
///
/// Returns a [`valmod_series::SeriesError`] when the configuration is
/// invalid for this series (range malformed or series too short).
///
/// # Example
///
/// ```
/// use valmod_core::{run_valmod, ValmodConfig};
/// use valmod_series::gen;
///
/// let series = gen::sine_mix(800, &[(60.0, 1.0)], 0.05, 1);
/// let out = run_valmod(&series, &ValmodConfig::new(32, 40).with_k(3)).unwrap();
/// assert_eq!(out.per_length.len(), 9);
/// // A periodic series has close motifs at every length.
/// assert!(out.per_length.iter().all(|r| !r.pairs.is_empty()));
/// ```
pub fn run_valmod(series: &[f64], config: &ValmodConfig) -> Result<ValmodOutput> {
    run_valmod_observed(series, config, &mut |_| {})
}

/// [`run_valmod`] with an anytime-preview observer: when
/// [`ValmodConfig::quality`] is [`Quality::Anytime`], stage 1 walks the
/// diagonal blocks in the seeded shuffled order and invokes `on_preview`
/// after every round with the interim VALMAP and convergence estimate
/// (see [`crate::anytime::AnytimePreview`]); the run then **settles to
/// the byte-identical exact output** — same VALMAP, pairs, and checksums
/// as the eager walk. `Exact` (and `Screen`, which only short-circuits
/// through [`crate::Query::run`]) never invoke the observer.
///
/// # Errors
///
/// Returns a [`valmod_series::SeriesError`] when the configuration is
/// invalid for this series (range malformed or series too short).
pub fn run_valmod_observed(
    series: &[f64],
    config: &ValmodConfig,
    on_preview: &mut dyn FnMut(&crate::anytime::AnytimePreview),
) -> Result<ValmodOutput> {
    config.validate(series.len())?;
    let l0 = config.l_min;

    let engine = StompEngine::new(series, l0)?;
    // All downstream math uses the engine's globally centered values, so
    // dot products, statistics and lower bounds share one unit system.
    let values: Vec<f64> = engine.values().to_vec();
    let stats = RollingStats::new(&values);
    let profiler = DistanceProfiler::new(&values)?;

    // ---- Stage 1: full matrix profile at l0 + partial profiles. ----
    let stage1_started = std::time::Instant::now();
    let (base_profile, mut rows) = match config.quality {
        Quality::Anytime { budget } => {
            crate::anytime::stage_one_anytime(&engine, config, budget, on_preview)
        }
        _ => stage_one(&engine, config),
    };
    let stage1 = stage1_started.elapsed();
    let base_pairs = top_k_pairs(&base_profile, config.k);
    let mut valmap = Valmap::from_base_profile(&base_profile);
    let mut per_length = Vec::with_capacity(config.l_max - l0 + 1);
    per_length.push(LengthResult {
        length: l0,
        pairs: base_pairs,
        stats: LengthStats {
            valid_rows: base_profile.len(),
            invalid_rows: 0,
            recomputed_rows: 0,
            min_lb_abs: f64::INFINITY,
            stomp_fallback: false,
        },
    });

    // ---- Stage 2: lengths l0+1 ..= l_max. ----
    let stage2_started = std::time::Instant::now();
    let mut timings = StageTimings { stage1, ..StageTimings::default() };
    let mut scratch = StepScratch::default();
    for length in l0 + 1..=config.l_max {
        let result = step_length(
            &values,
            &stats,
            &profiler,
            &mut rows,
            config,
            length,
            &mut scratch,
            &mut timings,
        )?;
        valmap.apply_length(length, &result.pairs);
        per_length.push(result);
    }
    timings.stage2 = stage2_started.elapsed();

    Ok(ValmodOutput { config: config.clone(), per_length, valmap, base_profile, timings })
}

/// Picks a worker count for `items` units of parallel work, requiring at
/// least `min_per_worker` units each before another thread pays off.
pub(crate) fn worker_count(threads: usize, items: usize, min_per_worker: usize) -> usize {
    if threads <= 1 || items == 0 {
        return 1;
    }
    threads.min(items.div_ceil(min_per_worker.max(1)))
}

/// Stage 1: walk the QT matrix's diagonals at `ℓmin` across workers,
/// building the base matrix profile and the per-row partial profiles.
///
/// Each unordered pair `(i, j)` is visited exactly once (the self-join
/// matrix is symmetric); the cell contributes candidate `j` to row `i`
/// and candidate `i` to row `j`. Worker-local selectors and bests merge
/// under total orders, so the output never depends on the worker count.
/// Shared with the discord search, whose stage 1 is the same computation.
pub(crate) fn stage_one(
    engine: &StompEngine,
    config: &ValmodConfig,
) -> (MatrixProfile, Vec<PartialRow>) {
    let l0 = config.l_min;
    let m = engine.num_windows();
    let excl = config.exclusion(l0);
    let mut mp = MatrixProfile::unfilled(l0, excl, m);
    let first_diag = excl + 1;
    if first_diag >= m {
        // No admissible pair at all: empty partial profiles, unfilled MP.
        let rows = (0..m).map(|_| TopRhoSelector::new(config.profile_size).into_row(l0)).collect();
        return (mp, rows);
    }

    let num_workers = stage1_worker_count(config, m, first_diag);
    // The hot path is the SIMD kernel (crate::kernel); series with flat
    // windows at ℓmin take the scalar distance-space walk instead, whose
    // per-cell conventions the kernel does not model. Both produce the
    // same SoA worker state and merge identically.
    let has_flat = engine.has_flat_windows();
    // Resolve the SIMD dispatch once for the whole stage and hand the
    // decision to every worker: the blocked partitioning depends on the
    // lane width, so a mid-stage env/override flip must never leave
    // workers disagreeing on the blocking.
    let level = valmod_fft::simd::simd_level();
    let mut parts = config.pool().run(num_workers, |w| {
        if has_flat {
            stage_one_flat_worker(engine, config, first_diag, w, num_workers)
        } else {
            kernel::stage1_walk(engine, first_diag, w, num_workers, config.profile_size, level)
        }
    });

    // Row-wise merge of the worker partitions under the total orders
    // (see [`Stage1Part::absorb`]): any grouping yields the same state.
    let rest = parts.split_off(1);
    let mut merged = parts.pop().expect("at least one worker");
    for part in &rest {
        merged.absorb(part);
    }
    let rows = rows_from_part(merged, &mut mp, l0);
    (mp, rows)
}

/// Stage 1's worker-count policy: scale to the actual cell work and keep
/// the per-worker state within the memory budget. Any count produces
/// identical results, so both caps are pure performance knobs. Shared
/// with the anytime scheduler so both walks size their fan-out the same
/// way.
pub(crate) fn stage1_worker_count(config: &ValmodConfig, m: usize, first_diag: usize) -> usize {
    let cells = (m - first_diag).saturating_mul(m - first_diag) / 2;
    let per_worker_bytes = m
        * (config.profile_size * std::mem::size_of::<crate::partial::PartialEntry>()
            + std::mem::size_of::<(f64, usize)>());
    let state_cap = (STAGE1_STATE_BYTES_BUDGET / per_worker_bytes.max(1)).max(1);
    worker_count(config.threads, cells, STAGE1_MIN_CELLS_PER_WORKER)
        .min(state_cap)
        .min(m - first_diag)
}

/// Finalizes a fully merged stage-1 part: per-row best → matrix-profile
/// offer, selector → sorted [`PartialRow`]. The tail both the eager and
/// the anytime stage 1 funnel through, so their outputs are bitwise the
/// same function of the merged state.
pub(crate) fn rows_from_part(
    part: Stage1Part,
    mp: &mut MatrixProfile,
    l0: usize,
) -> Vec<PartialRow> {
    let mut rows: Vec<PartialRow> = Vec::with_capacity(part.best_d.len());
    for (i, (selector, (best_d, best_j))) in
        part.selectors.into_iter().zip(part.best_d.into_iter().zip(part.best_j)).enumerate()
    {
        if best_j != u32::MAX {
            mp.offer(i, best_d, best_j as usize);
        }
        rows.push(selector.into_row(l0));
    }
    rows
}

/// The scalar stage-1 worker for series with flat (σ ≈ 0) windows at the
/// base length: per-cell distance conventions, interleaved-diagonal
/// partitioning — the pre-kernel walk, verbatim, writing into the same
/// SoA worker state as the kernel.
fn stage_one_flat_worker(
    engine: &StompEngine,
    config: &ValmodConfig,
    first_diag: usize,
    w: usize,
    num_workers: usize,
) -> Stage1Part {
    let l0 = config.l_min;
    let m = engine.num_windows();
    let means = engine.means();
    let stds = engine.stds();
    let mut part = Stage1Part::new(m, config.profile_size);
    engine.walk_diagonals(first_diag + w, num_workers, |i, j, qt| {
        flat_stage1_cell(&mut part, l0, means, stds, i, j, qt);
    });
    part
}

/// One cell of the scalar flat-path walk — the per-cell body shared by
/// the eager interleaved worker above and the anytime tier's listed
/// walk, so the two paths can never drift on the degenerate-pair
/// conventions.
pub(crate) fn flat_stage1_cell(
    part: &mut Stage1Part,
    l0: usize,
    means: &[f64],
    stds: &[f64],
    i: usize,
    j: usize,
    qt: f64,
) {
    let lf = l0 as f64;
    let (d, rho) = if stds[i] < FLAT_EPS || stds[j] < FLAT_EPS {
        // Degenerate pair: contribute the conventional distance to
        // the profile and enter the partial profile with the worst
        // correlation. The lower bound evaluated at ρ = −1 (its
        // plateau) remains admissible for flat candidates, so
        // pruning stays exact.
        (zdist_from_dot(qt, l0, means[i], stds[i], means[j], stds[j]), -1.0)
    } else {
        let rho = ((qt - lf * means[i] * means[j]) / (lf * stds[i] * stds[j])).clamp(-1.0, 1.0);
        ((2.0 * lf * (1.0 - rho)).max(0.0).sqrt(), rho)
    };
    part.selectors[i].offer(j, rho, qt);
    part.selectors[j].offer(i, rho, qt);
    let ju = kernel::idx32(j);
    if d < part.best_d[i] || (d == part.best_d[i] && ju < part.best_j[i]) {
        part.best_d[i] = d;
        part.best_j[i] = ju;
    }
    let iu = kernel::idx32(i);
    if d < part.best_d[j] || (d == part.best_d[j] && iu < part.best_j[j]) {
        part.best_d[j] = d;
        part.best_j[j] = iu;
    }
}

/// One row re-seeded by the MASS fallback, produced by a worker and
/// applied serially in row order.
struct RecomputedRow {
    i: usize,
    row: PartialRow,
    outcome: RowOutcome,
}

/// Splits the dot table's rows `0..row_count` into `workers` contiguous
/// chunks balanced by entry count, pairing each with its exclusive slice
/// of `dst`. Any chunking yields identical results (entries are advanced
/// independently), so the split is purely a load-balancing choice.
fn split_dot_chunks<'a>(
    offsets: &[usize],
    mut dst: &'a mut [f64],
    row_count: usize,
    workers: usize,
) -> Vec<std::sync::Mutex<(std::ops::Range<usize>, &'a mut [f64])>> {
    let total = offsets[row_count];
    let per_worker = total.div_ceil(workers.max(1)).max(1);
    let mut chunks = Vec::with_capacity(workers);
    let mut row = 0;
    let mut taken = 0;
    while row < row_count {
        let target = taken + per_worker;
        let mut end_row = row + 1;
        if target >= total {
            // Last chunk absorbs the remainder (including trailing
            // entry-less rows), so the chunk count never exceeds `workers`.
            end_row = row_count;
        } else {
            while end_row < row_count && offsets[end_row] < target {
                end_row += 1;
            }
        }
        let len = offsets[end_row] - offsets[row];
        let (head, tail) = dst.split_at_mut(len);
        dst = tail;
        chunks.push(std::sync::Mutex::new((row..end_row, head)));
        taken = offsets[end_row];
        row = end_row;
    }
    chunks
}

/// One claimable chunk of the shadow statistics buffers: (first row
/// index, means slice, stds slice).
type StatChunk<'a> = std::sync::Mutex<(usize, &'a mut [f64], &'a mut [f64])>;

/// Splits the shadow statistics buffers into per-worker chunks for the
/// overlapped prefetch of the next length's window statistics. Each
/// value is an independent prefix-sum read, so any split yields
/// identical results.
fn split_stat_chunks<'a>(
    means: &'a mut [f64],
    stds: &'a mut [f64],
    workers: usize,
) -> Vec<StatChunk<'a>> {
    debug_assert_eq!(means.len(), stds.len());
    let chunk_len = means.len().div_ceil(workers.max(1)).max(1);
    means
        .chunks_mut(chunk_len)
        .zip(stds.chunks_mut(chunk_len))
        .enumerate()
        .map(|(c, (ms, ss))| std::sync::Mutex::new((c * chunk_len, ms, ss)))
        .collect()
}

/// Advances one contiguous chunk of table rows to `target_len`: rows still
/// alive at that length go through the SIMD entry advance
/// ([`kernel::advance_entry_dots`]); rows whose window no longer exists
/// carry their dots forward verbatim, exactly as the per-entry guard left
/// them in the pre-table code.
fn advance_dot_chunk(
    offsets: &[usize],
    j_flat: &[u32],
    qt: &[f64],
    values: &[f64],
    target_len: usize,
    rows: std::ops::Range<usize>,
    dst: &mut [f64],
) {
    let n = values.len();
    let target_m = n - target_len + 1;
    let limit = u32::try_from(target_m).expect("window count exceeds the u32 profile index space");
    let t_next = &values[target_len - 1..];
    let base = offsets[rows.start];
    for i in rows {
        let (s, e) = (offsets[i], offsets[i + 1]);
        let dst_seg = &mut dst[s - base..e - base];
        if i < target_m {
            kernel::advance_entry_dots(
                values[i + target_len - 1],
                t_next,
                &j_flat[s..e],
                limit,
                &qt[s..e],
                dst_seg,
            );
        } else {
            dst_seg.copy_from_slice(&qt[s..e]);
        }
    }
}

/// Minimum table entries per advance worker; below this the dispatch
/// overhead rivals the fused multiply-adds themselves.
const MIN_ENTRIES_PER_ADVANCE_WORKER: usize = 1 << 15;

/// One stage-2 length step. Mutates `rows` (incremental dot products and
/// possible re-seeding) and returns the exact per-length result.
///
/// # The software pipeline
///
/// The step runs as a two-stage pipeline on the configuration's worker
/// pool (when [`ValmodConfig::stage2_pipeline`] is on and more than one
/// thread is configured): right after the dots of `length` become
/// current, a batch advancing them to `length + 1` is *submitted without
/// blocking* ([`valmod_mp::pool::PoolScope::submit`]) into the shadow
/// buffer of the double-buffered [`crate::scratch::DotTable`], and the
/// classification work of `length` (per-row classification, top-k
/// selection) proceeds concurrently — the advance reads only the current
/// buffer, classification never writes it, so the two batches share no
/// mutable state. The next step then just swaps buffers.
///
/// The same overlapped batch also *prefetches the window statistics of
/// `length + 1`*: each advance worker fills its slice of the shadow
/// means/stds buffers in [`crate::scratch::StepScratch`] with the same
/// prefix-sum reads the next step would otherwise pay two blocking pool
/// passes for. Statistics depend only on the immutable series, so the
/// prefetch survives every fallback below — only the dot shadow is ever
/// discarded.
///
/// The MASS fallback is the one event whose re-seeding invalidates the
/// shadow: it drains the in-flight batch, recomputes, writes the current
/// dots back into the rows and rebuilds the table. Results are therefore
/// **byte-identical with the pipeline on or off** — the overlapped batch
/// computes exactly the values the start-of-step advance would have, and
/// it is discarded whenever re-seeding makes them stale.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn step_length(
    values: &[f64],
    stats: &RollingStats,
    profiler: &DistanceProfiler,
    rows: &mut [PartialRow],
    config: &ValmodConfig,
    length: usize,
    scratch: &mut StepScratch,
    timings: &mut StageTimings,
) -> Result<LengthResult> {
    let _step_span = obs::span("stage2_step", obs::Layer::Stage2);
    let n = values.len();
    debug_assert!(length <= n);
    let m = n - length + 1;
    let excl = config.exclusion(length);
    let threads = config.threads;
    let pool = config.pool();
    let row_workers = worker_count(threads, m, MIN_ROWS_PER_WORKER);
    let StepScratch { means, stds, means_next, stds_next, stats_next_for, outcomes, mass, dots } =
        scratch;
    let mut step = StepTimings { length, ..StepTimings::default() };
    // Table entries whose dots this step advances (deferred metrics
    // flush: accumulated locally, one relaxed add at the end).
    let mut dot_advances: u64 = 0;

    // ---- Bring the dots of `length` current. ----
    // Either the previous step's overlapped batch already advanced them
    // (promote the shadow), or advance synchronously now — same values
    // either way, by the same kernel.
    let phase_started = std::time::Instant::now();
    if !dots.built {
        dots.build(rows);
    }
    let row_count = rows.len();
    let adv_workers = worker_count(threads, dots.j.len(), MIN_ENTRIES_PER_ADVANCE_WORKER);
    if !dots.next_ready {
        dot_advances += dots.j.len() as u64;
        let chunks = split_dot_chunks(&dots.offsets, &mut dots.qt_next, row_count, adv_workers);
        let (offsets, j_flat, qt) = (&dots.offsets, &dots.j, &dots.qt);
        pool.run(chunks.len(), |w| {
            let mut guard = chunks[w].lock().expect("advance chunk lock poisoned");
            let (rows_range, dst) = &mut *guard;
            advance_dot_chunk(offsets, j_flat, qt, values, length, rows_range.clone(), dst);
        });
    }
    dots.promote_next();
    let advance_elapsed = phase_started.elapsed();
    timings.stage2_advance += advance_elapsed;
    step.advance += advance_elapsed;

    // ---- Window statistics of `length`. ----
    // Either the previous step's overlapped batch already prefetched them
    // into the shadow buffers (swap them in), or compute them now — same
    // values either way: both paths call the same pure prefix-sum reads.
    let stats_started = std::time::Instant::now();
    if *stats_next_for == length && means_next.len() == m {
        std::mem::swap(means, means_next);
        std::mem::swap(stds, stds_next);
    } else {
        means.resize(m, 0.0);
        stds.resize(m, 0.0);
        pool.for_each_mut(means, row_workers, |i, v| *v = stats.centered_mean(i, length));
        pool.for_each_mut(stds, row_workers, |i, v| *v = stats.std(i, length));
    }
    *stats_next_for = 0;
    let stats_elapsed = stats_started.elapsed();
    timings.stage2_stats += stats_elapsed;
    step.stats += stats_elapsed;

    // ---- The pipelined step body. ----
    let pipelined = config.stage2_pipeline && threads > 1 && length < config.l_max;
    let (result, needs_rebuild) = {
        let offsets = &dots.offsets[..];
        let j_flat = &dots.j[..];
        let qt = &dots.qt[..];
        let next_ready = &mut dots.next_ready;
        let adv_chunks = if pipelined {
            split_dot_chunks(offsets, &mut dots.qt_next, row_count, adv_workers)
        } else {
            Vec::new()
        };
        // The overlapped batch also prefetches the window statistics of
        // `length + 1` (satisfying the next step's swap above): resize
        // the shadow buffers and split them into per-worker slices.
        let stat_chunks = if pipelined {
            means_next.resize(m - 1, 0.0);
            stds_next.resize(m - 1, 0.0);
            split_stat_chunks(means_next, stds_next, adv_chunks.len())
        } else {
            Vec::new()
        };
        pool.scope(|scope| -> Result<(LengthResult, bool)> {
            // Submit the advance to `length + 1` into the shadow buffer;
            // it overlaps everything below until waited.
            let mut advance = pipelined.then(|| {
                dot_advances += j_flat.len() as u64;
                scope.submit(adv_chunks.len(), |w| {
                    {
                        let mut guard = adv_chunks[w].lock().expect("advance chunk lock poisoned");
                        let (rows_range, dst) = &mut *guard;
                        advance_dot_chunk(
                            offsets,
                            j_flat,
                            qt,
                            values,
                            length + 1,
                            rows_range.clone(),
                            dst,
                        );
                    }
                    // Same batch, second duty: prefetch this worker's
                    // slice of the next length's window statistics.
                    if let Some(chunk) = stat_chunks.get(w) {
                        let mut guard = chunk.lock().expect("stats chunk lock poisoned");
                        let (start, ms, ss) = &mut *guard;
                        for (off, (mv, sv)) in ms.iter_mut().zip(ss.iter_mut()).enumerate() {
                            let i = *start + off;
                            *mv = stats.centered_mean(i, length + 1);
                            *sv = stats.std(i, length + 1);
                        }
                    }
                })
            });
            let (means, stds) = (&means[..], &stds[..]);

            if stds.iter().any(|&s| s < FLAT_EPS) {
                // Degenerate windows break the correlation-rank machinery:
                // compute this length exactly with (diagonal-parallel)
                // STOMP and re-seed nothing (stored profiles remain
                // correct for later lengths). The overlapped advance stays
                // valid — it never depended on this length's statistics.
                let drain_started = std::time::Instant::now();
                if let Some(handle) = advance.take() {
                    handle.wait();
                    *next_ready = true;
                }
                let drain_elapsed = drain_started.elapsed();
                timings.stage2_advance += drain_elapsed;
                step.advance += drain_elapsed;
                let recompute_started = std::time::Instant::now();
                let mp = stomp_parallel_in(values, length, excl, threads, pool)?;
                let pairs = top_k_pairs(&mp, config.k);
                let recompute_elapsed = recompute_started.elapsed();
                timings.stage2_recompute += recompute_elapsed;
                step.recompute += recompute_elapsed;
                return Ok((
                    LengthResult {
                        length,
                        pairs,
                        stats: LengthStats {
                            valid_rows: m,
                            invalid_rows: 0,
                            recomputed_rows: m,
                            min_lb_abs: f64::INFINITY,
                            stomp_fallback: true,
                        },
                    },
                    false,
                ));
            }

            // Classify rows — pure per-row reads of the current dot
            // buffer, chunked across workers (concurrently with the
            // in-flight advance batch, which only writes the shadow).
            let classify_started = std::time::Instant::now();
            let rows_ref: &[PartialRow] = rows;
            outcomes.resize(m, RowOutcome::EMPTY);
            pool.for_each_mut(outcomes, row_workers, |i, out| {
                let mut min_dist = f64::INFINITY;
                let mut min_j = usize::MAX;
                for e in offsets[i]..offsets[i + 1] {
                    let j = j_flat[e] as usize;
                    if j >= m || i.abs_diff(j) <= excl {
                        continue;
                    }
                    let d = zdist_from_dot(qt[e], length, means[i], stds[i], means[j], stds[j]);
                    if d < min_dist {
                        min_dist = d;
                        min_j = j;
                    }
                }
                let row = &rows_ref[i];
                let max_lb = match row.worst_rho() {
                    Some(rho) => LbRowContext::new(stats, i, row.base_len, length).bound(rho),
                    // Untruncated profile: nothing was left unstored, the
                    // stored minimum is the row minimum by construction.
                    None => f64::INFINITY,
                };
                let valid = min_dist <= max_lb;
                *out = RowOutcome { min_dist, min_j, max_lb, valid };
            });

            let min_lb_abs = outcomes
                .iter()
                .filter(|o| !o.valid)
                .map(|o| o.max_lb)
                .fold(f64::INFINITY, f64::min);
            let valid_rows = outcomes.iter().filter(|o| o.valid).count();
            let invalid_rows = m - valid_rows;

            // Tentative top-k from certified rows.
            let mut candidates: Vec<MotifPair> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| o.valid && o.min_dist.is_finite())
                .map(|(i, o)| MotifPair::new(i, o.min_j, o.min_dist, length))
                .collect();
            let selection = select_top_k(&candidates, config.k, excl);

            // Certification threshold: with k certified pairs, only rows
            // whose bound undercuts the k-th distance could still
            // contribute; with fewer, any non-valid row could.
            let threshold = if selection.len() == config.k {
                selection.last().map_or(f64::INFINITY, |p| p.distance)
            } else {
                f64::INFINITY
            };
            let classify_elapsed = classify_started.elapsed();
            timings.stage2_classify += classify_elapsed;
            step.classify += classify_elapsed;

            let recompute_started = std::time::Instant::now();
            let mut recomputed_rows = 0;
            let mut needs_rebuild = false;
            if threshold >= min_lb_abs {
                // Fallback: exact MASS recomputation of every row the
                // bound could not certify below the threshold, then
                // re-seed those partial profiles at the current length.
                // Re-seeding changes row shapes, so this is the pipeline's
                // drain-and-sync point: the in-flight advance is joined
                // and its shadow discarded (stale for re-seeded rows).
                let todo: Vec<usize> = (0..m)
                    .filter(|&i| !outcomes[i].valid && outcomes[i].max_lb < threshold)
                    .collect();
                recomputed_rows = todo.len();
                if !todo.is_empty() {
                    // Drain-and-sync: the shadow stays stale (`next_ready`
                    // remains false) and is rebuilt after re-seeding.
                    if let Some(handle) = advance.take() {
                        handle.wait();
                    }
                    let workers = worker_count(threads, todo.len(), 1);
                    while mass.len() < workers {
                        mass.push(profiler.scratch());
                    }
                    let chunk_len = todo.len().div_ceil(workers);
                    let recompute_chunk = |chunk: &[usize], ms: &mut ProfileScratch| {
                        chunk
                            .iter()
                            .map(|&i| {
                                let profile = profiler.self_profile_into(i, length, ms)?;
                                // A row that needed recomputation is a
                                // *competitive* row (its neighborhood keeps
                                // improving); give it a progressively larger
                                // partial profile so it stops defeating the
                                // bound. Capacity doubles per recomputation,
                                // capped to bound memory.
                                let capacity = (rows_ref[i].entries.len() * 2)
                                    .clamp(config.profile_size, config.profile_size.max(256));
                                let (row, min_dist, min_j) = reseed_row_from_profile(
                                    i, excl, length, profile, means, stds, capacity,
                                );
                                Ok(RecomputedRow {
                                    i,
                                    row,
                                    outcome: RowOutcome {
                                        min_dist,
                                        min_j,
                                        max_lb: f64::INFINITY,
                                        valid: true,
                                    },
                                })
                            })
                            .collect::<Result<Vec<RecomputedRow>>>()
                    };
                    let results: Vec<Result<Vec<RecomputedRow>>> = if workers <= 1 {
                        vec![recompute_chunk(&todo, &mut mass[0])]
                    } else {
                        // Pool workers take their chunk's scratch through a
                        // Mutex (one uncontended acquisition per chunk per
                        // length step).
                        let chunks: Vec<&[usize]> = todo.chunks(chunk_len).collect();
                        let scratches: Vec<std::sync::Mutex<&mut ProfileScratch>> =
                            mass.iter_mut().take(chunks.len()).map(std::sync::Mutex::new).collect();
                        pool.run(chunks.len(), |w| {
                            let mut ms = scratches[w].lock().expect("scratch lock poisoned");
                            recompute_chunk(chunks[w], &mut ms)
                        })
                    };
                    // The untouched rows' entries must carry the current
                    // dots before the table is rebuilt from the rows.
                    write_back_dots(offsets, qt, rows);
                    needs_rebuild = true;
                    // Contiguous chunks of an ascending `todo` concatenate
                    // back in ascending row order — the same order the
                    // serial loop used.
                    for chunk in results {
                        for r in chunk? {
                            rows[r.i] = r.row;
                            outcomes[r.i] = r.outcome;
                            if r.outcome.min_j != usize::MAX {
                                candidates.push(MotifPair::new(
                                    r.i,
                                    r.outcome.min_j,
                                    r.outcome.min_dist,
                                    length,
                                ));
                            }
                        }
                    }
                }
            }

            let pairs = if recomputed_rows > 0 {
                select_top_k(&candidates, config.k, excl)
            } else {
                selection
            };
            let recompute_elapsed = recompute_started.elapsed();
            timings.stage2_recompute += recompute_elapsed;
            step.recompute += recompute_elapsed;

            // No re-seed happened: the overlapped advance (if any) is
            // valid — join it and promote at the next step.
            let drain_started = std::time::Instant::now();
            if let Some(handle) = advance.take() {
                handle.wait();
                *next_ready = !needs_rebuild;
            }
            let drain_elapsed = drain_started.elapsed();
            timings.stage2_advance += drain_elapsed;
            step.advance += drain_elapsed;

            Ok((
                LengthResult {
                    length,
                    pairs,
                    stats: LengthStats {
                        valid_rows,
                        invalid_rows,
                        recomputed_rows,
                        min_lb_abs,
                        stomp_fallback: false,
                    },
                },
                needs_rebuild,
            ))
        })?
    };
    if pipelined {
        // Every exit path of the scope joins the overlapped batch, so the
        // shadow statistics are complete. They depend only on the
        // immutable prefix sums — valid even when the *dot* shadow was
        // discarded by a re-seed or superseded by the STOMP fallback.
        *stats_next_for = length + 1;
    }
    if needs_rebuild {
        dots.build(rows);
    }
    timings.per_length.push(step);

    // Metrics flush — one relaxed add per counter per length step.
    let s = result.stats;
    obs::count!(stage2_lengths, 1);
    obs::count!(stage2_dot_advances, dot_advances);
    obs::count!(stage2_valid_rows, s.valid_rows as u64);
    obs::count!(stage2_invalid_rows, s.invalid_rows as u64);
    obs::count!(stage2_recomputed_rows, s.recomputed_rows as u64);
    if s.stomp_fallback {
        obs::count!(stage2_stomp_fallback, 1);
    }
    Ok(result)
}

/// Re-seeds one recomputed row's partial profile from its exact MASS
/// distance profile at `length`: every admissible candidate is offered to
/// a fresh selector of `capacity`, prefiltered by the selector's running
/// rejection threshold exactly like the stage-1 kernel — a candidate with
/// `ρ < threshold` is provably rejected, so its dot-product recovery and
/// offer are skipped and the selector is credited instead
/// ([`TopRhoSelector::count_rejected`]), keeping the offered count (and
/// hence the row's truncation flag) exact. Returns the re-seeded row plus
/// the profile minimum `(min_dist, min_j)`.
///
/// The kept set is a pure function of the offered multiset under
/// "(ρ desc, offset asc)" (see [`crate::partial`]), so the prefiltered
/// row is byte-identical to offering every candidate — pinned by
/// `reseed_prefilter_is_byte_identical_to_offering_all` below.
pub(crate) fn reseed_row_from_profile(
    i: usize,
    excl: usize,
    length: usize,
    profile: &[f64],
    means: &[f64],
    stds: &[f64],
    capacity: usize,
) -> (PartialRow, f64, usize) {
    let lf = length as f64;
    let mut selector = TopRhoSelector::new(capacity);
    let mut thresh = f64::NEG_INFINITY;
    let mut min_dist = f64::INFINITY;
    let mut min_j = usize::MAX;
    for (j, &d) in profile.iter().enumerate() {
        if i.abs_diff(j) <= excl {
            continue;
        }
        if d < min_dist {
            min_dist = d;
            min_j = j;
        }
        let rho = pearson_from_dist(d, length);
        if rho < thresh {
            selector.count_rejected(1);
        } else {
            // Recover the dot product so the incremental updates can
            // continue from the new base length — only for candidates
            // that actually reach the selector.
            let qt = lf * (rho * stds[i] * stds[j] + means[i] * means[j]);
            selector.offer(j, rho, qt);
            thresh = selector.threshold();
        }
    }
    (selector.into_row(length), min_dist, min_j)
}

/// Greedy top-k selection with pair deduplication (same policy as
/// `valmod_mp::motif::top_k_pairs`). Shared with the screening tier,
/// which ranks by lower bound instead of exact distance.
pub(crate) fn select_top_k(candidates: &[MotifPair], k: usize, exclusion: usize) -> Vec<MotifPair> {
    let mut sorted: Vec<MotifPair> = candidates.to_vec();
    sorted.sort_by(|x, y| {
        x.distance
            .partial_cmp(&y.distance)
            .expect("distances are never NaN")
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    let mut selected: Vec<MotifPair> = Vec::with_capacity(k);
    for cand in sorted {
        if selected.len() == k {
            break;
        }
        if selected.iter().any(|s| cand.overlaps(s, exclusion)) {
            continue;
        }
        selected.push(cand);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_mp::stomp::stomp;
    use valmod_series::gen;

    /// Exact reference: top-k pairs per length via plain STOMP.
    fn brute_per_length(series: &[f64], config: &ValmodConfig) -> Vec<(usize, Vec<MotifPair>)> {
        (config.l_min..=config.l_max)
            .map(|l| {
                let mp = stomp(series, l, config.exclusion(l)).unwrap();
                (l, top_k_pairs(&mp, config.k))
            })
            .collect()
    }

    fn assert_matches_brute(series: &[f64], config: &ValmodConfig) {
        let out = run_valmod(series, config).unwrap();
        let brute = brute_per_length(series, config);
        assert_eq!(out.per_length.len(), brute.len());
        for (res, (l, expect)) in out.per_length.iter().zip(&brute) {
            assert_eq!(res.length, *l);
            assert_eq!(
                res.pairs.len(),
                expect.len(),
                "pair count differs at length {l}: {:?} vs {:?}",
                res.pairs,
                expect
            );
            for (got, want) in res.pairs.iter().zip(expect) {
                // Offsets can differ between ties; distances must agree.
                assert!(
                    (got.distance - want.distance).abs() < 1e-6,
                    "distance mismatch at length {l}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_walk() {
        let series = gen::random_walk(400, 42);
        assert_matches_brute(&series, &ValmodConfig::new(16, 32).with_k(3));
    }

    #[test]
    fn matches_brute_force_on_ecg() {
        let series = gen::ecg(500, &gen::EcgConfig::default(), 11);
        assert_matches_brute(&series, &ValmodConfig::new(24, 40).with_k(5));
    }

    #[test]
    fn matches_brute_force_on_astro() {
        let series = gen::astro(450, &gen::AstroConfig::default(), 23);
        assert_matches_brute(&series, &ValmodConfig::new(12, 28).with_k(4));
    }

    #[test]
    fn matches_brute_force_with_tiny_profile_size() {
        // p = 1 maximizes pruning failures, stressing the MASS fallback.
        let series = gen::random_walk(300, 77);
        assert_matches_brute(&series, &ValmodConfig::new(10, 24).with_k(3).with_profile_size(1));
    }

    #[test]
    fn matches_brute_force_with_flat_regions() {
        let mut series = gen::white_noise(300, 5, 1.0);
        for v in &mut series[100..160] {
            *v = 1.5; // forces the STOMP fallback at every length
        }
        let config = ValmodConfig::new(8, 16).with_k(2);
        let out = run_valmod(&series, &config).unwrap();
        assert!(out.per_length.iter().skip(1).all(|r| r.stats.stomp_fallback));
        assert_matches_brute(&series, &config);
    }

    #[test]
    fn planted_motif_dominates_valmap() {
        let pattern: Vec<f64> =
            (0..48).map(|i| (i as f64 / 48.0 * std::f64::consts::TAU * 2.0).sin()).collect();
        let (series, truth) = gen::planted_pair(2500, &pattern, &[400, 1700], 0.01, 3);
        let config = ValmodConfig::new(32, 56).with_k(3);
        let out = run_valmod(&series, &config).unwrap();
        let (i, j, l, _dn) = out.valmap.best_entry().unwrap();
        let (lo, hi) = (i.min(j), i.max(j));
        assert!(lo.abs_diff(truth.offsets[0]) <= l, "found offset {lo}");
        assert!(hi.abs_diff(truth.offsets[1]) <= l, "found offset {hi}");
    }

    #[test]
    fn valmap_checkpoints_cover_every_length() {
        let series = gen::sine_mix(600, &[(45.0, 1.0)], 0.1, 9);
        let config = ValmodConfig::new(16, 24);
        let out = run_valmod(&series, &config).unwrap();
        assert_eq!(out.valmap.checkpoints.len(), 24 - 16);
        for (cp, l) in out.valmap.checkpoints.iter().zip(17..=24) {
            assert_eq!(cp.length, l);
        }
    }

    #[test]
    fn pruning_actually_prunes_on_friendly_data() {
        // On a strongly periodic series the base motifs stay motifs as the
        // length grows, so most rows should be certified without
        // recomputation at most lengths.
        let series = gen::sine_mix(2000, &[(80.0, 1.0), (160.0, 0.5)], 0.02, 4);
        let config = ValmodConfig::new(64, 96).with_k(1);
        let out = run_valmod(&series, &config).unwrap();
        let total_rows: usize =
            out.per_length.iter().skip(1).map(|r| r.stats.valid_rows + r.stats.invalid_rows).sum();
        let recomputed: usize =
            out.per_length.iter().skip(1).map(|r| r.stats.recomputed_rows).sum();
        assert!(
            recomputed * 4 < total_rows,
            "expected <25% recomputation, got {recomputed}/{total_rows}"
        );
    }

    #[test]
    fn rejects_invalid_configurations() {
        let series = gen::random_walk(100, 1);
        assert!(run_valmod(&series, &ValmodConfig::new(64, 32)).is_err());
        assert!(run_valmod(&series, &ValmodConfig::new(90, 99)).is_err());
    }

    #[test]
    fn best_per_length_aligns_with_results() {
        let series = gen::ecg(400, &gen::EcgConfig::default(), 2);
        let out = run_valmod(&series, &ValmodConfig::new(16, 20)).unwrap();
        let best = out.best_per_length();
        assert_eq!(best.len(), 5);
        for (b, r) in best.iter().zip(&out.per_length) {
            assert_eq!(*b, r.pairs.first().copied());
        }
    }

    /// The stage-2 re-seed prefilter against offering every candidate:
    /// byte-identical rows (entries, qt dots, truncation flag — the flag
    /// is a function of the exact offered count, so this also pins the
    /// `count_rejected` bookkeeping) and identical profile minima, across
    /// capacities small enough to reject most of the profile.
    #[test]
    fn reseed_prefilter_is_byte_identical_to_offering_all() {
        let length = 16usize;
        let lf = length as f64;
        let m = 300usize;
        let hash = |x: usize, s: u64| {
            (((x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(s)) % 1000) as f64
        };
        // Distances in the valid z-normalized range [0, 2√ℓ], with ties.
        let profile: Vec<f64> = (0..m).map(|j| 2.0 * lf.sqrt() * hash(j, 7) / 1000.0).collect();
        let means: Vec<f64> = (0..m).map(|j| hash(j, 13) / 100.0 - 5.0).collect();
        let stds: Vec<f64> = (0..m).map(|j| hash(j, 29) / 1000.0 + 0.05).collect();
        for (i, excl, capacity) in [(0usize, 4usize, 2usize), (150, 8, 4), (299, 4, 64), (17, 0, 1)]
        {
            let (row, min_dist, min_j) =
                reseed_row_from_profile(i, excl, length, &profile, &means, &stds, capacity);

            // Reference: offer everything, no prefilter.
            let mut selector = TopRhoSelector::new(capacity);
            let mut want_min = f64::INFINITY;
            let mut want_j = usize::MAX;
            for (j, &d) in profile.iter().enumerate() {
                if i.abs_diff(j) <= excl {
                    continue;
                }
                if d < want_min {
                    want_min = d;
                    want_j = j;
                }
                let rho = pearson_from_dist(d, length);
                let qt = lf * (rho * stds[i] * stds[j] + means[i] * means[j]);
                selector.offer(j, rho, qt);
            }
            let want = selector.into_row(length);

            assert_eq!(min_dist.to_bits(), want_min.to_bits(), "min at i={i}");
            assert_eq!(min_j, want_j, "min_j at i={i}");
            assert_eq!(row.truncated, want.truncated, "truncation flag at i={i}");
            assert_eq!(row.entries.len(), want.entries.len(), "kept count at i={i}");
            for (a, b) in row.entries.iter().zip(&want.entries) {
                assert_eq!(a.j, b.j, "entry offset at i={i}");
                assert_eq!(a.rho_base.to_bits(), b.rho_base.to_bits(), "entry rho at i={i}");
                assert_eq!(a.qt.to_bits(), b.qt.to_bits(), "entry qt at i={i}");
            }
        }
    }
}
