#![warn(missing_docs)]

//! # VALMOD — Variable-Length Motif Discovery
//!
//! Exact discovery of the top-k motif pairs for **every** subsequence
//! length in a range `[ℓmin, ℓmax]`, at a cost close to a single
//! fixed-length matrix profile — the algorithm of Linardi, Zhu, Palpanas
//! and Keogh (SIGMOD 2018).
//!
//! The crate provides:
//!
//! * [`run_valmod`] / [`ValmodConfig`] — the algorithm itself (module
//!   [`algo`]), built on the lower bound of module [`lb`] and the partial
//!   distance profiles of module [`partial`];
//! * [`Query`] / [`Quality`] — the typed query surface over the quality
//!   tiers: exact, anytime (seeded previews settling to the exact bits,
//!   module [`anytime`]), and lower-bound screening (module [`screen`]);
//! * [`Valmap`] — the Variable-Length Matrix Profile meta-data structure
//!   `⟨MPn, IP, LP⟩` with its checkpoint log (module [`valmap`]);
//! * [`rank`] — the length-normalized ranking of motifs across lengths;
//! * [`motif_set`] — expansion of a motif pair to all its occurrences;
//! * [`render`] — text views of the above (the demo GUI's equivalent).
//!
//! # Example
//!
//! ```
//! use valmod_core::{run_valmod, ValmodConfig};
//! use valmod_series::gen;
//!
//! // Synthetic ECG: recurring heartbeats of varying duration.
//! let series = gen::ecg(1500, &gen::EcgConfig::default(), 7);
//! let output = run_valmod(&series, &ValmodConfig::new(32, 48).with_k(3)).unwrap();
//!
//! // Exact top-k pairs for every length in the range...
//! assert_eq!(output.per_length.len(), 48 - 32 + 1);
//! // ...and a global, length-invariant ranking.
//! let ranking = output.ranking();
//! assert!(!ranking.is_empty());
//! ```

pub mod algo;
pub mod anytime;
pub mod config;
pub mod discord;
pub mod kernel;
pub mod lb;
pub mod motif_set;
pub mod partial;
pub mod query;
pub mod rank;
pub mod render;
mod scratch;
pub mod screen;
#[doc(hidden)]
pub mod testkit;
pub mod valmap;

pub use algo::{
    run_valmod, run_valmod_observed, LengthResult, LengthStats, StageTimings, StepTimings,
    ValmodOutput,
};
pub use anytime::AnytimePreview;
pub use config::ValmodConfig;
pub use discord::{variable_length_discords, Discord, LengthDiscords};
pub use lb::LbRowContext;
pub use motif_set::{expand_motif_set, MotifSet, Occurrence};
pub use query::{parse_quality, Quality, Query, QueryOutcome, DEFAULT_ANYTIME_BUDGET};
pub use rank::{rank_and_dedupe, rank_pairs, RankedMotif};
pub use screen::{screen_series, ScreenCandidate, ScreenLength, ScreenReport};
pub use valmap::{Valmap, ValmapCheckpoint, ValmapUpdate};
