//! Stage-2 working state: per-run buffers recycled across length steps,
//! including the double-buffered flattened dot-product table that makes
//! the two-stage software pipeline possible.
//!
//! # Why a flattened table
//!
//! Stage 2 stores one running dot product per partial-profile entry. The
//! entries live row-by-row inside [`PartialRow`]s — convenient for
//! ownership, terrible for the advance loop, which touches every entry of
//! every row once per length. [`DotTable`] keeps the same data in
//! structure-of-arrays form (`offsets`/`j`/`qt`), so the advance is one
//! contiguous sweep the SIMD kernel
//! ([`crate::kernel::advance_entry_dots`]) can chew through, and — the
//! pipelining point — **double-buffered**: while classification of length
//! `ℓ` reads `qt`, a concurrently submitted batch writes the dots of
//! `ℓ+1` into `qt_next`. The two stages share no mutable state, so they
//! overlap on the worker pool without locks; a MASS re-seed (which
//! replaces whole rows) is the one event that invalidates the shadow and
//! forces the drain-and-rebuild below.
//!
//! The table is authoritative for dot values during stage 2; the `qt`
//! fields inside the rows' entries are only synchronized back
//! ([`DotTable::write_back`]) at re-seed boundaries, where row shapes
//! change anyway.

use valmod_mp::mass::ProfileScratch;

use crate::partial::PartialRow;

/// Classification outcome of one row at one length.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowOutcome {
    pub min_dist: f64,
    pub min_j: usize,
    pub max_lb: f64,
    pub valid: bool,
}

impl RowOutcome {
    pub(crate) const EMPTY: Self =
        Self { min_dist: f64::INFINITY, min_j: usize::MAX, max_lb: f64::INFINITY, valid: true };
}

/// The flattened, double-buffered dot-product store (see module docs).
#[derive(Debug, Default)]
pub(crate) struct DotTable {
    /// Row `i`'s entries occupy `offsets[i]..offsets[i + 1]`.
    pub offsets: Vec<usize>,
    /// Candidate offsets, flattened in row-entry order.
    pub j: Vec<u32>,
    /// Current dot products (valid for the length last advanced to).
    pub qt: Vec<f64>,
    /// Shadow buffer the next length's dots are advanced into.
    pub qt_next: Vec<f64>,
    /// Whether `qt_next` already holds the dots of the *next* length
    /// (set when a pipelined advance batch was drained successfully).
    pub next_ready: bool,
    /// Whether the table has been built from the rows at all.
    pub built: bool,
}

impl DotTable {
    /// (Re)builds the table from the rows' entries — at stage-2 entry and
    /// after a MASS re-seed changed row shapes. Invalidates the shadow.
    pub(crate) fn build(&mut self, rows: &[PartialRow]) {
        let total: usize = rows.iter().map(|r| r.entries.len()).sum();
        self.offsets.clear();
        self.offsets.reserve(rows.len() + 1);
        self.j.clear();
        self.j.reserve(total);
        self.qt.clear();
        self.qt.reserve(total);
        self.offsets.push(0);
        for row in rows {
            for e in &row.entries {
                self.j.push(e.j);
                self.qt.push(e.qt);
            }
            self.offsets.push(self.j.len());
        }
        self.qt_next.clear();
        self.qt_next.resize(total, 0.0);
        self.next_ready = false;
        self.built = true;
    }

    /// Promotes the shadow buffer to current (the cheap half of a
    /// pipelined length step).
    pub(crate) fn promote_next(&mut self) {
        std::mem::swap(&mut self.qt, &mut self.qt_next);
        self.next_ready = false;
    }
}

/// Writes the table's current dot products back into the rows' entries,
/// so a rebuild after re-seeding sees every untouched row's dots exactly
/// where the pre-table code kept them. Free-standing (rather than a
/// `DotTable` method) because it runs while the table's buffers are
/// split-borrowed by an in-flight advance batch — only `offsets` and `qt`
/// are needed, both shared.
pub(crate) fn write_back_dots(offsets: &[usize], qt: &[f64], rows: &mut [PartialRow]) {
    for (i, row) in rows.iter_mut().enumerate() {
        let segment = &qt[offsets[i]..offsets[i + 1]];
        for (e, &dot) in row.entries.iter_mut().zip(segment) {
            e.qt = dot;
        }
    }
}

/// Stage-2 buffers allocated once per run and recycled across length
/// steps; `mass` holds one MASS scratch per recomputation worker.
///
/// The window statistics are double-buffered like the dot table: the
/// overlapped advance batch of length `ℓ` also prefetches the means and
/// standard deviations of `ℓ+1` into the shadow buffers, and the next
/// step swaps them in instead of paying two pool passes. Unlike the dot
/// shadow, the statistics read only the immutable prefix sums — no
/// re-seed or fallback ever invalidates them, so `stats_next_for` is the
/// sole validity condition.
#[derive(Default)]
pub(crate) struct StepScratch {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
    /// Shadow buffers the next length's window statistics are prefetched
    /// into by the overlapped stage-2 batch.
    pub means_next: Vec<f64>,
    pub stds_next: Vec<f64>,
    /// The length `means_next`/`stds_next` currently hold statistics for
    /// (0 = nothing prefetched).
    pub stats_next_for: usize,
    pub outcomes: Vec<RowOutcome>,
    pub mass: Vec<ProfileScratch>,
    pub dots: DotTable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::TopRhoSelector;

    fn row(base_len: usize, entries: &[(usize, f64, f64)]) -> PartialRow {
        let mut sel = TopRhoSelector::new(entries.len().max(1));
        for &(j, rho, qt) in entries {
            sel.offer(j, rho, qt);
        }
        sel.into_row(base_len)
    }

    #[test]
    fn build_flattens_rows_in_entry_order() {
        let rows =
            vec![row(8, &[(3, 0.9, 1.0), (5, 0.5, 2.0)]), row(8, &[]), row(8, &[(0, 0.1, 3.0)])];
        let mut table = DotTable::default();
        table.build(&rows);
        assert_eq!(table.offsets, vec![0, 2, 2, 3]);
        assert_eq!(table.j, vec![3, 5, 0]);
        assert_eq!(table.qt, vec![1.0, 2.0, 3.0]);
        assert_eq!(table.qt_next.len(), 3);
        assert!(table.built);
        assert!(!table.next_ready);
    }

    #[test]
    fn write_back_round_trips_through_build() {
        let mut rows = vec![row(8, &[(3, 0.9, 1.0), (5, 0.5, 2.0)]), row(8, &[(1, 0.2, 4.0)])];
        let mut table = DotTable::default();
        table.build(&rows);
        table.qt.copy_from_slice(&[10.0, 20.0, 40.0]);
        write_back_dots(&table.offsets, &table.qt, &mut rows);
        assert_eq!(rows[0].entries[0].qt, 10.0);
        assert_eq!(rows[0].entries[1].qt, 20.0);
        assert_eq!(rows[1].entries[0].qt, 40.0);
        let mut rebuilt = DotTable::default();
        rebuilt.build(&rows);
        assert_eq!(rebuilt.qt, table.qt);
        assert_eq!(rebuilt.j, table.j);
    }

    #[test]
    fn promote_swaps_the_shadow_in() {
        let rows = vec![row(8, &[(3, 0.9, 1.0)])];
        let mut table = DotTable::default();
        table.build(&rows);
        table.qt_next[0] = 7.5;
        table.next_ready = true;
        table.promote_next();
        assert_eq!(table.qt, vec![7.5]);
        assert!(!table.next_ready);
    }
}
