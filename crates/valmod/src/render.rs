//! Text rendering of series, profiles and VALMAP — the suite's stand-in
//! for the demo's Python GUI (paper Figures 4 and 5).
//!
//! Everything renders to plain strings so the CLI, the examples and the
//! docs can show the same views the demo showed on screen: the data
//! series, the (normalized) matrix profile with its valleys, the length
//! profile, and the checkpoint log of VALMAP updates.

use crate::valmap::Valmap;

/// Characters used for vertical resolution, coarsest to finest.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a numeric sequence as a unicode sparkline of at most `width`
/// characters (the sequence is min/max bucketed when longer). Infinite
/// values render as spaces.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(width.min(values.len()));
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    let buckets = width.min(values.len());
    let mut out = String::with_capacity(buckets * 3);
    for b in 0..buckets {
        let start = b * values.len() / buckets;
        let end = ((b + 1) * values.len() / buckets).max(start + 1);
        let bucket = &values[start..end];
        // Represent each bucket by its mean of finite values.
        let fin: Vec<f64> = bucket.iter().copied().filter(|v| v.is_finite()).collect();
        if fin.is_empty() {
            out.push(' ');
            continue;
        }
        let mean = fin.iter().sum::<f64>() / fin.len() as f64;
        let t = ((mean - lo) / span).clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let idx = ((t * (BARS.len() - 1) as f64).round() as usize).min(BARS.len() - 1);
        out.push(BARS[idx]);
    }
    out
}

/// Renders VALMAP as the demo's analysis pane: the normalized matrix
/// profile sparkline, the length-profile sparkline, the best entry, and
/// the per-length update counts (the "checkpoints").
#[must_use]
pub fn render_valmap(valmap: &Valmap, width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("VALMAP ({} entries, l_min = {})\n", valmap.len(), valmap.l_min));
    out.push_str("MPn  |");
    let lp_float: Vec<f64> = valmap.lp.iter().map(|&l| l as f64).collect();
    out.push_str(&sparkline(&valmap.mpn, width));
    out.push_str("|\nLP   |");
    out.push_str(&sparkline(&lp_float, width));
    out.push_str("|\n");
    if let Some((i, j, l, dn)) = valmap.best_entry() {
        out.push_str(&format!(
            "best motif: offsets ({i}, {j}), length {l}, normalized distance {dn:.4}\n"
        ));
    } else {
        out.push_str("best motif: none (no admissible matches)\n");
    }
    out.push_str(&format!(
        "checkpoints: {} lengths, {} total updates\n",
        valmap.checkpoints.len(),
        valmap.total_updates()
    ));
    for cp in &valmap.checkpoints {
        if cp.updates.is_empty() {
            continue;
        }
        out.push_str(&format!("  length {:>5}: {:>6} updates\n", cp.length, cp.updates.len()));
    }
    out
}

/// Renders a labelled series snippet above its profile, mimicking the
/// paper's Figure 1 layout (data on top, profile underneath, aligned).
#[must_use]
pub fn render_series_with_profile(
    series_label: &str,
    series: &[f64],
    profile_label: &str,
    profile: &[f64],
    width: usize,
) -> String {
    format!(
        "{series_label:<12}|{}|\n{profile_label:<12}|{}|\n",
        sparkline(series, width),
        sparkline(profile, width),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_mp::{MatrixProfile, MotifPair};

    #[test]
    fn sparkline_maps_extremes_to_extreme_bars() {
        let s = sparkline(&[0.0, 1.0], 2);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_handles_empty_flat_and_infinite() {
        assert!(sparkline(&[], 10).is_empty());
        assert!(sparkline(&[1.0, 2.0], 0).is_empty());
        // Flat input: all same bar, no panic on zero span.
        let flat = sparkline(&[5.0; 4], 4);
        assert_eq!(flat.chars().count(), 4);
        // All-infinite input renders blanks.
        let inf = sparkline(&[f64::INFINITY; 3], 3);
        assert_eq!(inf, "   ");
    }

    #[test]
    fn sparkline_buckets_long_input() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline(&values, 10);
        assert_eq!(s.chars().count(), 10);
        // Monotone input -> non-decreasing bars.
        let levels: Vec<usize> =
            s.chars().map(|c| BARS.iter().position(|&b| b == c).unwrap()).collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn render_valmap_mentions_key_facts() {
        let mut mp = MatrixProfile::unfilled(16, 4, 8);
        for i in 0..8 {
            mp.offer(i, 2.0 + i as f64, (i + 5) % 8);
        }
        let mut v = crate::valmap::Valmap::from_base_profile(&mp);
        v.apply_length(20, &[MotifPair::new(0, 5, 0.4, 20)]);
        let text = render_valmap(&v, 40);
        assert!(text.contains("VALMAP (8 entries, l_min = 16)"));
        assert!(text.contains("best motif"));
        assert!(text.contains("length    20:"));
    }

    #[test]
    fn render_series_with_profile_aligns_rows() {
        let out = render_series_with_profile("ECG", &[0.0, 1.0, 0.0], "MP", &[1.0, 0.5, 1.0], 3);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }
}
