//! VALMAP — the Variable-Length Matrix Profile.
//!
//! The paper defines VALMAP as a triple
//! `⟨MPn ∈ ℝ^{|D|−ℓmin+1}, IP ∈ ℕ^{...}, LP ∈ ℕ^{...}⟩`:
//! for each subsequence offset, the *length-normalized* distance to the
//! best match found at **any** length processed so far, the offset of that
//! match, and the length at which it was found. It starts as the
//! length-normalized matrix profile at `ℓmin` (with a flat length profile)
//! and is refined with the top-k motif pairs of every longer length: an
//! entry is overwritten whenever a longer pattern achieves a smaller
//! normalized distance — revealing either a new event or the same event
//! lasting longer.
//!
//! Every update is recorded in a checkpoint log, which is what the demo's
//! GUI visualizes (a slider over lengths replays the log).

use serde::Serialize;
use valmod_mp::{MatrixProfile, MotifPair};
use valmod_series::znorm::length_normalized;

/// One applied VALMAP entry update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ValmapUpdate {
    /// Entry (subsequence offset) that improved.
    pub offset: usize,
    /// Offset of the new best match.
    pub match_offset: usize,
    /// The new length-normalized distance.
    pub normalized_distance: f64,
}

/// One length step's worth of VALMAP updates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValmapCheckpoint {
    /// Subsequence length whose motif pairs caused these updates.
    pub length: usize,
    /// The updates applied at this length, in application order.
    pub updates: Vec<ValmapUpdate>,
}

/// A reconstructed VALMAP state `(MPn, IP, LP)` as of some length — the
/// return type of [`Valmap::as_of_length`].
pub type ValmapSnapshot = (Vec<f64>, Vec<Option<usize>>, Vec<usize>);

/// The Variable-Length Matrix Profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Valmap {
    /// `ℓmin` — the length the structure was initialized from.
    pub l_min: usize,
    /// `MPn` — length-normalized distance to the best match over all
    /// processed lengths.
    pub mpn: Vec<f64>,
    /// `IP` — offset of that best match (`None` where no admissible match
    /// exists).
    pub ip: Vec<Option<usize>>,
    /// `LP` — length at which the best match was found.
    pub lp: Vec<usize>,
    /// The base (ℓmin) normalized profile, kept so the update log can be
    /// replayed from scratch.
    base_mpn: Vec<f64>,
    base_ip: Vec<Option<usize>>,
    /// Update log, one checkpoint per processed length (including empty
    /// ones, so checkpoints align with the length range).
    pub checkpoints: Vec<ValmapCheckpoint>,
}

impl Valmap {
    /// Initializes VALMAP from the base-length matrix profile: normalized
    /// distances, its index profile, and a flat length profile — exactly
    /// the fixed-length special case described in the paper.
    #[must_use]
    pub fn from_base_profile(mp: &MatrixProfile) -> Self {
        let mpn = mp.length_normalized_values();
        Self {
            l_min: mp.window,
            base_mpn: mpn.clone(),
            base_ip: mp.indices.clone(),
            mpn,
            ip: mp.indices.clone(),
            lp: vec![mp.window; mp.len()],
            checkpoints: Vec::new(),
        }
    }

    /// Number of entries (`|D| − ℓmin + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.mpn.len()
    }

    /// Whether the structure has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mpn.is_empty()
    }

    /// Applies the top-k motif pairs of one length and records the
    /// checkpoint. Each pair updates both of its members' entries when the
    /// length-normalized distance improves on the stored one.
    pub fn apply_length(&mut self, length: usize, pairs: &[MotifPair]) {
        let mut updates = Vec::new();
        for pair in pairs {
            debug_assert_eq!(pair.length, length);
            let dn = length_normalized(pair.distance, length);
            for (me, other) in [(pair.a, pair.b), (pair.b, pair.a)] {
                if me < self.mpn.len() && dn < self.mpn[me] {
                    self.mpn[me] = dn;
                    self.ip[me] = Some(other);
                    self.lp[me] = length;
                    updates.push(ValmapUpdate {
                        offset: me,
                        match_offset: other,
                        normalized_distance: dn,
                    });
                }
            }
        }
        self.checkpoints.push(ValmapCheckpoint { length, updates });
    }

    /// The entry with the smallest normalized distance:
    /// `(offset, match offset, length, normalized distance)`.
    #[must_use]
    pub fn best_entry(&self) -> Option<(usize, usize, usize, f64)> {
        let (i, &dn) = self
            .mpn
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("MPn entries are never NaN"))?;
        let j = self.ip[i]?;
        dn.is_finite().then_some((i, j, self.lp[i], dn))
    }

    /// State of the structure as of a given length: replays the update log
    /// up to and including `length` from the base profile — the demo GUI's
    /// "slider" view. Returns `(MPn, IP, LP)`, or `None` when `length`
    /// precedes `ℓmin`.
    #[must_use]
    pub fn as_of_length(&self, length: usize) -> Option<ValmapSnapshot> {
        if length < self.l_min {
            return None;
        }
        let mut mpn = self.base_mpn.clone();
        let mut ip = self.base_ip.clone();
        let mut lp = vec![self.l_min; self.len()];
        for cp in self.checkpoints.iter().take_while(|cp| cp.length <= length) {
            for u in &cp.updates {
                mpn[u.offset] = u.normalized_distance;
                ip[u.offset] = Some(u.match_offset);
                lp[u.offset] = cp.length;
            }
        }
        Some((mpn, ip, lp))
    }

    /// Total number of entry updates across all checkpoints.
    #[must_use]
    pub fn total_updates(&self) -> usize {
        self.checkpoints.iter().map(|c| c.updates.len()).sum()
    }

    /// Serializes the triple as CSV (`offset,mpn,ip,lp`, header included) —
    /// the hand-off format for external plotting front-ends (the demo's
    /// Python GUI consumed exactly this information).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.len() * 24 + 16);
        out.push_str("offset,mpn,ip,lp\n");
        for i in 0..self.len() {
            let mpn =
                if self.mpn[i].is_finite() { format!("{:.6}", self.mpn[i]) } else { String::new() };
            let ip = self.ip[i].map(|j| j.to_string()).unwrap_or_default();
            out.push_str(&format!("{i},{mpn},{ip},{}\n", self.lp[i]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_profile() -> MatrixProfile {
        let mut mp = MatrixProfile::unfilled(16, 4, 6);
        for i in 0..6 {
            mp.offer(i, 4.0 + i as f64, (i + 5) % 6);
        }
        mp
    }

    #[test]
    fn initialization_matches_fixed_length_case() {
        let mp = base_profile();
        let v = Valmap::from_base_profile(&mp);
        assert_eq!(v.len(), 6);
        assert!(!v.is_empty());
        assert_eq!(v.l_min, 16);
        assert!(v.lp.iter().all(|&l| l == 16));
        // mpn = distance / sqrt(16)
        assert!((v.mpn[0] - 1.0).abs() < 1e-12);
        assert!(v.checkpoints.is_empty());
    }

    #[test]
    fn updates_apply_only_on_improvement() {
        let mp = base_profile();
        let mut v = Valmap::from_base_profile(&mp);
        // Offset 0 has mpn 1.0. A pair with normalized distance 0.5 at
        // length 25 improves it.
        let good = MotifPair::new(0, 3, 2.5, 25);
        // Offset 1 has mpn 1.25; a worse pair must not overwrite.
        let bad = MotifPair::new(1, 4, 10.0, 25);
        v.apply_length(25, &[good, bad]);
        assert!((v.mpn[0] - 0.5).abs() < 1e-12);
        assert_eq!(v.ip[0], Some(3));
        assert_eq!(v.lp[0], 25);
        // Offset 3 (the partner) also improved: 0.5 < 7/4.
        assert_eq!(v.lp[3], 25);
        // Offset 1 untouched.
        assert_eq!(v.lp[1], 16);
        assert_eq!(v.checkpoints.len(), 1);
        let touched: Vec<usize> = v.checkpoints[0].updates.iter().map(|u| u.offset).collect();
        assert_eq!(touched, vec![0, 3]);
    }

    #[test]
    fn best_entry_tracks_global_minimum() {
        let mp = base_profile();
        let mut v = Valmap::from_base_profile(&mp);
        v.apply_length(20, &[MotifPair::new(2, 5, 0.9, 20)]);
        let (i, j, l, dn) = v.best_entry().unwrap();
        assert_eq!((i, j, l), (2, 5, 20));
        assert!((dn - 0.9 / (20.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_log_counts_updates() {
        let mp = base_profile();
        let mut v = Valmap::from_base_profile(&mp);
        v.apply_length(17, &[]);
        v.apply_length(18, &[MotifPair::new(0, 3, 0.1, 18)]);
        assert_eq!(v.checkpoints.len(), 2);
        assert!(v.checkpoints[0].updates.is_empty());
        assert_eq!(v.total_updates(), 2); // both members of the pair
    }

    #[test]
    fn csv_export_is_well_formed() {
        let mp = base_profile();
        let mut v = Valmap::from_base_profile(&mp);
        v.apply_length(20, &[MotifPair::new(2, 5, 0.9, 20)]);
        let csv = v.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "offset,mpn,ip,lp");
        assert_eq!(lines.len(), 1 + v.len());
        // The updated entry carries the new length.
        assert!(lines[3].starts_with("2,") && lines[3].ends_with(",20"));
        // Every row has exactly 3 commas.
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), 3, "bad row {line:?}");
        }
    }

    #[test]
    fn as_of_length_replays_the_log() {
        let mp = base_profile();
        let mut v = Valmap::from_base_profile(&mp);
        v.apply_length(18, &[MotifPair::new(0, 3, 0.1, 18)]);
        v.apply_length(30, &[MotifPair::new(1, 4, 0.1, 30)]);
        let (mpn, ip, lp) = v.as_of_length(20).unwrap();
        assert_eq!(lp[0], 18); // applied at 18 ≤ 20
        assert_eq!(lp[1], 16); // update at 30 not yet visible...
        assert!((mpn[1] - 1.25).abs() < 1e-12); // ...so the base value shows
        assert_eq!(ip[1], Some(0)); // base index profile value
        assert!(mpn[0].is_finite());
        assert!(v.as_of_length(10).is_none());
        // Replaying everything equals the live state.
        let (mpn_all, ip_all, lp_all) = v.as_of_length(usize::MAX).unwrap();
        assert_eq!(mpn_all, v.mpn);
        assert_eq!(ip_all, v.ip);
        assert_eq!(lp_all, v.lp);
    }
}
