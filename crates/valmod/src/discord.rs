//! Variable-length discord discovery — the journal extension of VALMOD
//! (Linardi et al., KAIS 2020 add anomaly search to the same framework).
//!
//! A *discord* is the subsequence farthest from its nearest neighbor: the
//! `argmax` over rows of the row's NN distance. The partial-profile
//! machinery adapts neatly:
//!
//! * the stored minimum of a row's partial profile is an **upper bound** on
//!   its true NN distance (a minimum over a subset);
//! * a *valid* row's stored minimum is its exact NN distance (the lower
//!   bound certifies nothing unstored beats it).
//!
//! So for the top-k discords at a length, walk rows in descending
//! upper-bound order, resolving non-valid rows exactly (MASS) on demand,
//! and stop as soon as the k-th resolved NN distance is at least every
//! remaining row's upper bound. Rows near motifs — the expensive ones for
//! motif search — have tiny upper bounds and are never touched, which is
//! why discord search prunes even better than motif search.
//!
//! # Parallelism
//!
//! Stage 1 is *identical* to the motif engine's (base profile + partial
//! profiles at `ℓmin`), so it reuses [`crate::algo`]'s diagonal-parallel
//! walk verbatim; the per-length dot-product advance and bound
//! classification chunk across the same persistent worker pool. Both are
//! partition-independent, so — like the motif engine — results are
//! **bit-identical for every thread count**. Only the adaptive resolve
//! loop stays serial: it is an early-exit scan whose whole point is to
//! touch as few rows as possible.

use valmod_mp::mass::DistanceProfiler;
use valmod_mp::stomp::StompEngine;
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::{length_normalized, zdist_from_dot};
use valmod_series::{Result, RollingStats};

use crate::algo::{stage_one, worker_count, MIN_ROWS_PER_WORKER};
use crate::config::ValmodConfig;
use crate::lb::LbRowContext;
use crate::partial::PartialRow;

/// A discord: a subsequence offset with its exact nearest-neighbor
/// distance at a given length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Subsequence offset.
    pub offset: usize,
    /// Exact distance to its nearest non-trivial neighbor.
    pub nn_distance: f64,
    /// Subsequence length.
    pub length: usize,
}

impl Discord {
    /// The length-normalized NN distance (for cross-length ranking; larger
    /// means more anomalous).
    #[must_use]
    pub fn normalized(&self) -> f64 {
        length_normalized(self.nn_distance, self.length)
    }
}

/// Per-length discord results.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthDiscords {
    /// Subsequence length.
    pub length: usize,
    /// Exact top-k discords, descending NN distance.
    pub discords: Vec<Discord>,
    /// Rows resolved exactly (MASS calls) at this length.
    pub resolved_rows: usize,
}

/// Exact top-k discords for every length in the configured range.
///
/// Uses `config.k` as the number of discords per length and
/// `config.profile_size` for the partial profiles, mirroring
/// [`crate::run_valmod`].
///
/// # Errors
///
/// Same validation as [`crate::run_valmod`].
pub fn variable_length_discords(
    series: &[f64],
    config: &ValmodConfig,
) -> Result<Vec<LengthDiscords>> {
    config.validate(series.len())?;
    let l0 = config.l_min;
    let engine = StompEngine::new(series, l0)?;
    let values: Vec<f64> = engine.values().to_vec();
    let stats = RollingStats::new(&values);
    let profiler = DistanceProfiler::new(&values)?;

    // Stage 1: partial profiles at l0, plus the exact profile for l0's
    // discords — the same diagonal-parallel walk as the motif engine
    // (its per-row best under "(distance asc, offset asc)" is exactly the
    // NN distance the discord ranking needs).
    let excl0 = config.exclusion(l0);
    let m0 = engine.num_windows();
    let (base_mp, mut rows) = stage_one(&engine, config);
    let base_nn: Vec<(f64, usize)> = base_mp
        .values
        .iter()
        .zip(&base_mp.indices)
        .map(|(&d, &j)| (d, j.unwrap_or(usize::MAX)))
        .collect();

    let mut results = Vec::with_capacity(config.l_max - l0 + 1);
    results.push(LengthDiscords {
        length: l0,
        discords: top_k_from_exact(&base_nn, l0, excl0, config.k),
        resolved_rows: m0,
    });

    // Stage 2.
    for length in l0 + 1..=config.l_max {
        results.push(step_discords(&values, &stats, &profiler, &mut rows, config, length)?);
    }
    Ok(results)
}

/// Greedy top-k by descending NN distance with an offset exclusion zone.
fn top_k_from_exact(nn: &[(f64, usize)], length: usize, excl: usize, k: usize) -> Vec<Discord> {
    let mut order: Vec<(usize, f64)> = nn
        .iter()
        .enumerate()
        .filter(|(_, (d, _))| d.is_finite())
        .map(|(i, &(d, _))| (i, d))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    select_spread(&order, length, excl, k)
}

fn select_spread(order: &[(usize, f64)], length: usize, excl: usize, k: usize) -> Vec<Discord> {
    let mut selected: Vec<Discord> = Vec::with_capacity(k);
    for &(i, d) in order {
        if selected.len() == k {
            break;
        }
        if selected.iter().any(|s| s.offset.abs_diff(i) <= excl) {
            continue;
        }
        selected.push(Discord { offset: i, nn_distance: d, length });
    }
    selected
}

fn step_discords(
    values: &[f64],
    stats: &RollingStats,
    profiler: &DistanceProfiler,
    rows: &mut [PartialRow],
    config: &ValmodConfig,
    length: usize,
) -> Result<LengthDiscords> {
    let n = values.len();
    let m = n - length + 1;
    let excl = config.exclusion(length);
    let pool = config.pool();
    let row_workers = worker_count(config.threads, m, MIN_ROWS_PER_WORKER);

    // Advance the stored dot products (same recurrence as the motif path);
    // rows are independent, so the advance chunks freely across workers.
    pool.for_each_mut(&mut rows[..m], row_workers, |i, row| {
        for e in &mut row.entries {
            let j = e.j as usize;
            if j < m {
                e.qt = values[i + length - 1].mul_add(values[j + length - 1], e.qt);
            }
        }
    });

    // One fused pass for both window moments (each extra thread scope
    // costs a spawn; see algo.rs's stage-2 notes).
    let mut moments = vec![(0.0, 0.0); m];
    pool.for_each_mut(&mut moments, row_workers, |i, v| {
        *v = (stats.centered_mean(i, length), stats.std(i, length));
    });

    if moments.iter().any(|&(_, std)| std < FLAT_EPS) {
        // Degenerate windows: resolve the whole length exactly.
        let mp = valmod_mp::stomp::stomp(values, length, excl)?;
        let nn: Vec<(f64, usize)> = mp
            .values
            .iter()
            .zip(&mp.indices)
            .map(|(&d, &j)| (d, j.unwrap_or(usize::MAX)))
            .collect();
        return Ok(LengthDiscords {
            length,
            discords: top_k_from_exact(&nn, length, excl, config.k),
            resolved_rows: m,
        });
    }

    // Upper bound (stored minimum) and validity per row — pure per-row
    // reads, chunked across the same workers.
    let rows_ref: &[PartialRow] = rows;
    let moments = &moments[..];
    let mut bounds = vec![(f64::INFINITY, true); m];
    pool.for_each_mut(&mut bounds, row_workers, |i, out| {
        let row = &rows_ref[i];
        let (mean_i, std_i) = moments[i];
        let mut min_d = f64::INFINITY;
        for e in &row.entries {
            let j = e.j as usize;
            if j >= m || i.abs_diff(j) <= excl {
                continue;
            }
            let d = zdist_from_dot(e.qt, length, mean_i, std_i, moments[j].0, moments[j].1);
            min_d = min_d.min(d);
        }
        let max_lb = match row.worst_rho() {
            Some(rho) => LbRowContext::new(stats, i, row.base_len, length).bound(rho),
            None => f64::INFINITY,
        };
        *out = (min_d, min_d <= max_lb);
    });
    let upper = |i: usize| bounds[i].0;
    let valid = |i: usize| bounds[i].1;

    // Resolve rows in descending upper-bound order until the k-th exact
    // discord dominates every remaining upper bound.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| upper(b).partial_cmp(&upper(a)).expect("no NaN").then(a.cmp(&b)));
    let mut exact: Vec<(usize, f64)> = Vec::new();
    let mut resolved_rows = 0;
    // The k-th *spread-deduplicated* exact discord distance: once every
    // remaining row's upper bound falls below it, no unresolved row can
    // enter the final selection (greedy selection by descending distance
    // never revisits earlier picks).
    let mut kth_spread = f64::NEG_INFINITY;
    for &i in &order {
        if kth_spread >= upper(i) {
            break;
        }
        let nn = if valid(i) {
            upper(i)
        } else {
            resolved_rows += 1;
            let profile = profiler.self_profile(i, length)?;
            let mut min_d = f64::INFINITY;
            for (j, &d) in profile.iter().enumerate() {
                if i.abs_diff(j) > excl && d < min_d {
                    min_d = d;
                }
            }
            min_d
        };
        if nn.is_finite() {
            exact.push((i, nn));
            exact.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
            let spread = select_spread(&exact, length, excl, config.k);
            if spread.len() == config.k {
                kth_spread = spread.last().expect("k > 0").nn_distance;
            }
        }
    }

    exact.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    Ok(LengthDiscords {
        length,
        discords: select_spread(&exact, length, excl, config.k),
        resolved_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_mp::motif::top_k_discords;
    use valmod_mp::stomp::stomp;
    use valmod_series::gen;

    fn assert_matches_stomp(series: &[f64], config: &ValmodConfig) {
        let results = variable_length_discords(series, config).unwrap();
        assert_eq!(results.len(), config.l_max - config.l_min + 1);
        for r in &results {
            let mp = stomp(series, r.length, config.exclusion(r.length)).unwrap();
            let expect = top_k_discords(&mp, config.k);
            assert_eq!(r.discords.len(), expect.len(), "count at length {}", r.length);
            for (got, (_, want_d)) in r.discords.iter().zip(&expect) {
                assert!(
                    (got.nn_distance - want_d).abs() < 1e-6,
                    "length {}: {} vs {}",
                    r.length,
                    got.nn_distance,
                    want_d
                );
            }
        }
    }

    #[test]
    fn matches_per_length_stomp_on_random_walk() {
        let series = gen::random_walk(300, 70);
        assert_matches_stomp(&series, &ValmodConfig::new(12, 24).with_k(3));
    }

    #[test]
    fn matches_per_length_stomp_on_ecg() {
        let series = gen::ecg(400, &gen::EcgConfig::default(), 71);
        assert_matches_stomp(&series, &ValmodConfig::new(20, 32).with_k(2));
    }

    #[test]
    fn anomaly_is_found_at_every_length() {
        // A sine with one injected glitch: the discord must cover it.
        let mut series = gen::sine_mix(1200, &[(60.0, 1.0)], 0.02, 12);
        for (t, v) in series[600..640].iter_mut().enumerate() {
            *v += (t as f64 / 40.0 * std::f64::consts::PI).sin() * 2.5;
        }
        let config = ValmodConfig::new(24, 48).with_k(1);
        let results = variable_length_discords(&series, &config).unwrap();
        for r in &results {
            let d = r.discords.first().expect("discord exists");
            assert!(
                d.offset + r.length > 590 && d.offset < 650,
                "discord at length {} misses the glitch: offset {}",
                r.length,
                d.offset
            );
        }
    }

    #[test]
    fn pruning_resolves_few_rows_on_periodic_data() {
        let series = gen::sine_mix(3000, &[(80.0, 1.0)], 0.05, 3);
        let config = ValmodConfig::new(32, 48).with_k(1);
        let results = variable_length_discords(&series, &config).unwrap();
        let resolved: usize = results.iter().skip(1).map(|r| r.resolved_rows).sum();
        let total: usize = results.iter().skip(1).map(|_| series.len() - 32 + 1).sum();
        assert!(
            resolved * 10 < total,
            "discord search should resolve <10% of rows: {resolved}/{total}"
        );
    }

    #[test]
    fn normalized_ranking_is_consistent() {
        let d = Discord { offset: 5, nn_distance: 8.0, length: 16 };
        assert!((d.normalized() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flat_plateau_falls_back_exactly() {
        let mut series = gen::white_noise(250, 8, 1.0);
        for v in &mut series[100..150] {
            *v = 0.0;
        }
        assert_matches_stomp(&series, &ValmodConfig::new(8, 14).with_k(2));
    }
}
