//! Anytime stage 1: the SCRIMP++-style seeded-shuffle diagonal
//! scheduler behind [`Quality::Anytime`](crate::Quality).
//!
//! The eager stage 1 walks every diagonal block of the QT matrix in one
//! pass. The anytime tier walks the *same* blocks — the register-tiled
//! kernel per block, never a scalar fork — but in a seeded shuffled
//! order split into `budget` rounds, emitting after each round an
//! [`AnytimePreview`]: the interim VALMAP built from the cells retired
//! so far, plus a convergence estimate (fraction of cells retired,
//! VALMAP entry churn against the previous round).
//!
//! # Why the settled result is byte-identical
//!
//! Stage 1's merged state is a pure function of the *set* of retired
//! cells, not their order: per-row selectors reduce under the total
//! order "(ρ desc, offset asc)" and per-row bests under "(d asc, offset
//! asc)" (see [`crate::partial`] and [`crate::kernel`]). The shuffled
//! rounds partition exactly the diagonal blocks the eager walk visits,
//! each worker part merges through the same
//! [`Stage1Part::absorb`](crate::kernel) reduction, and the final
//! profile/rows come from the same [`crate::algo::rows_from_part`]
//! tail — so once every block retires, the output bits equal the eager
//! walk's for every seed, budget, SIMD lane width, and worker count
//! (pinned by the `anytime_settles_to_exact` proptest).

use valmod_mp::stomp::StompEngine;
use valmod_mp::MatrixProfile;
use valmod_obs as obs;

use crate::algo::{flat_stage1_cell, rows_from_part, stage1_worker_count};
use crate::config::ValmodConfig;
use crate::kernel::{self, Stage1Part};
use crate::partial::{PartialRow, TopRhoSelector};
use crate::valmap::Valmap;

/// One improving VALMAP preview emitted after an anytime stage-1 round.
#[derive(Debug, Clone)]
pub struct AnytimePreview {
    /// 1-based index of the round that just retired.
    pub round: usize,
    /// Total number of rounds this run is split into (≤ the requested
    /// budget when there are fewer diagonal blocks than rounds).
    pub rounds: usize,
    /// QT cells retired so far, across all rounds.
    pub cells_retired: u64,
    /// Total QT cells stage 1 will retire.
    pub cells_total: u64,
    /// Fraction of VALMAP entries whose (distance bits, match offset)
    /// changed versus the previous round's preview; `1.0` for the first
    /// round. A churn near zero means the preview has stopped moving
    /// even though cells remain.
    pub churn: f64,
    /// The interim VALMAP at `ℓmin`, built from the per-row bests of
    /// every cell retired so far. Settles to the exact base VALMAP.
    pub valmap: Valmap,
}

impl AnytimePreview {
    /// Fraction of stage-1 cells retired — the primary convergence
    /// estimate, in `[0, 1]`.
    #[must_use]
    pub fn convergence(&self) -> f64 {
        if self.cells_total == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cells_retired as f64 / self.cells_total as f64
            }
        }
    }

    /// Whether every diagonal block has retired (the preview VALMAP now
    /// *is* the exact base VALMAP).
    #[must_use]
    pub fn settled(&self) -> bool {
        self.cells_retired == self.cells_total
    }
}

/// `splitmix64` — the seed expander behind the shuffled block order.
/// Small, fast, and dependency-free; preview orders only need to be
/// deterministic and well-spread, not cryptographic.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates shuffle of the diagonal-block starts.
fn shuffle(blocks: &mut [usize], seed: u64) {
    let mut state = seed;
    for i in (1..blocks.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        blocks.swap(i, j);
    }
}

/// Cells on the diagonals of the block starting at `k0` (tile `t`,
/// matrix of `m` windows): each diagonal `k` holds `m − k` cells.
fn block_cells(k0: usize, tile: usize, m: usize) -> u64 {
    (k0..(k0 + tile).min(m)).map(|k| (m - k) as u64).sum()
}

/// Splits the shuffled block list into at most `budget` rounds balanced
/// by *cell* count (blocks near the diagonal's start carry far more
/// cells), so the first preview lands after ≈ `1/budget` of the work
/// regardless of where the shuffle put the heavy blocks.
fn split_rounds(blocks: &[usize], tile: usize, m: usize, budget: usize) -> Vec<Vec<usize>> {
    let total: u64 = blocks.iter().map(|&k0| block_cells(k0, tile, m)).sum();
    let rounds = budget.min(blocks.len()).max(1) as u64;
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut retired: u64 = 0;
    for &k0 in blocks {
        cur.push(k0);
        retired += block_cells(k0, tile, m);
        // Close the round once the cumulative cell count crosses the
        // next 1/rounds boundary (the final round takes the remainder).
        let r = out.len() as u64 + 1;
        if r < rounds && retired * rounds >= total * r {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The anytime tier's scalar worker for series with flat (σ ≈ 0)
/// windows: the listed diagonals through the exact per-cell body the
/// eager flat walk uses ([`flat_stage1_cell`]), one
/// [`StompEngine::walk_diagonals`] pass per diagonal.
fn flat_listed_worker(
    engine: &StompEngine,
    config: &ValmodConfig,
    blocks: &[usize],
    tile: usize,
) -> Stage1Part {
    let l0 = config.l_min;
    let m = engine.num_windows();
    let means = engine.means();
    let stds = engine.stds();
    let mut part = Stage1Part::new(m, config.profile_size);
    for &k0 in blocks {
        for k in k0..(k0 + tile).min(m) {
            // Stride `m` visits exactly the one diagonal `k`.
            engine.walk_diagonals(k, m, |i, j, qt| {
                flat_stage1_cell(&mut part, l0, means, stds, i, j, qt);
            });
        }
    }
    part
}

/// The interim VALMAP after some rounds: the per-row bests accumulated
/// so far, through the same profile/VALMAP constructors the exact path
/// uses, so the settled preview is bitwise the exact base VALMAP.
fn preview_valmap(acc: &Stage1Part, l0: usize, excl: usize, m: usize) -> Valmap {
    let mut mp = MatrixProfile::unfilled(l0, excl, m);
    for i in 0..m {
        if acc.best_j[i] != u32::MAX {
            mp.offer(i, acc.best_d[i], acc.best_j[i] as usize);
        }
    }
    Valmap::from_base_profile(&mp)
}

/// Fraction of VALMAP entries that differ between consecutive previews,
/// comparing distance *bits* and match offsets — the churn estimate.
fn valmap_churn(prev: &Valmap, cur: &Valmap) -> f64 {
    let m = cur.mpn.len();
    if m == 0 {
        return 0.0;
    }
    let changed = (0..m)
        .filter(|&i| prev.mpn[i].to_bits() != cur.mpn[i].to_bits() || prev.ip[i] != cur.ip[i])
        .count();
    #[allow(clippy::cast_precision_loss)]
    {
        changed as f64 / m as f64
    }
}

/// Clamped permille encoding for the convergence/churn gauges.
#[allow(clippy::cast_possible_truncation)]
fn permille(x: f64) -> i64 {
    (x * 1000.0).clamp(0.0, 1000.0) as i64
}

/// Anytime stage 1: walks the diagonal blocks in a seeded shuffled
/// order across at most `budget` rounds, invoking `on_preview` after
/// each, and returns **the same** `(MatrixProfile, Vec<PartialRow>)`
/// bits the eager [`crate::algo::stage_one`] would (see the module
/// docs for the argument).
pub(crate) fn stage_one_anytime(
    engine: &StompEngine,
    config: &ValmodConfig,
    budget: usize,
    on_preview: &mut dyn FnMut(&AnytimePreview),
) -> (MatrixProfile, Vec<PartialRow>) {
    let l0 = config.l_min;
    let m = engine.num_windows();
    let excl = config.exclusion(l0);
    let mut mp = MatrixProfile::unfilled(l0, excl, m);
    let first_diag = excl + 1;
    if first_diag >= m {
        // No admissible pair at all — nothing to preview.
        let rows = (0..m).map(|_| TopRhoSelector::new(config.profile_size).into_row(l0)).collect();
        return (mp, rows);
    }

    // One dispatch decision for the whole stage (the tile grid depends
    // on the lane width), exactly like the eager walk.
    let level = valmod_fft::simd::simd_level();
    let tile = 2 * level.width();
    let mut blocks: Vec<usize> = (first_diag..m).step_by(tile).collect();
    shuffle(&mut blocks, config.seed);
    let rounds = split_rounds(&blocks, tile, m, budget);
    let cells_total: u64 = blocks.iter().map(|&k0| block_cells(k0, tile, m)).sum();

    let num_workers = stage1_worker_count(config, m, first_diag);
    let has_flat = engine.has_flat_windows();

    let mut acc = Stage1Part::new(m, config.profile_size);
    let mut cells_retired: u64 = 0;
    let mut prev_valmap: Option<Valmap> = None;
    let total_rounds = rounds.len();
    for (r, round_blocks) in rounds.iter().enumerate() {
        let workers = num_workers.min(round_blocks.len()).max(1);
        let parts = config.pool().run(workers, |w| {
            // Strided claim of the round's shuffled list: any split of
            // the blocks across workers merges to the same state.
            let mine: Vec<usize> = round_blocks.iter().skip(w).step_by(workers).copied().collect();
            if has_flat {
                flat_listed_worker(engine, config, &mine, tile)
            } else {
                kernel::stage1_walk_listed(engine, &mine, config.profile_size, level)
            }
        });
        for part in &parts {
            acc.absorb(part);
        }
        let round_cells: u64 = round_blocks.iter().map(|&k0| block_cells(k0, tile, m)).sum();
        cells_retired += round_cells;

        let valmap = preview_valmap(&acc, l0, excl, m);
        let churn = prev_valmap.as_ref().map_or(1.0, |prev| valmap_churn(prev, &valmap));
        let preview = AnytimePreview {
            round: r + 1,
            rounds: total_rounds,
            cells_retired,
            cells_total,
            churn,
            valmap,
        };
        obs::count!(anytime_rounds, 1);
        obs::count!(anytime_cells_retired, round_cells);
        obs::metrics().anytime_convergence_permille.set(permille(preview.convergence()));
        obs::metrics().anytime_churn_permille.set(permille(churn));
        on_preview(&preview);
        prev_valmap = Some(preview.valmap);
    }
    debug_assert_eq!(cells_retired, cells_total);

    let rows = rows_from_part(acc, &mut mp, l0);
    (mp, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let base: Vec<usize> = (0..37).map(|q| 5 + q * 16).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b, "same seed, same order");
        let mut c = base.clone();
        shuffle(&mut c, 43);
        assert_ne!(a, c, "different seed moves something");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base, "shuffle is a permutation");
    }

    #[test]
    fn rounds_partition_the_blocks_and_balance_cells() {
        let m = 5000usize;
        let tile = 16usize;
        let first_diag = 13usize;
        let mut blocks: Vec<usize> = (first_diag..m).step_by(tile).collect();
        shuffle(&mut blocks, 7);
        let total: u64 = blocks.iter().map(|&k0| block_cells(k0, tile, m)).sum();
        for budget in [1usize, 2, 4, 9, 1000] {
            let rounds = split_rounds(&blocks, tile, m, budget);
            assert!(rounds.len() <= budget.min(blocks.len()));
            let mut flat: Vec<usize> = rounds.iter().flatten().copied().collect();
            assert_eq!(flat, blocks, "rounds keep the shuffled order");
            flat.sort_unstable();
            let mut want = blocks.clone();
            want.sort_unstable();
            assert_eq!(flat, want, "rounds partition the blocks");
            // The first round retires at most its 1/rounds share plus
            // one block (the boundary crosser).
            let first: u64 = rounds[0].iter().map(|&k0| block_cells(k0, tile, m)).sum();
            let max_block: u64 = blocks.iter().map(|&k0| block_cells(k0, tile, m)).max().unwrap();
            assert!(
                first <= total / rounds.len() as u64 + max_block,
                "budget {budget}: first round {first} of {total}"
            );
        }
    }

    #[test]
    fn permille_clamps() {
        assert_eq!(permille(0.0), 0);
        assert_eq!(permille(0.253), 253);
        assert_eq!(permille(1.0), 1000);
        assert_eq!(permille(7.5), 1000);
        assert_eq!(permille(-0.5), 0);
    }
}
