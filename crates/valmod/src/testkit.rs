//! Test support shared by the in-crate kernel tests and the
//! `kernel_differential` integration harness (hence `#[doc(hidden)]
//! pub`): lane-level enumeration and forcing, byte-level stage-1
//! snapshots, and the end-to-end output checksum.
//!
//! Not a public API — no stability guarantees.

use valmod_fft::simd::{self, LaneWidth, SimdLevel, SimdOverride, SimdOverrideGuard};
use valmod_mp::stomp::StompEngine;

use crate::algo::ValmodOutput;
use crate::kernel;

/// Every kernel variant worth differencing in this process: both
/// portable widths plus whichever packed levels the CPU offers —
/// restricted by the env knobs, so CI's `VALMOD_FORCE_PORTABLE=1` /
/// `VALMOD_FORCE_WIDTH=4` matrix legs exercise exactly the lanes they
/// name (the env wins over [`force_level`]'s override, making the other
/// levels unreachable through dispatch anyway).
#[must_use]
pub fn test_levels() -> Vec<SimdLevel> {
    let forced_w = simd::env_force_width();
    let mut levels = Vec::new();
    if forced_w != Some(LaneWidth::W8) {
        levels.push(SimdLevel::Portable4);
    }
    if forced_w != Some(LaneWidth::W4) {
        levels.push(SimdLevel::Portable8);
    }
    if !simd::env_force_portable() {
        if simd::avx2_available() && forced_w != Some(LaneWidth::W8) {
            levels.push(SimdLevel::Avx2);
        }
        if simd::avx512_available() && forced_w != Some(LaneWidth::W4) {
            levels.push(SimdLevel::Avx512);
        }
    }
    levels
}

/// Forces every dispatch site in the process to `level` for the guard's
/// lifetime (serialized across threads — the guard holds the override
/// lock). Levels from [`test_levels`] resolve exactly; a packed level the
/// CPU lacks degrades to the portable stand-in of the same width, and the
/// env knobs still win, exactly like production dispatch.
#[must_use]
pub fn force_level(level: SimdLevel) -> SimdOverrideGuard {
    let o = match level {
        SimdLevel::Portable4 => SimdOverride { portable: true, width: Some(LaneWidth::W4) },
        SimdLevel::Portable8 => SimdOverride { portable: true, width: Some(LaneWidth::W8) },
        SimdLevel::Avx2 => SimdOverride { portable: false, width: Some(LaneWidth::W4) },
        SimdLevel::Avx512 => SimdOverride { portable: false, width: Some(LaneWidth::W8) },
    };
    simd::override_simd(o)
}

/// One merged stage-1 row, down to the bits: best distance bits, best
/// neighbor offset, the selector's truncation flag (a function of the
/// *exact* offered count — this is what pins the prefilter's bookkeeping),
/// and the kept entries as `(offset, ρ bits, qt bits)` in the canonical
/// "(ρ desc, offset asc)" order.
pub type RowSnapshot = (u64, u32, bool, Vec<(u32, u64, u64)>);

/// Runs the stage-1 kernel at `level` across `num_workers` partitions and
/// merges them exactly as `stage_one` does, returning the byte-level
/// per-row state. Two snapshots compare equal iff the merged stage-1
/// results are bit-for-bit identical.
///
/// # Panics
///
/// Panics when the engine rejects the series (too short, non-finite) or
/// the series has flat windows at `l` — those take the scalar
/// distance-space walk in production and are differenced end-to-end via
/// [`output_checksum`] instead.
#[must_use]
pub fn stage1_snapshot(
    series: &[f64],
    l: usize,
    first_diag: usize,
    num_workers: usize,
    profile_size: usize,
    level: SimdLevel,
) -> Vec<RowSnapshot> {
    let engine = StompEngine::new(series, l).expect("snapshot series must be valid");
    assert!(
        !engine.has_flat_windows(),
        "flat windows bypass the kernel; difference them via output_checksum"
    );
    let mut parts: Vec<kernel::Stage1Part> = (0..num_workers)
        .map(|w| kernel::stage1_walk(&engine, first_diag, w, num_workers, profile_size, level))
        .collect();
    let rest = parts.split_off(1);
    let first = parts.pop().expect("at least one worker");
    let mut out = Vec::with_capacity(first.best_d.len());
    for (i, (mut selector, (mut bd, mut bj))) in
        first.selectors.into_iter().zip(first.best_d.into_iter().zip(first.best_j)).enumerate()
    {
        for part in &rest {
            selector.absorb(&part.selectors[i]);
            let (cd, cj) = (part.best_d[i], part.best_j[i]);
            if cd < bd || (cd == bd && cj < bj) {
                bd = cd;
                bj = cj;
            }
        }
        let row = selector.into_row(l);
        let entries =
            row.entries.iter().map(|e| (e.j, e.rho_base.to_bits(), e.qt.to_bits())).collect();
        out.push((bd.to_bits(), bj, row.truncated, entries));
    }
    out
}

/// Whether the series has a flat (σ ≈ 0) window at `l` — or is rejected
/// by the engine outright. Such series bypass the stage-1 kernel in
/// production, so the harness differences them end-to-end instead of via
/// [`stage1_snapshot`].
#[must_use]
pub fn has_flat_windows(series: &[f64], l: usize) -> bool {
    StompEngine::new(series, l).map(|e| e.has_flat_windows()).unwrap_or(true)
}

/// The bench suite's FNV-1a checksum over the best pair of every length —
/// the end-to-end fingerprint two runs must share to count as
/// bit-identical.
#[must_use]
pub fn output_checksum(out: &ValmodOutput) -> u64 {
    out.best_per_length().into_iter().flatten().fold(0xcbf2_9ce4_8422_2325u64, |acc, p| {
        [p.a as u64, p.b as u64, p.length as u64]
            .into_iter()
            .fold(acc, |a, v| (a ^ v).wrapping_mul(0x1000_0000_01b3))
    })
}
