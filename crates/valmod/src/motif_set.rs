//! Motif-set expansion: from a motif *pair* to all of its occurrences.
//!
//! The demo lets the user "expand a selected motif pair to the relative
//! Motif Set, containing all the similar subsequences of the pair in the
//! data". Following the classical definition, the motif set of a pair
//! `(a, b)` at radius `r` is the set of subsequence offsets whose distance
//! to either member is at most `r`, with trivial matches collapsed to
//! their local best representative.

use valmod_mp::mass::DistanceProfiler;
use valmod_mp::MotifPair;
use valmod_series::Result;

/// One occurrence in a motif set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occurrence {
    /// Subsequence offset.
    pub offset: usize,
    /// Distance to the closest of the two pair members.
    pub distance: f64,
}

/// A motif pair together with every subsequence within `radius` of it.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifSet {
    /// The seed pair.
    pub pair: MotifPair,
    /// The radius used for the expansion.
    pub radius: f64,
    /// All occurrences (including the pair members themselves, at distance
    /// 0), ascending by offset.
    pub occurrences: Vec<Occurrence>,
}

impl MotifSet {
    /// Number of occurrences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occurrences.len()
    }

    /// Whether the set is empty (never true for a well-formed expansion —
    /// the members themselves always qualify).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occurrences.is_empty()
    }
}

/// Expands `pair` into its motif set within `radius`.
///
/// A `radius` of `None` uses the customary default `2 × pair.distance`
/// (and `√ℓ/4` when the pair distance is ~0, so perfect planted pairs
/// still attract their noisy siblings).
///
/// `exclusion` collapses trivial matches: among any run of overlapping
/// qualifying offsets (closer than `exclusion` to each other), only the
/// closest-to-the-pair representative is kept.
///
/// # Errors
///
/// Propagates [`valmod_series::SeriesError`] for windows that do not fit
/// the series.
pub fn expand_motif_set(
    series: &[f64],
    pair: &MotifPair,
    radius: Option<f64>,
    exclusion: usize,
) -> Result<MotifSet> {
    let l = pair.length;
    let radius = radius.unwrap_or_else(|| {
        let base = 2.0 * pair.distance;
        if base > 1e-9 {
            base
        } else {
            (l as f64).sqrt() / 4.0
        }
    });

    let profiler = DistanceProfiler::new(series)?;
    let pa = profiler.self_profile(pair.a, l)?;
    let pb = profiler.self_profile(pair.b, l)?;

    // Point-wise min of the two distance profiles.
    let combined: Vec<f64> = pa.iter().zip(&pb).map(|(&x, &y)| x.min(y)).collect();

    // The members themselves are kept unconditionally (they define the
    // set, even in the degenerate case where they sit inside each other's
    // exclusion zone). Everything else goes through greedy non-maximum
    // suppression, best candidate first: each kept occurrence silences the
    // qualifying offsets within its exclusion zone, so every trivial-match
    // cluster is represented by its own closest-to-the-pair offset, no
    // matter how permissive the radius is.
    let mut kept_offsets = std::collections::BTreeSet::new();
    let mut occurrences: Vec<Occurrence> = Vec::new();
    for offset in [pair.a, pair.b] {
        if kept_offsets.insert(offset) {
            occurrences.push(Occurrence { offset, distance: combined[offset] });
        }
    }

    let mut candidates: Vec<Occurrence> = combined
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d <= radius)
        .map(|(offset, &distance)| Occurrence { offset, distance })
        .collect();
    candidates.sort_by(|x, y| x.distance.total_cmp(&y.distance).then(x.offset.cmp(&y.offset)));
    for c in candidates {
        let zone = c.offset.saturating_sub(exclusion)..=c.offset + exclusion;
        if kept_offsets.range(zone).next().is_none() {
            kept_offsets.insert(c.offset);
            occurrences.push(c);
        }
    }
    occurrences.sort_by_key(|o| o.offset);

    Ok(MotifSet { pair: *pair, radius, occurrences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    #[test]
    fn expansion_finds_all_planted_instances() {
        let pattern: Vec<f64> =
            (0..40).map(|i| (i as f64 / 40.0 * std::f64::consts::TAU * 2.0).sin()).collect();
        let (series, truth) = gen::planted_pair(3000, &pattern, &[200, 1000, 1800, 2600], 0.02, 8);
        // Seed with the first two instances as the pair.
        let d = valmod_series::znorm::zdist(&series[200..240], &series[1000..1040]);
        let pair = MotifPair::new(200, 1000, d, 40);
        let set = expand_motif_set(&series, &pair, None, 10).unwrap();
        assert!(set.len() >= truth.offsets.len(), "found only {} occurrences", set.len());
        for &planted in &truth.offsets {
            assert!(
                set.occurrences.iter().any(|o| o.offset.abs_diff(planted) <= 5),
                "planted instance at {planted} not found in {:?}",
                set.occurrences
            );
        }
    }

    #[test]
    fn members_are_always_in_their_own_set() {
        let series = gen::random_walk(500, 3);
        let d = valmod_series::znorm::zdist(&series[10..42], &series[300..332]);
        let pair = MotifPair::new(10, 300, d, 32);
        let set = expand_motif_set(&series, &pair, None, 8).unwrap();
        assert!(set.occurrences.iter().any(|o| o.offset.abs_diff(10) <= 8));
        assert!(set.occurrences.iter().any(|o| o.offset.abs_diff(300) <= 8));
    }

    #[test]
    fn tiny_radius_keeps_only_exact_members() {
        let series = gen::white_noise(400, 7, 1.0);
        let d = valmod_series::znorm::zdist(&series[50..82], &series[200..232]);
        let pair = MotifPair::new(50, 200, d, 32);
        // 1e-3 is far below any genuine white-noise match but above the
        // FFT numeric floor of the self-distances.
        let set = expand_motif_set(&series, &pair, Some(1e-3), 8).unwrap();
        // Only the two members themselves are within distance ~0.
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn trivial_runs_collapse_to_one_occurrence() {
        // A pure sine: every offset one period apart qualifies; shifted
        // copies within the exclusion zone must collapse.
        let series = gen::sine_mix(600, &[(50.0, 1.0)], 0.0, 1);
        let d = valmod_series::znorm::zdist(&series[0..32], &series[50..82]);
        let pair = MotifPair::new(0, 50, d, 32);
        let set = expand_motif_set(&series, &pair, Some(0.5), 12).unwrap();
        // Occurrences must be spaced by more than the exclusion zone.
        for w in set.occurrences.windows(2) {
            assert!(w[1].offset - w[0].offset > 12);
        }
        assert!(set.len() >= 8, "a 600-point sine has ~11 periods, got {}", set.len());
    }

    #[test]
    fn bad_pair_windows_error() {
        let series = gen::random_walk(100, 2);
        let pair = MotifPair::new(0, 95, 1.0, 32); // second member does not fit
        assert!(expand_motif_set(&series, &pair, None, 4).is_err());
    }
}
