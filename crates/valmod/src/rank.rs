//! Length-invariant ranking of variable-length motif pairs.
//!
//! Euclidean distances grow with `√ℓ`, so raw distances cannot compare a
//! 50-point motif with a 400-point one. The paper factors the distance by
//! `√(1/ℓ)` — the *length-normalized distance* — which deliberately favors
//! longer patterns among equally similar ones.

use valmod_mp::MotifPair;
use valmod_series::znorm::length_normalized;

use crate::algo::ValmodOutput;

/// A motif pair annotated with its length-normalized distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedMotif {
    /// The motif pair (offsets, raw distance, length).
    pub pair: MotifPair,
    /// `distance / √length` — the ranking key.
    pub normalized_distance: f64,
}

/// Ranks every pair discovered by a VALMOD run across all lengths,
/// ascending by normalized distance, deduplicating pairs that describe the
/// same co-occurrence at nearby offsets (the longest / best-normalized
/// representative wins).
#[must_use]
pub fn rank_pairs(output: &ValmodOutput) -> Vec<RankedMotif> {
    let all: Vec<RankedMotif> = output
        .per_length
        .iter()
        .flat_map(|r| r.pairs.iter())
        .map(|&pair| RankedMotif {
            pair,
            normalized_distance: length_normalized(pair.distance, pair.length),
        })
        .collect();
    rank_and_dedupe(all, |l| output.config.exclusion(l))
}

/// Core of [`rank_pairs`], usable with any candidate set and exclusion
/// policy.
#[must_use]
pub fn rank_and_dedupe(
    mut candidates: Vec<RankedMotif>,
    exclusion: impl Fn(usize) -> usize,
) -> Vec<RankedMotif> {
    candidates.sort_by(|x, y| {
        x.normalized_distance
            .partial_cmp(&y.normalized_distance)
            .expect("normalized distances are never NaN")
            // Favor the longer pattern among equals, as the paper's
            // ranking intends.
            .then(y.pair.length.cmp(&x.pair.length))
            .then(x.pair.a.cmp(&y.pair.a))
            .then(x.pair.b.cmp(&y.pair.b))
    });
    let mut selected: Vec<RankedMotif> = Vec::new();
    for cand in candidates {
        let excl = exclusion(cand.pair.length.max(1));
        if selected
            .iter()
            .any(|s| cand.pair.overlaps(&s.pair, excl.max(exclusion(s.pair.length.max(1)))))
        {
            continue;
        }
        selected.push(cand);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(a: usize, b: usize, d: f64, l: usize) -> RankedMotif {
        RankedMotif {
            pair: MotifPair::new(a, b, d, l),
            normalized_distance: length_normalized(d, l),
        }
    }

    #[test]
    fn normalization_compares_lengths_fairly() {
        // Same shape quality at double length has distance * sqrt(2); the
        // normalized distances tie, and the longer one must rank first.
        let short = rm(0, 100, 1.0, 50);
        let long = rm(300, 500, (2.0f64).sqrt(), 100);
        let ranked = rank_and_dedupe(vec![short, long], |l| l / 4);
        assert_eq!(ranked[0].pair.length, 100);
        assert_eq!(ranked[1].pair.length, 50);
    }

    #[test]
    fn duplicates_across_lengths_collapse_to_best() {
        // The same co-occurrence seen at lengths 50 and 60, slightly
        // shifted: keep only the better-normalized one.
        let a = rm(100, 400, 5.0, 50);
        let b = rm(102, 398, 5.0, 60);
        let ranked = rank_and_dedupe(vec![a, b], |l| l / 4);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].pair.length, 60); // smaller normalized distance
    }

    #[test]
    fn distinct_motifs_survive() {
        let a = rm(0, 200, 1.0, 50);
        let b = rm(500, 900, 2.0, 50);
        let c = rm(1500, 2500, 0.5, 80);
        let ranked = rank_and_dedupe(vec![a, b, c], |l| l / 4);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].pair.a, 1500);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(rank_and_dedupe(Vec::new(), |l| l / 4).is_empty());
    }
}
