//! The lower-bound-only screening tier behind
//! [`Quality::Screen`](crate::Quality).
//!
//! Screening answers "*which lengths and offsets deserve exact
//! extension?*" at a fraction of a full run's cost: it pays for stage 1
//! once (the exact matrix profile and partial profiles at `ℓmin`), then
//! ranks every longer length's candidates by the **admissible lower
//! bound** of [`crate::lb`] — no dot-product advances, no MASS
//! recomputation, no per-length classification. Because the bound never
//! exceeds the true z-normalized distance (pinned by the admissibility
//! proptests), a candidate's `lower_bound` is a certificate: the true
//! motif distance at that length is *at least* that value, so lengths
//! whose best bound is already large can be skipped with confidence,
//! and small bounds mark where an exact [`Quality::Exact`] or
//! [`Quality::Anytime`](crate::Quality) run should be spent.

use valmod_mp::motif::top_k_pairs;
use valmod_mp::stomp::StompEngine;
use valmod_mp::{MatrixProfile, MotifPair};
use valmod_series::{Result, RollingStats};

use crate::algo::{select_top_k, stage_one, LengthResult, LengthStats};
use crate::config::ValmodConfig;
use crate::lb::LbRowContext;

/// One screened candidate pair: where an exact run should look, and the
/// admissible floor under its true distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenCandidate {
    /// Subsequence length this candidate was screened at.
    pub length: usize,
    /// Row offset of the pair.
    pub offset: usize,
    /// Matching offset of the pair.
    pub match_offset: usize,
    /// Admissible lower bound on the pair's z-normalized distance at
    /// `length` — never exceeds the true distance.
    pub lower_bound: f64,
}

/// The screened top-k of one length, ascending lower bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenLength {
    /// Subsequence length.
    pub length: usize,
    /// Top-k candidate pairs by ascending lower bound, deduplicated
    /// with the same trivial-match policy as the exact top-k.
    pub candidates: Vec<ScreenCandidate>,
}

/// Everything the screening tier produces: the exact base length plus a
/// lower-bound ranking of every longer length.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// The configuration that produced this report.
    pub config: ValmodConfig,
    /// The exact per-length result at `ℓmin` (stage 1 is always exact,
    /// so the base length needs no screening).
    pub base: LengthResult,
    /// The full matrix profile at `ℓmin`.
    pub base_profile: MatrixProfile,
    /// Lower-bound rankings for the lengths `ℓmin+1 ..= ℓmax`,
    /// ascending length.
    pub lengths: Vec<ScreenLength>,
}

impl ScreenReport {
    /// The most promising screened candidate across all lengths — the
    /// globally smallest lower bound (ties: shortest length first).
    #[must_use]
    pub fn best_candidate(&self) -> Option<&ScreenCandidate> {
        self.lengths
            .iter()
            .filter_map(|l| l.candidates.first())
            .min_by(|a, b| a.lower_bound.total_cmp(&b.lower_bound).then(a.length.cmp(&b.length)))
    }
}

/// Screens `series`: exact stage 1 at `ℓmin`, then every length in
/// `(ℓmin, ℓmax]` ranked by the admissible lower bound from the stored
/// partial profiles — no exact recomputation at any extended length.
///
/// # Errors
///
/// Returns a [`valmod_series::SeriesError`] when the configuration is
/// invalid for this series (range malformed or series too short).
///
/// # Example
///
/// ```
/// use valmod_core::{screen_series, ValmodConfig};
/// use valmod_series::gen;
///
/// let series = gen::sine_mix(600, &[(40.0, 1.0)], 0.05, 3);
/// let report = screen_series(&series, &ValmodConfig::new(24, 32).with_k(2)).unwrap();
/// assert_eq!(report.lengths.len(), 8);
/// // A strongly periodic series screens with small bounds everywhere.
/// assert!(report.best_candidate().unwrap().lower_bound < 1.0);
/// ```
pub fn screen_series(series: &[f64], config: &ValmodConfig) -> Result<ScreenReport> {
    config.validate(series.len())?;
    let l0 = config.l_min;
    let engine = StompEngine::new(series, l0)?;
    // Same unit system as the exact run: bounds are evaluated over the
    // engine's globally centered values.
    let values: Vec<f64> = engine.values().to_vec();
    let stats = RollingStats::new(&values);
    let n = values.len();

    let (base_profile, rows) = stage_one(&engine, config);
    let base = LengthResult {
        length: l0,
        pairs: top_k_pairs(&base_profile, config.k),
        stats: LengthStats {
            valid_rows: base_profile.len(),
            invalid_rows: 0,
            recomputed_rows: 0,
            min_lb_abs: f64::INFINITY,
            stomp_fallback: false,
        },
    };

    let mut lengths = Vec::with_capacity(config.l_max - l0);
    for length in l0 + 1..=config.l_max {
        let m = n - length + 1;
        let excl = config.exclusion(length);
        // Per row: the smallest admissible bound over the stored
        // candidates that still exist (and are non-trivial) at this
        // length. The bound is monotone non-increasing in ρ, so this is
        // the floor under the row's best stored match.
        let mut candidates: Vec<MotifPair> = Vec::new();
        for (i, row) in rows.iter().enumerate().take(m) {
            if row.entries.is_empty() {
                continue;
            }
            let ctx = LbRowContext::new(&stats, i, l0, length);
            let mut best_lb = f64::INFINITY;
            let mut best_j = usize::MAX;
            for e in &row.entries {
                let j = e.j as usize;
                if j >= m || i.abs_diff(j) <= excl {
                    continue;
                }
                let lb = ctx.bound(e.rho_base);
                if lb < best_lb || (lb == best_lb && j < best_j) {
                    best_lb = lb;
                    best_j = j;
                }
            }
            if best_j != usize::MAX {
                candidates.push(MotifPair::new(i, best_j, best_lb, length));
            }
        }
        let top = select_top_k(&candidates, config.k, excl);
        lengths.push(ScreenLength {
            length,
            candidates: top
                .into_iter()
                .map(|p| ScreenCandidate {
                    length,
                    offset: p.a,
                    match_offset: p.b,
                    lower_bound: p.distance,
                })
                .collect(),
        });
    }

    Ok(ScreenReport { config: config.clone(), base, base_profile, lengths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::run_valmod;
    use valmod_series::gen;

    /// Every screened bound is admissible versus the exact run: the
    /// screen's lower bound at (length) never exceeds the exact top
    /// pair's distance at that length.
    #[test]
    fn screened_bounds_never_exceed_exact_distances() {
        let series = gen::ecg(500, &gen::EcgConfig::default(), 17);
        let config = ValmodConfig::new(16, 28).with_k(3);
        let report = screen_series(&series, &config).unwrap();
        let exact = run_valmod(&series, &config).unwrap();
        for (screened, res) in report.lengths.iter().zip(exact.per_length.iter().skip(1)) {
            assert_eq!(screened.length, res.length);
            let (Some(best), Some(pair)) = (screened.candidates.first(), res.pairs.first()) else {
                continue;
            };
            assert!(
                best.lower_bound <= pair.distance + 1e-6,
                "length {}: screen bound {} above exact best {}",
                res.length,
                best.lower_bound,
                pair.distance
            );
        }
    }

    #[test]
    fn base_length_is_exact_and_lengths_cover_the_range() {
        let series = gen::random_walk(400, 5);
        let config = ValmodConfig::new(12, 20).with_k(2);
        let report = screen_series(&series, &config).unwrap();
        let exact = run_valmod(&series, &config).unwrap();
        assert_eq!(report.base.pairs, exact.per_length[0].pairs);
        assert_eq!(report.lengths.len(), 8);
        for (sl, l) in report.lengths.iter().zip(13..=20) {
            assert_eq!(sl.length, l);
            assert!(sl.candidates.len() <= 2);
            // Ascending lower bound within a length.
            for pair in sl.candidates.windows(2) {
                assert!(pair[0].lower_bound <= pair[1].lower_bound);
            }
        }
    }

    #[test]
    fn screen_rejects_invalid_configurations() {
        let series = gen::random_walk(100, 1);
        assert!(screen_series(&series, &ValmodConfig::new(64, 32)).is_err());
        assert!(screen_series(&series, &ValmodConfig::new(90, 99)).is_err());
    }
}
