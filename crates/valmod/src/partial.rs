//! Partial distance profiles — VALMOD's per-row working state.
//!
//! After the base-length matrix profile is computed, VALMOD keeps, for each
//! subsequence (row), only the `p` candidates with the *largest base
//! correlation* — equivalently, by the rank-invariance of the lower bound
//! (see [`crate::lb`]), the `p` candidates with the smallest lower-bounded
//! distance at every extended length. Each kept entry carries its running
//! dot product, which one fused multiply-add per length keeps current.

/// One retained candidate of a partial distance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialEntry {
    /// Candidate subsequence offset.
    pub j: u32,
    /// Pearson correlation with the row subsequence at the row's base
    /// length — the pruning key.
    pub rho_base: f64,
    /// Dot product between the two subsequences at the *current* length,
    /// updated incrementally as the length grows.
    pub qt: f64,
}

/// The partial distance profile of one subsequence.
#[derive(Debug, Clone, Default)]
pub struct PartialRow {
    /// Length at which this profile was (re)built; lower bounds extend
    /// from here.
    pub base_len: usize,
    /// Retained candidates, sorted by descending `rho_base`.
    pub entries: Vec<PartialEntry>,
    /// Whether the selection saw more admissible candidates than it could
    /// keep. When `false`, the profile is *complete*: no unstored
    /// candidate exists and the row is always valid.
    pub truncated: bool,
}

impl PartialRow {
    /// The smallest stored base correlation — the pruning threshold. Every
    /// candidate *not* stored has `ρ ≤` this, hence a lower-bounded
    /// distance `≥ bound(worst_rho)`.
    ///
    /// Returns `None` when the profile is not truncated (nothing was left
    /// out, so there is nothing to bound).
    #[must_use]
    pub fn worst_rho(&self) -> Option<f64> {
        if self.truncated {
            self.entries.last().map(|e| e.rho_base)
        } else {
            None
        }
    }

    /// Asserts the ordering invariant (descending `rho_base`).
    pub fn check_invariants(&self) {
        for w in self.entries.windows(2) {
            assert!(
                w[0].rho_base >= w[1].rho_base,
                "partial profile must be sorted by descending rho"
            );
        }
    }
}

/// Incremental top-`p` selector by correlation, used while streaming a
/// distance-profile row. Keeps the `p` best candidates under the total
/// order "(larger `rho`, then smaller `j`)".
///
/// Because the order is total, the kept *set* is a pure function of the
/// offered set — independent of offer order. That is what makes the
/// selector mergeable: partition a row's candidates across workers, keep
/// a top-`p` selector per partition, [`TopRhoSelector::absorb`] them, and
/// the result is exactly the selector a single pass would have built.
#[derive(Debug)]
pub struct TopRhoSelector {
    capacity: usize,
    /// Unordered store; the worst entry is tracked by index.
    slots: Vec<PartialEntry>,
    min_slot: usize,
    /// Count of admissible candidates offered (to detect truncation).
    offered: usize,
}

/// `a` ranks strictly worse than `b` under "(rho desc, j asc)".
#[inline]
fn ranks_worse(a: &PartialEntry, b: &PartialEntry) -> bool {
    a.rho_base < b.rho_base || (a.rho_base == b.rho_base && a.j > b.j)
}

impl TopRhoSelector {
    /// A selector keeping at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), slots: Vec::new(), min_slot: 0, offered: 0 }
    }

    /// Offers a candidate. O(1) amortized; O(p) when the worst entry must
    /// be rescanned after a replacement.
    pub fn offer(&mut self, j: usize, rho: f64, qt: f64) {
        self.offered += 1;
        #[allow(clippy::cast_possible_truncation)]
        let entry = PartialEntry { j: j as u32, rho_base: rho, qt };
        if self.slots.len() < self.capacity {
            self.slots.push(entry);
            if ranks_worse(&entry, &self.slots[self.min_slot]) {
                self.min_slot = self.slots.len() - 1;
            }
            return;
        }
        if !ranks_worse(&self.slots[self.min_slot], &entry) {
            return;
        }
        self.slots[self.min_slot] = entry;
        // Rescan for the new worst entry (p is small).
        let mut min = 0;
        for (idx, e) in self.slots.iter().enumerate() {
            if ranks_worse(e, &self.slots[min]) {
                min = idx;
            }
        }
        self.min_slot = min;
    }

    /// The rejection threshold the stage-1 kernel prefilters against:
    /// every candidate with `rho` strictly below this is guaranteed to be
    /// rejected by [`TopRhoSelector::offer`] (it ranks worse than the
    /// current worst kept entry of a full selector), so the kernel may
    /// skip the offer and account it via
    /// [`TopRhoSelector::count_rejected`] instead. `NEG_INFINITY` while
    /// the selector still has free slots — nothing may be skipped then.
    #[inline]
    #[must_use]
    pub(crate) fn threshold(&self) -> f64 {
        if self.slots.len() < self.capacity {
            f64::NEG_INFINITY
        } else {
            self.slots[self.min_slot].rho_base
        }
    }

    /// Accounts `n` candidates that were prefiltered away without an
    /// [`TopRhoSelector::offer`] call. Exactness contract: each skipped
    /// candidate's `rho` was strictly below [`TopRhoSelector::threshold`]
    /// at skip time, so `offer` would have rejected it while still
    /// incrementing the offered count — which is all this does.
    #[inline]
    pub(crate) fn count_rejected(&mut self, n: usize) {
        self.offered += n;
    }

    /// Merges another selector built from a *disjoint* partition of this
    /// row's candidates, as if all of the other partition's candidates had
    /// been offered here. Exact: under a total order, the global top-`p`
    /// is contained in the union of per-partition top-`p` sets, and the
    /// offered counts add up, so `worst_rho` and the truncation flag come
    /// out identical to a single-pass selector's.
    pub fn absorb(&mut self, other: &Self) {
        for e in &other.slots {
            self.offer(e.j as usize, e.rho_base, e.qt);
        }
        // `offer` counted the retained entries; add the candidates the
        // other partition saw but did not keep.
        self.offered += other.offered - other.slots.len();
    }

    /// Finalizes the selection into a [`PartialRow`] with the given base
    /// length.
    #[must_use]
    pub fn into_row(self, base_len: usize) -> PartialRow {
        let truncated = self.offered > self.slots.len();
        let mut entries = self.slots;
        entries.sort_by(|a, b| {
            b.rho_base.partial_cmp(&a.rho_base).expect("rho is never NaN").then(a.j.cmp(&b.j))
        });
        PartialRow { base_len, entries, truncated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_keeps_the_top_p() {
        let mut sel = TopRhoSelector::new(3);
        for (j, rho) in [(0usize, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2), (5, 0.95)] {
            sel.offer(j, rho, rho * 10.0);
        }
        let row = sel.into_row(16);
        row.check_invariants();
        let js: Vec<u32> = row.entries.iter().map(|e| e.j).collect();
        assert_eq!(js, vec![5, 1, 3]);
        assert!(row.truncated);
        assert_eq!(row.worst_rho(), Some(0.7));
        assert_eq!(row.base_len, 16);
    }

    #[test]
    fn untruncated_profile_has_no_pruning_threshold() {
        let mut sel = TopRhoSelector::new(8);
        sel.offer(3, 0.4, 1.0);
        sel.offer(9, 0.6, 2.0);
        let row = sel.into_row(8);
        assert!(!row.truncated);
        assert_eq!(row.worst_rho(), None);
        assert_eq!(row.entries.len(), 2);
    }

    #[test]
    fn empty_selector_yields_empty_row() {
        let sel = TopRhoSelector::new(4);
        let row = sel.into_row(8);
        assert!(row.entries.is_empty());
        assert!(!row.truncated);
        assert_eq!(row.worst_rho(), None);
    }

    #[test]
    fn capacity_one_tracks_the_maximum() {
        let mut sel = TopRhoSelector::new(1);
        for (j, rho) in [(0usize, 0.3), (1, 0.8), (2, 0.5)] {
            sel.offer(j, rho, 0.0);
        }
        let row = sel.into_row(4);
        assert_eq!(row.entries.len(), 1);
        assert_eq!(row.entries[0].j, 1);
    }

    #[test]
    fn ties_are_resolved_deterministically() {
        let mut sel = TopRhoSelector::new(2);
        sel.offer(7, 0.5, 0.0);
        sel.offer(2, 0.5, 0.0);
        sel.offer(4, 0.5, 0.0);
        let row = sel.into_row(4);
        // The kept set is the top-2 under (rho desc, j asc): {2, 4}.
        let js: Vec<u32> = row.entries.iter().map(|e| e.j).collect();
        assert_eq!(js, vec![2, 4]);
    }

    /// Deterministic candidate pool with deliberate rho collisions.
    fn pool(n: usize) -> Vec<(usize, f64, f64)> {
        (0..n).map(|j| (j, ((j * 7919) % 23) as f64 / 23.0, j as f64)).collect()
    }

    #[test]
    fn kept_set_is_independent_of_offer_order() {
        let candidates = pool(64);
        let mut forward = TopRhoSelector::new(5);
        for &(j, rho, qt) in &candidates {
            forward.offer(j, rho, qt);
        }
        let mut backward = TopRhoSelector::new(5);
        for &(j, rho, qt) in candidates.iter().rev() {
            backward.offer(j, rho, qt);
        }
        let (a, b) = (forward.into_row(8), backward.into_row(8));
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.worst_rho(), b.worst_rho());
        assert_eq!(a.truncated, b.truncated);
    }

    #[test]
    fn prefilter_threshold_matches_offer_semantics() {
        // The SIMD kernel skips offers whose rho falls strictly below
        // `threshold()`, accounting them with `count_rejected`. That must
        // leave the selector in exactly the state full offering builds.
        let candidates = pool(200);
        let mut full = TopRhoSelector::new(5);
        let mut filtered = TopRhoSelector::new(5);
        for &(j, rho, qt) in &candidates {
            full.offer(j, rho, qt);
            if rho < filtered.threshold() {
                filtered.count_rejected(1);
            } else {
                filtered.offer(j, rho, qt);
            }
        }
        let (a, b) = (full.into_row(8), filtered.into_row(8));
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.worst_rho(), b.worst_rho());
    }

    #[test]
    fn absorb_equals_single_pass() {
        let candidates = pool(97);
        for workers in [2usize, 3, 8] {
            let mut serial = TopRhoSelector::new(6);
            for &(j, rho, qt) in &candidates {
                serial.offer(j, rho, qt);
            }
            // Interleaved partitions, as the diagonal walk produces.
            let mut parts: Vec<TopRhoSelector> =
                (0..workers).map(|_| TopRhoSelector::new(6)).collect();
            for (idx, &(j, rho, qt)) in candidates.iter().enumerate() {
                parts[idx % workers].offer(j, rho, qt);
            }
            let mut merged = parts.remove(0);
            for p in &parts {
                merged.absorb(p);
            }
            let (a, b) = (serial.into_row(16), merged.into_row(16));
            assert_eq!(a.entries, b.entries, "kept set differs at {workers} workers");
            assert_eq!(a.worst_rho(), b.worst_rho());
            assert_eq!(a.truncated, b.truncated);
        }
    }
}
